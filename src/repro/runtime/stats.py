"""Execution trace and statistics for simulated runs.

The trace is the evidence base for every experiment in the paper:
makespan (Figures 5-7), per-worker utilisation (hybrid execution), data
transfer counts and volumes (Figure 3's copy elision, Figure 5's
communication bottleneck), and per-task timelines for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.machine import HOST_NODE


@dataclass(frozen=True)
class TaskRecord:
    """Completed-task timeline entry."""

    task_id: int
    name: str
    codelet: str
    variant: str
    arch: str
    worker_ids: tuple[int, ...]
    submit_time: float
    ready_time: float
    start_time: float
    end_time: float
    #: modeled energy spent executing this task (duration x the busy
    #: power of every occupied worker), in joules
    energy_j: float = 0.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass(frozen=True)
class TransferRecord:
    """One modeled data copy between memory nodes."""

    handle_id: int
    handle_name: str
    src_node: int
    dst_node: int
    nbytes: int
    start_time: float
    end_time: float

    @property
    def is_h2d(self) -> bool:
        return self.src_node == HOST_NODE and self.dst_node != HOST_NODE

    @property
    def is_d2h(self) -> bool:
        return self.src_node != HOST_NODE and self.dst_node == HOST_NODE


@dataclass(frozen=True)
class EvictionRecord:
    """One device-memory eviction (copy dropped to make room)."""

    handle_id: int
    handle_name: str
    node: int
    nbytes: int
    time: float
    flushed: bool  # True when the copy had to be written home first


#: fault-record kinds (see :mod:`repro.hw.faults` for injection and the
#: engine's recovery layer for handling)
FAULT_KINDS = (
    "kernel",  # transient kernel failure during one execution attempt
    "transfer",  # one corrupted transfer attempt (retransmitted in place)
    "transfer_abort",  # transfer retransmissions exhausted; task attempt failed
    "device_lost",  # a device dropped off the bus permanently
    "replica_lost",  # sole-owner replica on a lost device, re-sourced from host
)


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault (and how far recovery had to go)."""

    kind: str
    time: float
    #: failed task attempt (None for pure transfer/replica events)
    task_id: int | None = None
    task_name: str = ""
    #: workers occupied by the failed attempt
    worker_ids: tuple[int, ...] = ()
    #: memory node involved (transfers, device loss, replica recovery)
    node: int | None = None
    handle_id: int | None = None
    handle_name: str = ""
    #: retry attempt index this fault struck (0 = first try)
    attempt: int = 0
    detail: str = ""


@dataclass(frozen=True)
class RequestRecord:
    """One client request served (or shed) by the composition service.

    Requests are the serving layer's unit of accounting: a tenant's
    component invocation travels arrival -> admission -> batch queue ->
    dispatch (task submission) -> execution.  The record decomposes the
    end-to-end latency into queue wait (arrival to dispatch), pending
    time (dispatch to execution start: staging transfers plus waiting
    for a worker) and execution time, which is what the per-tenant SLO
    report aggregates.
    """

    tenant: str
    req_id: int
    codelet: str
    arrival_time: float
    #: request rejected by admission control (never dispatched)
    shed: bool = False
    #: request was held back by a delaying admission controller
    delayed: bool = False
    #: dispatched but abandoned (unrecoverable injected fault)
    failed: bool = False
    dispatch_time: float = float("nan")
    start_time: float = float("nan")
    end_time: float = float("nan")
    #: seconds of staging transfers committed while dispatching this task
    transfer_s: float = 0.0
    #: size of the coalesced batch this request was dispatched in
    batch_size: int = 1
    task_id: int | None = None

    @property
    def completed(self) -> bool:
        return not self.shed and not self.failed

    @property
    def latency(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.end_time - self.arrival_time

    @property
    def queue_wait(self) -> float:
        """Admission plus batch-queue wait before dispatch."""
        return self.dispatch_time - self.arrival_time

    @property
    def pending_wait(self) -> float:
        """Dispatch to execution start (staging + worker queueing)."""
        return self.start_time - self.dispatch_time

    @property
    def exec_s(self) -> float:
        return self.end_time - self.start_time


@dataclass
class ExecutionTrace:
    """Accumulates task and transfer records for one runtime session."""

    tasks: list[TaskRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)
    evictions: list[EvictionRecord] = field(default_factory=list)
    faults: list[FaultRecord] = field(default_factory=list)
    requests: list[RequestRecord] = field(default_factory=list)
    #: task-level retries the recovery layer performed (one per failed
    #: execution attempt that was rescheduled)
    n_task_retries: int = 0
    #: tasks that faulted at least once but eventually completed
    n_tasks_recovered: int = 0
    #: tasks abandoned after exhausting the retry budget
    n_tasks_lost: int = 0
    #: recovered tasks whose final placement used a different backend
    #: architecture than the first failed attempt (e.g. GPU -> CPU)
    n_fallbacks: int = 0
    #: placement decisions made while the performance model was still
    #: uncalibrated for the task (scheduler exploration / calibration
    #: phase); a warm-started run should keep this at zero
    n_exploration_decisions: int = 0
    #: workers disabled after repeated transient faults
    blacklisted_workers: set[int] = field(default_factory=set)
    #: workers whose device was permanently lost
    lost_workers: set[int] = field(default_factory=set)

    def record_task(self, rec: TaskRecord) -> None:
        self.tasks.append(rec)

    def record_transfer(self, rec: TransferRecord) -> None:
        self.transfers.append(rec)

    def record_eviction(self, rec: EvictionRecord) -> None:
        self.evictions.append(rec)

    def record_fault(self, rec: FaultRecord) -> None:
        self.faults.append(rec)

    def record_request(self, rec: RequestRecord) -> None:
        self.requests.append(rec)

    # -- serving views -------------------------------------------------------

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def n_shed(self) -> int:
        return sum(1 for r in self.requests if r.shed)

    @property
    def n_failed_requests(self) -> int:
        return sum(1 for r in self.requests if r.failed)

    def tenants(self) -> list[str]:
        """Tenant names seen, in first-arrival order."""
        seen: dict[str, None] = {}
        for r in self.requests:
            seen.setdefault(r.tenant, None)
        return list(seen)

    def requests_for(self, tenant: str) -> list[RequestRecord]:
        return [r for r in self.requests if r.tenant == tenant]

    @property
    def n_evictions(self) -> int:
        return len(self.evictions)

    # -- fault views --------------------------------------------------------

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def n_kernel_faults(self) -> int:
        return sum(1 for f in self.faults if f.kind == "kernel")

    @property
    def n_transfer_faults(self) -> int:
        return sum(1 for f in self.faults if f.kind == "transfer")

    @property
    def n_devices_lost(self) -> int:
        return sum(1 for f in self.faults if f.kind == "device_lost")

    @property
    def n_replicas_recovered(self) -> int:
        return sum(1 for f in self.faults if f.kind == "replica_lost")

    def faults_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.faults:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def faults_by_worker(self) -> dict[int, int]:
        """Transient faults attributed to each worker (blacklist basis)."""
        out: dict[int, int] = {}
        for f in self.faults:
            for w in f.worker_ids:
                out[w] = out.get(w, 0) + 1
        return out

    def faults_for_task(self, task_id: int) -> list[FaultRecord]:
        return [f for f in self.faults if f.task_id == task_id]

    # -- aggregate views ----------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_transfers(self) -> int:
        return len(self.transfers)

    @property
    def n_h2d(self) -> int:
        return sum(1 for t in self.transfers if t.is_h2d)

    @property
    def n_d2h(self) -> int:
        return sum(1 for t in self.transfers if t.is_d2h)

    @property
    def bytes_transferred(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    @property
    def makespan(self) -> float:
        """Virtual time from first task start to last task/transfer end."""
        ends = [t.end_time for t in self.tasks] + [
            t.end_time for t in self.transfers
        ]
        return max(ends, default=0.0)

    @property
    def total_energy_j(self) -> float:
        """Modeled execution energy over all tasks, in joules (basis of
        the ``min_energy`` optimization goal)."""
        return sum(rec.energy_j for rec in self.tasks)

    def energy_by_arch(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for rec in self.tasks:
            out[rec.arch] = out.get(rec.arch, 0.0) + rec.energy_j
        return out

    def busy_time(self, worker_id: int) -> float:
        """Total virtual time ``worker_id`` spent executing tasks."""
        return sum(
            rec.duration for rec in self.tasks if worker_id in rec.worker_ids
        )

    def utilisation(self, worker_id: int) -> float:
        """Busy fraction of the makespan for one worker."""
        span = self.makespan
        return self.busy_time(worker_id) / span if span > 0 else 0.0

    def tasks_by_arch(self) -> dict[str, int]:
        """How many tasks each backend architecture executed."""
        out: dict[str, int] = {}
        for rec in self.tasks:
            out[rec.arch] = out.get(rec.arch, 0) + 1
        return out

    def tasks_by_variant(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for rec in self.tasks:
            out[rec.variant] = out.get(rec.variant, 0) + 1
        return out

    def transfers_for_handle(self, handle_id: int) -> list[TransferRecord]:
        return [t for t in self.transfers if t.handle_id == handle_id]

    def summary(self) -> str:
        """Short human-readable report."""
        by_arch = ", ".join(
            f"{arch}: {n}" for arch, n in sorted(self.tasks_by_arch().items())
        )
        text = (
            f"{self.n_tasks} tasks ({by_arch or 'none'}), "
            f"{self.n_transfers} transfers "
            f"({self.n_h2d} h2d / {self.n_d2h} d2h, "
            f"{self.bytes_transferred / 1e6:.2f} MB), "
            f"makespan {self.makespan * 1e3:.3f} ms"
        )
        if self.faults:
            by_kind = ", ".join(
                f"{kind}: {n}" for kind, n in sorted(self.faults_by_kind().items())
            )
            text += (
                f"; {self.n_faults} faults ({by_kind}), "
                f"{self.n_task_retries} retries, "
                f"{self.n_tasks_recovered} recovered / {self.n_tasks_lost} lost"
            )
        if self.requests:
            text += (
                f"; {self.n_requests} requests over {len(self.tenants())} "
                f"tenants ({self.n_shed} shed, {self.n_failed_requests} failed)"
            )
        return text

    def clear(self) -> None:
        self.tasks.clear()
        self.transfers.clear()
        self.evictions.clear()
        self.faults.clear()
        self.requests.clear()
        self.n_task_retries = 0
        self.n_tasks_recovered = 0
        self.n_tasks_lost = 0
        self.n_fallbacks = 0
        self.n_exploration_decisions = 0
        self.blacklisted_workers.clear()
        self.lost_workers.clear()
