"""Execution trace and statistics for simulated runs.

The trace is the evidence base for every experiment in the paper:
makespan (Figures 5-7), per-worker utilisation (hybrid execution), data
transfer counts and volumes (Figure 3's copy elision, Figure 5's
communication bottleneck), and per-task timelines for debugging.

Storage layout (the million-task refactor)
------------------------------------------

Records used to be frozen dataclasses held in plain lists; at million-
task scale the per-record object overhead (and the ``dataclasses.replace``
sequence stamping) dominated the engine hot path.  The trace now stores
records *columnar* (struct-of-arrays): one ``array('d')`` per float
field, one list per object field, and materializes record objects only
when somebody actually asks for one.  The engine appends raw field rows
(:meth:`ExecutionTrace.add_task`, :meth:`ExecutionTrace.add_transfer`)
and never builds a record object on the no-subscriber fast path.

The blessed access API (stable across future layout changes):

- ``trace.tasks()`` / ``trace.transfers()`` / ``trace.faults()`` (and
  ``evictions()`` / ``accesses()`` / ``requests()``) — iterate lazily
  materialized records; the same attributes still behave like the lists
  they used to be (``len``, indexing, slicing, ``append``).
- ``trace.columns("end_time")`` — the raw column for one field, the
  cheapest way to fold an aggregate over a large trace.
- ``TaskRecord.make(...)`` — forge a record outside the engine (tests,
  trace loaders); plus ``rec.replace(...)`` / ``rec.as_dict()`` /
  ``cls._fields`` standing in for the old dataclass conveniences.

Direct construction (``TaskRecord(...)``) still works but emits a
one-shot :class:`DeprecationWarning` (escalated to an error in this
repo's test suite): record layout is an engine internal now.
"""

from __future__ import annotations

import warnings
from array import array
from collections.abc import Sequence

from repro.hw.description import HOST_NODE

# ---------------------------------------------------------------------------
# deprecation shim (repo-standard one-shot warn_* pattern)
# ---------------------------------------------------------------------------

_construction_warned = False


def warn_record_construction(cls: type, stacklevel: int = 3) -> None:
    """Emit the direct-record-construction warning at most once.

    Records are engine-owned: the engine writes them as raw column rows
    and everything else reads them through the blessed trace accessors.
    Code that legitimately forges records (tests, the trace JSON loader)
    uses ``Record.make(...)``, which skips this shim.
    """
    global _construction_warned
    if _construction_warned:
        return
    _construction_warned = True
    warnings.warn(
        f"direct construction of {cls.__name__} is deprecated; use "
        f"{cls.__name__}.make(...) — record layout is an engine internal "
        "and the positional/keyword signature is only guaranteed through "
        "make()",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_record_warning() -> None:
    """Re-arm the one-shot deprecation (for tests)."""
    global _construction_warned
    _construction_warned = False


# ---------------------------------------------------------------------------
# slotted record classes
# ---------------------------------------------------------------------------


def _fill(rec, args: tuple, kwargs: dict) -> None:
    """Assign constructor arguments onto a freshly allocated record."""
    cls = type(rec)
    names = cls._fields
    if len(args) > len(names):
        raise TypeError(
            f"{cls.__name__} takes at most {len(names)} arguments "
            f"({len(args)} given)"
        )
    for name, value in zip(names, args):
        if name in kwargs:
            raise TypeError(
                f"{cls.__name__} got multiple values for {name!r}"
            )
        setattr(rec, name, value)
    defaults = cls._defaults
    for name in names[len(args) :]:
        if name in kwargs:
            setattr(rec, name, kwargs.pop(name))
        elif name in defaults:
            setattr(rec, name, defaults[name])
        else:
            raise TypeError(
                f"{cls.__name__} missing required argument {name!r}"
            )
    if kwargs:
        bad = ", ".join(sorted(kwargs))
        raise TypeError(f"{cls.__name__} got unexpected arguments: {bad}")


def _restore(cls: type, values: tuple):
    """Unpickle helper: rebuild a record from its field-value tuple."""
    rec = cls.__new__(cls)
    for name, value in zip(cls._fields, values):
        setattr(rec, name, value)
    return rec


class _Record:
    """Base for slotted trace records.

    Subclasses declare ``__slots__`` (the field order), ``_defaults``
    (trailing optional fields) and ``_float_fields`` (fields the
    columnar store keeps in ``array('d')``).  Equality, hashing, repr,
    ``replace`` and ``as_dict`` all derive from ``_fields`` so they
    match the old frozen-dataclass behaviour field for field.
    """

    __slots__ = ()
    _fields: tuple[str, ...] = ()
    _defaults: dict = {}
    _float_fields: frozenset = frozenset()

    def __init__(self, *args, **kwargs):
        warn_record_construction(type(self))
        _fill(self, args, kwargs)

    @classmethod
    def make(cls, *args, **kwargs):
        """Forge a record without the deprecation shim (blessed)."""
        rec = cls.__new__(cls)
        _fill(rec, args, kwargs)
        return rec

    def replace(self, **changes):
        """A copy with the given fields swapped (ex dataclasses.replace)."""
        cls = type(self)
        rec = cls.__new__(cls)
        for name in cls._fields:
            setattr(
                rec,
                name,
                changes.pop(name) if name in changes else getattr(self, name),
            )
        if changes:
            bad = ", ".join(sorted(changes))
            raise TypeError(f"{cls.__name__} has no fields: {bad}")
        return rec

    def as_dict(self) -> dict:
        """Field-name -> value mapping in field order (ex asdict)."""
        return {name: getattr(self, name) for name in self._fields}

    def _astuple(self) -> tuple:
        return tuple(getattr(self, name) for name in self._fields)

    def __eq__(self, other):
        if type(other) is not type(self):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self):
        return hash(self._astuple())

    def __repr__(self):
        body = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._fields
        )
        return f"{type(self).__name__}({body})"

    def __reduce__(self):
        return _restore, (type(self), self._astuple())


class TaskRecord(_Record):
    """Completed-task timeline entry.

    ``energy_j`` is the modeled energy spent executing the task
    (duration x the busy power of every occupied worker, joules);
    ``node`` is the memory node the task computed from (its anchor
    worker's node); ``reads``/``writes`` are the handle ids touched;
    ``deps`` the task ids this task depended on (sequential data
    consistency); ``submit_seq`` the per-engine submission index (dense,
    unlike the global ``task_id``); ``seq`` the causal recording order
    shared with transfers/evictions/accesses — the invariant checker
    replays records in that order.
    """

    __slots__ = (
        "task_id",
        "name",
        "codelet",
        "variant",
        "arch",
        "worker_ids",
        "submit_time",
        "ready_time",
        "start_time",
        "end_time",
        "energy_j",
        "node",
        "reads",
        "writes",
        "deps",
        "submit_seq",
        "seq",
    )
    _fields = __slots__
    _defaults = {
        "energy_j": 0.0,
        "node": -1,
        "reads": (),
        "writes": (),
        "deps": (),
        "submit_seq": -1,
        "seq": -1,
    }
    _float_fields = frozenset(
        {"submit_time", "ready_time", "start_time", "end_time", "energy_j"}
    )

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class TransferRecord(_Record):
    """One modeled data copy between memory nodes."""

    __slots__ = (
        "handle_id",
        "handle_name",
        "src_node",
        "dst_node",
        "nbytes",
        "start_time",
        "end_time",
        "seq",
    )
    _fields = __slots__
    _defaults = {"seq": -1}
    _float_fields = frozenset({"start_time", "end_time"})

    @property
    def is_h2d(self) -> bool:
        return self.src_node == HOST_NODE and self.dst_node != HOST_NODE

    @property
    def is_d2h(self) -> bool:
        return self.src_node != HOST_NODE and self.dst_node == HOST_NODE


class EvictionRecord(_Record):
    """One device-memory eviction (copy dropped to make room).

    ``flushed`` is True when the copy had to be written home first.
    """

    __slots__ = (
        "handle_id",
        "handle_name",
        "node",
        "nbytes",
        "time",
        "flushed",
        "seq",
    )
    _fields = __slots__
    _defaults = {"seq": -1}
    _float_fields = frozenset({"time"})


#: host-access kinds (see :meth:`ExecutionTrace.record_access`)
ACCESS_KINDS = (
    "acquire",  # application program touched the data on the host
    "unregister",  # handle flushed home and released
    "partition",  # handle split into chunk children (``related`` ids)
    "unpartition",  # children gathered back into the parent
)


class AccessRecord(_Record):
    """One host-side data-management event (container/application access).

    The coherence half of the invariant checker needs these to replay
    the container state machine: a host read is only legal over a valid
    (or just-transferred) host copy, a host write makes the host the
    sole owner, and partitioning hands the parent's coherence state to
    its children.  ``mode`` is the access mode ("r"/"w"/"rw") for
    acquire events, "" otherwise; ``related`` holds child handle ids for
    partition/unpartition events.
    """

    __slots__ = (
        "kind",
        "handle_id",
        "handle_name",
        "mode",
        "time",
        "related",
        "seq",
    )
    _fields = __slots__
    _defaults = {"related": (), "seq": -1}
    _float_fields = frozenset({"time"})


#: fault-record kinds (see :mod:`repro.hw.faults` for injection and the
#: engine's recovery layer for handling)
FAULT_KINDS = (
    "kernel",  # transient kernel failure during one execution attempt
    "transfer",  # one corrupted transfer attempt (retransmitted in place)
    "transfer_abort",  # transfer retransmissions exhausted; task attempt failed
    "device_lost",  # a device dropped off the bus permanently
    "replica_lost",  # sole-owner replica on a lost device, re-sourced from host
    "blacklisted",  # a worker crossed the transient-fault budget and was retired
)


class FaultRecord(_Record):
    """One injected fault (and how far recovery had to go).

    ``task_id`` is the failed task attempt (None for pure transfer/
    replica events); ``worker_ids`` the workers occupied by the failed
    attempt; ``node`` the memory node involved (transfers, device loss,
    replica recovery); ``attempt`` the retry attempt index this fault
    struck (0 = first try).
    """

    __slots__ = (
        "kind",
        "time",
        "task_id",
        "task_name",
        "worker_ids",
        "node",
        "handle_id",
        "handle_name",
        "attempt",
        "detail",
        "seq",
    )
    _fields = __slots__
    _defaults = {
        "task_id": None,
        "task_name": "",
        "worker_ids": (),
        "node": None,
        "handle_id": None,
        "handle_name": "",
        "attempt": 0,
        "detail": "",
        "seq": -1,
    }
    _float_fields = frozenset({"time"})


#: shared by every default-constructed RequestRecord, so two traces
#: built in one process compare equal on never-set time fields (nan
#: equality holds only through the identity shortcut)
_NAN = float("nan")


class RequestRecord(_Record):
    """One client request served (or shed) by the composition service.

    Requests are the serving layer's unit of accounting: a tenant's
    component invocation travels arrival -> admission -> batch queue ->
    dispatch (task submission) -> execution.  The record decomposes the
    end-to-end latency into queue wait (arrival to dispatch), pending
    time (dispatch to execution start: staging transfers plus waiting
    for a worker) and execution time, which is what the per-tenant SLO
    report aggregates.  ``shed`` marks rejection by admission control
    (never dispatched); ``delayed`` a request held back by a delaying
    admission controller; ``failed`` dispatched but abandoned
    (unrecoverable injected fault); ``transfer_s`` seconds of staging
    transfers committed while dispatching; ``batch_size`` the coalesced
    batch the request was dispatched in.
    """

    __slots__ = (
        "tenant",
        "req_id",
        "codelet",
        "arrival_time",
        "shed",
        "delayed",
        "failed",
        "dispatch_time",
        "start_time",
        "end_time",
        "transfer_s",
        "batch_size",
        "task_id",
    )
    _fields = __slots__
    _defaults = {
        "shed": False,
        "delayed": False,
        "failed": False,
        "dispatch_time": _NAN,
        "start_time": _NAN,
        "end_time": _NAN,
        "transfer_s": 0.0,
        "batch_size": 1,
        "task_id": None,
    }
    _float_fields = frozenset(
        {"arrival_time", "dispatch_time", "start_time", "end_time", "transfer_s"}
    )

    @property
    def completed(self) -> bool:
        return not self.shed and not self.failed

    @property
    def latency(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.end_time - self.arrival_time

    @property
    def queue_wait(self) -> float:
        """Admission plus batch-queue wait before dispatch."""
        return self.dispatch_time - self.arrival_time

    @property
    def pending_wait(self) -> float:
        """Dispatch to execution start (staging + worker queueing)."""
        return self.start_time - self.dispatch_time

    @property
    def exec_s(self) -> float:
        return self.end_time - self.start_time


# ---------------------------------------------------------------------------
# columnar storage
# ---------------------------------------------------------------------------


class _ColumnStore:
    """Struct-of-arrays backing for one record kind.

    One column per record field — ``array('d')`` for float fields
    (times, energy), a plain list otherwise — plus a parallel cache of
    materialized record objects (None until someone indexes that row).
    The engine's hot path appends raw rows (:meth:`append_row`) and
    never pays for a record object; forged records appended wholesale
    (:meth:`append_record`) keep their identity, which matters for the
    shared-nan equality of default RequestRecord fields.
    """

    __slots__ = (
        "cls",
        "_fields",
        "_cols",
        "append_row",
        "append_stamped",
        "columns",
        "_cache",
    )

    def __init__(self, cls: type) -> None:
        self.cls = cls
        self._fields = cls._fields
        self.columns: dict = {
            name: array("d") if name in cls._float_fields else []
            for name in cls._fields
        }
        self._cols = tuple(self.columns[name] for name in cls._fields)
        self._cache: list = []
        # generate a specialized append_row for this record shape: tuple
        # unpack plus one bound-append call per column beats iterating a
        # zip of (append, value) pairs on the per-task hot path, and the
        # unpack also rejects rows of the wrong width for free
        n = len(self._cols)
        binds = ", ".join(f"_a{i}=_cols[{i}].append" for i in range(n))
        unpack = ", ".join(f"v{i}" for i in range(n))
        calls = "; ".join(f"_a{i}(v{i})" for i in range(n))
        src = (
            f"def append_row(values, _miss=_cache.append, {binds}):\n"
            f"    {unpack}, = values\n"
            f"    {calls}\n"
            f"    _miss(None)\n"
        )
        ns: dict = {"_cols": self._cols, "_cache": self._cache}
        exec(src, ns)  # noqa: S102 - static template, no external input
        self.append_row = ns["append_row"]
        # variant for the engine's stamped appends: the row arrives
        # without the trailing ``seq`` (passed separately), sparing one
        # tuple concatenation per task/transfer
        if self._fields and self._fields[-1] == "seq":
            unpack2 = ", ".join(f"v{i}" for i in range(n - 1))
            calls2 = "; ".join(f"_a{i}(v{i})" for i in range(n - 1))
            src2 = (
                f"def append_stamped(values, seq, _miss=_cache.append, "
                f"{binds}):\n"
                f"    {unpack2}, = values\n"
                f"    {calls2}\n"
                f"    _a{n - 1}(seq)\n"
                f"    _miss(None)\n"
            )
            exec(src2, ns)  # noqa: S102 - static template, no external input
            self.append_stamped = ns["append_stamped"]
        else:
            self.append_stamped = None

    def __len__(self) -> int:
        return len(self._cache)

    def append_record(self, rec) -> None:
        if type(rec) is not self.cls:
            raise TypeError(
                f"expected {self.cls.__name__}, got {type(rec).__name__}"
            )
        for name, col in zip(self._fields, self._cols):
            col.append(getattr(rec, name))
        self._cache.append(rec)

    def get(self, i: int):
        rec = self._cache[i]
        if rec is None:
            cls = self.cls
            rec = cls.__new__(cls)
            for name, col in zip(self._fields, self._cols):
                setattr(rec, name, col[i])
            self._cache[i] = rec
        return rec

    def set(self, i: int, rec) -> None:
        if type(rec) is not self.cls:
            raise TypeError(
                f"expected {self.cls.__name__}, got {type(rec).__name__}"
            )
        for name, col in zip(self._fields, self._cols):
            col[i] = getattr(rec, name)
        self._cache[i] = rec

    def clear(self) -> None:
        for col in self._cols:
            del col[:]
        self._cache.clear()


class RecordsView(Sequence):
    """Callable sequence over one record kind.

    ``trace.tasks`` behaves like the list it used to be (``len``,
    indexing, slicing, iteration, ``append``/``extend``, item
    assignment), while ``trace.tasks()`` — the blessed iteration
    spelling — returns the view itself.  Records materialize lazily out
    of the columnar store on first access.
    """

    __slots__ = ("_store",)

    def __init__(self, store: _ColumnStore) -> None:
        self._store = store

    def __call__(self) -> "RecordsView":
        return self

    def __len__(self) -> int:
        return len(self._store)

    def __getitem__(self, i):
        store = self._store
        n = len(store)
        if isinstance(i, slice):
            return [store.get(j) for j in range(*i.indices(n))]
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("record index out of range")
        return store.get(i)

    def __iter__(self):
        store = self._store
        get = store.get
        for i in range(len(store)):
            yield get(i)

    def __setitem__(self, i: int, rec) -> None:
        n = len(self._store)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("record assignment index out of range")
        self._store.set(i, rec)

    def append(self, rec) -> None:
        self._store.append_record(rec)

    def extend(self, recs) -> None:
        append = self._store.append_record
        for rec in recs:
            append(rec)

    def clear(self) -> None:
        self._store.clear()

    def __eq__(self, other):
        if isinstance(other, RecordsView):
            return list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return repr(list(self))


# ---------------------------------------------------------------------------
# derived-statistics cache
# ---------------------------------------------------------------------------


class _DerivedStats:
    """Incrementally maintained aggregates over a trace's record columns.

    The derived-stat properties of :class:`ExecutionTrace` (``n_h2d``,
    ``makespan``, ``faults_by_kind``, ...) used to rescan the full
    record lists on every call — O(n) per query, which a live obs layer
    polls constantly.  This cache folds rows in exactly once, lazily:
    each accessor first consumes whatever was appended since the last
    query, reading the raw columns so no record objects materialize.
    A store that *shrank* (``clear()``) triggers a full recompute.
    """

    __slots__ = (
        "_seen_tasks",
        "_seen_transfers",
        "_seen_faults",
        "_seen_requests",
        "n_h2d",
        "n_d2h",
        "bytes_transferred",
        "max_end",
        "total_energy_j",
        "energy_by_arch",
        "busy_time",
        "tasks_by_arch",
        "tasks_by_variant",
        "faults_by_kind",
        "faults_by_worker",
        "n_shed",
        "n_failed_requests",
        "tenants",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self._seen_tasks = 0
        self._seen_transfers = 0
        self._seen_faults = 0
        self._seen_requests = 0
        self.n_h2d = 0
        self.n_d2h = 0
        self.bytes_transferred = 0
        self.max_end = 0.0
        self.total_energy_j = 0.0
        self.energy_by_arch: dict[str, float] = {}
        self.busy_time: dict[int, float] = {}
        self.tasks_by_arch: dict[str, int] = {}
        self.tasks_by_variant: dict[str, int] = {}
        self.faults_by_kind: dict[str, int] = {}
        self.faults_by_worker: dict[int, int] = {}
        self.n_shed = 0
        self.n_failed_requests = 0
        #: insertion-ordered tenant-name set (dict used as such)
        self.tenants: dict[str, None] = {}

    def catch_up(self, trace: "ExecutionTrace") -> "_DerivedStats":
        tasks = trace._tasks
        transfers = trace._transfers
        faults = trace._faults
        requests = trace._requests
        if (
            len(tasks) < self._seen_tasks
            or len(transfers) < self._seen_transfers
            or len(faults) < self._seen_faults
            or len(requests) < self._seen_requests
        ):
            self.reset()
        n = len(tasks)
        if n > self._seen_tasks:
            cols = tasks.columns
            starts = cols["start_time"]
            ends = cols["end_time"]
            energies = cols["energy_j"]
            archs = cols["arch"]
            variants = cols["variant"]
            workers = cols["worker_ids"]
            for i in range(self._seen_tasks, n):
                end = ends[i]
                if end > self.max_end:
                    self.max_end = end
                e = energies[i]
                arch = archs[i]
                self.total_energy_j += e
                self.energy_by_arch[arch] = (
                    self.energy_by_arch.get(arch, 0.0) + e
                )
                self.tasks_by_arch[arch] = self.tasks_by_arch.get(arch, 0) + 1
                variant = variants[i]
                self.tasks_by_variant[variant] = (
                    self.tasks_by_variant.get(variant, 0) + 1
                )
                dur = end - starts[i]
                for w in workers[i]:
                    self.busy_time[w] = self.busy_time.get(w, 0.0) + dur
            self._seen_tasks = n
        n = len(transfers)
        if n > self._seen_transfers:
            cols = transfers.columns
            srcs = cols["src_node"]
            dsts = cols["dst_node"]
            sizes = cols["nbytes"]
            ends = cols["end_time"]
            for i in range(self._seen_transfers, n):
                src = srcs[i]
                dst = dsts[i]
                if src == HOST_NODE:
                    if dst != HOST_NODE:
                        self.n_h2d += 1
                elif dst == HOST_NODE:
                    self.n_d2h += 1
                self.bytes_transferred += sizes[i]
                end = ends[i]
                if end > self.max_end:
                    self.max_end = end
            self._seen_transfers = n
        n = len(faults)
        if n > self._seen_faults:
            cols = faults.columns
            kinds = cols["kind"]
            workers = cols["worker_ids"]
            for i in range(self._seen_faults, n):
                kind = kinds[i]
                self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1
                for w in workers[i]:
                    self.faults_by_worker[w] = (
                        self.faults_by_worker.get(w, 0) + 1
                    )
            self._seen_faults = n
        n = len(requests)
        if n > self._seen_requests:
            cols = requests.columns
            sheds = cols["shed"]
            faileds = cols["failed"]
            tenants = cols["tenant"]
            for i in range(self._seen_requests, n):
                if sheds[i]:
                    self.n_shed += 1
                if faileds[i]:
                    self.n_failed_requests += 1
                self.tenants.setdefault(tenants[i], None)
            self._seen_requests = n
        return self


# ---------------------------------------------------------------------------
# the trace
# ---------------------------------------------------------------------------


class ExecutionTrace:
    """Accumulates task and transfer records for one runtime session.

    No longer a dataclass: record storage is columnar (see the module
    docstring) and the class carries explicit ``RECORD_KINDS`` /
    ``COUNTER_FIELDS`` / ``STATE_FIELDS`` tuples for code that used to
    introspect ``dataclasses.fields`` (trace export, replay comparison).
    """

    #: record list attributes, in the order the old dataclass declared
    RECORD_KINDS = (
        "tasks",
        "transfers",
        "evictions",
        "faults",
        "requests",
        "accesses",
    )
    #: scalar/dict/set bookkeeping attributes (engine counters)
    COUNTER_FIELDS = (
        "n_submitted",
        "submitted_by_codelet",
        "decisions_by_codelet",
        "retries_by_codelet",
        "n_tasks_aborted",
        "next_seq",
        "n_task_retries",
        "n_tasks_recovered",
        "n_tasks_lost",
        "n_fallbacks",
        "n_exploration_decisions",
        "blacklisted_workers",
        "lost_workers",
    )
    #: the full comparable state, in old dataclass field order
    STATE_FIELDS = RECORD_KINDS + COUNTER_FIELDS

    _RECORD_CLASSES = {
        "tasks": TaskRecord,
        "transfers": TransferRecord,
        "evictions": EvictionRecord,
        "faults": FaultRecord,
        "requests": RequestRecord,
        "accesses": AccessRecord,
    }

    def __init__(
        self,
        *,
        n_submitted: int = 0,
        submitted_by_codelet: dict[str, int] | None = None,
        decisions_by_codelet: dict[str, int] | None = None,
        retries_by_codelet: dict[str, int] | None = None,
        n_tasks_aborted: int = 0,
        next_seq: int = 0,
        n_task_retries: int = 0,
        n_tasks_recovered: int = 0,
        n_tasks_lost: int = 0,
        n_fallbacks: int = 0,
        n_exploration_decisions: int = 0,
        blacklisted_workers: set[int] | None = None,
        lost_workers: set[int] | None = None,
    ) -> None:
        self._tasks = _ColumnStore(TaskRecord)
        self._transfers = _ColumnStore(TransferRecord)
        self._evictions = _ColumnStore(EvictionRecord)
        self._faults = _ColumnStore(FaultRecord)
        self._requests = _ColumnStore(RequestRecord)
        self._accesses = _ColumnStore(AccessRecord)
        self.tasks = RecordsView(self._tasks)
        self.transfers = RecordsView(self._transfers)
        self.evictions = RecordsView(self._evictions)
        self.faults = RecordsView(self._faults)
        self.requests = RecordsView(self._requests)
        self.accesses = RecordsView(self._accesses)
        #: tasks accepted by ``Engine.submit`` (conservation basis:
        #: ``n_submitted == n_tasks + n_tasks_aborted``)
        self.n_submitted = n_submitted
        #: tasks accepted per codelet name — native bookkeeping kept by
        #: the engine itself; the obs metric catalogue reads these by
        #: diffing rather than subscribing to per-task events
        self.submitted_by_codelet = dict(submitted_by_codelet or {})
        #: ``Scheduler.choose`` calls per codelet name (one per placement
        #: attempt, so fault-recovery retries count again)
        self.decisions_by_codelet = dict(decisions_by_codelet or {})
        #: placement attempts after a fault (attempt > 0) per codelet name
        self.retries_by_codelet = dict(retries_by_codelet or {})
        #: tasks aborted without executing (unplaceable, retries exhausted)
        self.n_tasks_aborted = n_tasks_aborted
        #: monotone recording sequence shared by task/transfer/eviction/
        #: access/fault records — the trace's causal order
        self.next_seq = next_seq
        #: task-level retries the recovery layer performed (one per failed
        #: execution attempt that was rescheduled)
        self.n_task_retries = n_task_retries
        #: tasks that faulted at least once but eventually completed
        self.n_tasks_recovered = n_tasks_recovered
        #: tasks abandoned after exhausting the retry budget
        self.n_tasks_lost = n_tasks_lost
        #: recovered tasks whose final placement used a different backend
        #: architecture than the first failed attempt (e.g. GPU -> CPU)
        self.n_fallbacks = n_fallbacks
        #: placement decisions made while the performance model was still
        #: uncalibrated for the task (scheduler exploration / calibration
        #: phase); a warm-started run should keep this at zero
        self.n_exploration_decisions = n_exploration_decisions
        #: workers disabled after repeated transient faults
        self.blacklisted_workers = set(blacklisted_workers or ())
        #: workers whose device was permanently lost
        self.lost_workers = set(lost_workers or ())
        # derived-stat cache (invisible to STATE_FIELDS comparisons)
        self._stats = _DerivedStats()

    def _derived(self) -> _DerivedStats:
        return self._stats.catch_up(self)

    # -- blessed column access ----------------------------------------------

    def columns(self, field: str, kind: str = "tasks"):
        """The raw column for one record field — a read-only view.

        The cheapest way to fold an aggregate over a large trace
        (``array('d')`` for float fields, a plain list otherwise); do
        not mutate the returned sequence.
        """
        if kind not in self.RECORD_KINDS:
            raise KeyError(
                f"unknown record kind {kind!r}; one of {self.RECORD_KINDS}"
            )
        store: _ColumnStore = getattr(self, "_" + kind)
        try:
            return store.columns[field]
        except KeyError:
            raise KeyError(
                f"{kind} records have no field {field!r}; fields are "
                f"{store.cls._fields}"
            ) from None

    def state_dict(self) -> dict:
        """Comparable full state: record dicts plus counters.

        Sets are sorted so two equal traces compare equal; the replay
        checker diffs two of these.
        """
        doc: dict = {}
        for kind in self.RECORD_KINDS:
            doc[kind] = [rec.as_dict() for rec in getattr(self, kind)]
        for name in self.COUNTER_FIELDS:
            value = getattr(self, name)
            doc[name] = sorted(value) if isinstance(value, set) else value
        return doc

    # -- recording ----------------------------------------------------------

    def add_task(self, values: tuple) -> None:
        """Hot-path append: one task row, ``seq`` stamped in place.

        ``values`` holds every :class:`TaskRecord` field except the
        trailing ``seq`` in declaration order.  No record object is
        built; one materializes lazily if somebody indexes the row.
        """
        seq = self.next_seq
        self.next_seq = seq + 1
        self._tasks.append_stamped(values, seq)

    def add_transfer(self, values: tuple) -> None:
        """Hot-path append: one transfer row, ``seq`` stamped in place."""
        seq = self.next_seq
        self.next_seq = seq + 1
        self._transfers.append_stamped(values, seq)

    def _stamp(self, rec):
        rec = rec.replace(seq=self.next_seq)
        self.next_seq += 1
        return rec

    def record_task(self, rec: TaskRecord) -> TaskRecord:
        rec = self._stamp(rec)
        self._tasks.append_record(rec)
        return rec

    def record_transfer(self, rec: TransferRecord) -> TransferRecord:
        rec = self._stamp(rec)
        self._transfers.append_record(rec)
        return rec

    def record_eviction(self, rec: EvictionRecord) -> EvictionRecord:
        rec = self._stamp(rec)
        self._evictions.append_record(rec)
        return rec

    def record_fault(self, rec: FaultRecord) -> FaultRecord:
        rec = self._stamp(rec)
        self._faults.append_record(rec)
        return rec

    def record_access(self, rec: AccessRecord) -> AccessRecord:
        rec = self._stamp(rec)
        self._accesses.append_record(rec)
        return rec

    def record_request(self, rec: RequestRecord) -> RequestRecord:
        self._requests.append_record(rec)
        return rec

    def records_in_seq_order(self) -> list:
        """Task/transfer/eviction/access/fault records, causal order."""
        out = [
            *self.tasks,
            *self.transfers,
            *self.evictions,
            *self.accesses,
            *self.faults,
        ]
        out.sort(key=lambda r: r.seq)
        return out

    # -- serving views -------------------------------------------------------

    @property
    def n_requests(self) -> int:
        return len(self._requests)

    @property
    def n_shed(self) -> int:
        return self._derived().n_shed

    @property
    def n_failed_requests(self) -> int:
        return self._derived().n_failed_requests

    def tenants(self) -> list[str]:
        """Tenant names seen, in first-arrival order."""
        return list(self._derived().tenants)

    def requests_for(self, tenant: str) -> list[RequestRecord]:
        return [r for r in self.requests if r.tenant == tenant]

    @property
    def n_evictions(self) -> int:
        return len(self._evictions)

    # -- fault views --------------------------------------------------------

    @property
    def n_faults(self) -> int:
        return len(self._faults)

    @property
    def n_kernel_faults(self) -> int:
        return self._derived().faults_by_kind.get("kernel", 0)

    @property
    def n_transfer_faults(self) -> int:
        return self._derived().faults_by_kind.get("transfer", 0)

    @property
    def n_devices_lost(self) -> int:
        return self._derived().faults_by_kind.get("device_lost", 0)

    @property
    def n_replicas_recovered(self) -> int:
        return self._derived().faults_by_kind.get("replica_lost", 0)

    def faults_by_kind(self) -> dict[str, int]:
        return dict(self._derived().faults_by_kind)

    def faults_by_worker(self) -> dict[int, int]:
        """Transient faults attributed to each worker (blacklist basis)."""
        return dict(self._derived().faults_by_worker)

    def faults_for_task(self, task_id: int) -> list[FaultRecord]:
        return [f for f in self.faults if f.task_id == task_id]

    # -- aggregate views ----------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    @property
    def n_transfers(self) -> int:
        return len(self._transfers)

    @property
    def n_h2d(self) -> int:
        return self._derived().n_h2d

    @property
    def n_d2h(self) -> int:
        return self._derived().n_d2h

    @property
    def bytes_transferred(self) -> int:
        return self._derived().bytes_transferred

    @property
    def makespan(self) -> float:
        """Virtual time from first task start to last task/transfer end."""
        return self._derived().max_end

    @property
    def total_energy_j(self) -> float:
        """Modeled execution energy over all tasks, in joules (basis of
        the ``min_energy`` optimization goal)."""
        return self._derived().total_energy_j

    def energy_by_arch(self) -> dict[str, float]:
        return dict(self._derived().energy_by_arch)

    def busy_time(self, worker_id: int) -> float:
        """Total virtual time ``worker_id`` spent executing tasks."""
        return self._derived().busy_time.get(worker_id, 0.0)

    def utilisation(self, worker_id: int) -> float:
        """Busy fraction of the makespan for one worker."""
        span = self.makespan
        return self.busy_time(worker_id) / span if span > 0 else 0.0

    def tasks_by_arch(self) -> dict[str, int]:
        """How many tasks each backend architecture executed."""
        return dict(self._derived().tasks_by_arch)

    def tasks_by_variant(self) -> dict[str, int]:
        return dict(self._derived().tasks_by_variant)

    def transfers_for_handle(self, handle_id: int) -> list[TransferRecord]:
        return [t for t in self.transfers if t.handle_id == handle_id]

    def summary(self) -> str:
        """Short human-readable report."""
        by_arch = ", ".join(
            f"{arch}: {n}" for arch, n in sorted(self.tasks_by_arch().items())
        )
        text = (
            f"{self.n_tasks} tasks ({by_arch or 'none'}), "
            f"{self.n_transfers} transfers "
            f"({self.n_h2d} h2d / {self.n_d2h} d2h, "
            f"{self.bytes_transferred / 1e6:.2f} MB), "
            f"makespan {self.makespan * 1e3:.3f} ms"
        )
        if len(self._faults):
            by_kind = ", ".join(
                f"{kind}: {n}" for kind, n in sorted(self.faults_by_kind().items())
            )
            text += (
                f"; {self.n_faults} faults ({by_kind}), "
                f"{self.n_task_retries} retries, "
                f"{self.n_tasks_recovered} recovered / {self.n_tasks_lost} lost"
            )
        if len(self._requests):
            text += (
                f"; {self.n_requests} requests over {len(self.tenants())} "
                f"tenants ({self.n_shed} shed, {self.n_failed_requests} failed)"
            )
        return text

    # -- canonical form -----------------------------------------------------

    def canonicalized(self) -> "ExecutionTrace":
        """A copy with dense, first-appearance task/handle numbering.

        Task ids and handle ids come from process-global counters, so
        two identical runs in one process carry different raw ids.  The
        canonical form renumbers both by order of first appearance in
        the causal record stream — and rewrites the auto-generated
        names that embed those ids (``codelet#<id>``, ``data<id>``) —
        so equal runs compare equal.  This is the basis of replay
        bit-identity and byte-identical canonical trace JSON.
        """
        task_map: dict[int, int] = {}
        handle_map: dict[int, int] = {}

        def tid(old: int) -> int:
            return task_map.setdefault(old, len(task_map))

        def hid(old: int) -> int:
            return handle_map.setdefault(old, len(handle_map))

        for rec in self.records_in_seq_order():
            if isinstance(rec, TaskRecord):
                tid(rec.task_id)
                for h in (*rec.reads, *rec.writes):
                    hid(h)
            elif isinstance(rec, (TransferRecord, EvictionRecord)):
                hid(rec.handle_id)
            elif isinstance(rec, AccessRecord):
                hid(rec.handle_id)
                for h in rec.related:
                    hid(h)
            elif isinstance(rec, FaultRecord):
                if rec.task_id is not None:
                    tid(rec.task_id)
                if rec.handle_id is not None:
                    hid(rec.handle_id)
        # references that may point outside the record stream (aborted
        # dependencies, request task ids) get ids too, in stable order
        for trec in self.tasks:
            for d in trec.deps:
                tid(d)
        for rrec in self.requests:
            if rrec.task_id is not None:
                tid(rrec.task_id)

        def task_name(name: str, old: int) -> str:
            suffix = f"#{old}"
            if name.endswith(suffix):
                return name[: -len(suffix)] + f"#{task_map[old]}"
            return name

        def handle_name(name: str, old: int) -> str:
            return f"data{handle_map[old]}" if name == f"data{old}" else name

        out = ExecutionTrace(
            n_submitted=self.n_submitted,
            submitted_by_codelet=dict(self.submitted_by_codelet),
            decisions_by_codelet=dict(self.decisions_by_codelet),
            retries_by_codelet=dict(self.retries_by_codelet),
            n_tasks_aborted=self.n_tasks_aborted,
            next_seq=self.next_seq,
            n_task_retries=self.n_task_retries,
            n_tasks_recovered=self.n_tasks_recovered,
            n_tasks_lost=self.n_tasks_lost,
            n_fallbacks=self.n_fallbacks,
            n_exploration_decisions=self.n_exploration_decisions,
            blacklisted_workers=set(self.blacklisted_workers),
            lost_workers=set(self.lost_workers),
        )
        for trec in self.tasks:
            out.tasks.append(
                trec.replace(
                    task_id=task_map[trec.task_id],
                    name=task_name(trec.name, trec.task_id),
                    reads=tuple(handle_map[h] for h in trec.reads),
                    writes=tuple(handle_map[h] for h in trec.writes),
                    deps=tuple(task_map[d] for d in trec.deps),
                )
            )
        for xrec in self.transfers:
            out.transfers.append(
                xrec.replace(
                    handle_id=handle_map[xrec.handle_id],
                    handle_name=handle_name(xrec.handle_name, xrec.handle_id),
                )
            )
        for erec in self.evictions:
            out.evictions.append(
                erec.replace(
                    handle_id=handle_map[erec.handle_id],
                    handle_name=handle_name(erec.handle_name, erec.handle_id),
                )
            )
        for arec in self.accesses:
            out.accesses.append(
                arec.replace(
                    handle_id=handle_map[arec.handle_id],
                    handle_name=handle_name(arec.handle_name, arec.handle_id),
                    related=tuple(handle_map[h] for h in arec.related),
                )
            )
        for frec in self.faults:
            out.faults.append(
                frec.replace(
                    task_id=(
                        None if frec.task_id is None else task_map[frec.task_id]
                    ),
                    task_name=(
                        frec.task_name
                        if frec.task_id is None
                        else task_name(frec.task_name, frec.task_id)
                    ),
                    handle_id=(
                        None
                        if frec.handle_id is None
                        else handle_map[frec.handle_id]
                    ),
                    handle_name=(
                        frec.handle_name
                        if frec.handle_id is None
                        else handle_name(frec.handle_name, frec.handle_id)
                    ),
                )
            )
        for rrec in self.requests:
            out.requests.append(
                rrec.replace(
                    task_id=(
                        None if rrec.task_id is None else task_map[rrec.task_id]
                    ),
                )
            )
        return out

    def clear(self) -> None:
        self._tasks.clear()
        self._transfers.clear()
        self._evictions.clear()
        self._faults.clear()
        self._requests.clear()
        self._accesses.clear()
        self.n_submitted = 0
        self.submitted_by_codelet.clear()
        self.decisions_by_codelet.clear()
        self.retries_by_codelet.clear()
        self.n_tasks_aborted = 0
        self.next_seq = 0
        self.n_task_retries = 0
        self.n_tasks_recovered = 0
        self.n_tasks_lost = 0
        self.n_fallbacks = 0
        self.n_exploration_decisions = 0
        self.blacklisted_workers.clear()
        self.lost_workers.clear()
        self._stats.reset()
