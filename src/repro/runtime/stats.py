"""Execution trace and statistics for simulated runs.

The trace is the evidence base for every experiment in the paper:
makespan (Figures 5-7), per-worker utilisation (hybrid execution), data
transfer counts and volumes (Figure 3's copy elision, Figure 5's
communication bottleneck), and per-task timelines for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hw.machine import HOST_NODE


@dataclass(frozen=True)
class TaskRecord:
    """Completed-task timeline entry."""

    task_id: int
    name: str
    codelet: str
    variant: str
    arch: str
    worker_ids: tuple[int, ...]
    submit_time: float
    ready_time: float
    start_time: float
    end_time: float
    #: modeled energy spent executing this task (duration x the busy
    #: power of every occupied worker), in joules
    energy_j: float = 0.0
    #: memory node the task computed from (its anchor worker's node)
    node: int = -1
    #: handle ids the task read / wrote
    reads: tuple[int, ...] = ()
    writes: tuple[int, ...] = ()
    #: task ids this task depended on (sequential data consistency)
    deps: tuple[int, ...] = ()
    #: per-engine submission index (dense, unlike the global task_id)
    submit_seq: int = -1
    #: causal recording order shared with transfers/evictions/accesses;
    #: the invariant checker replays records in this order
    seq: int = -1

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass(frozen=True)
class TransferRecord:
    """One modeled data copy between memory nodes."""

    handle_id: int
    handle_name: str
    src_node: int
    dst_node: int
    nbytes: int
    start_time: float
    end_time: float
    seq: int = -1

    @property
    def is_h2d(self) -> bool:
        return self.src_node == HOST_NODE and self.dst_node != HOST_NODE

    @property
    def is_d2h(self) -> bool:
        return self.src_node != HOST_NODE and self.dst_node == HOST_NODE


@dataclass(frozen=True)
class EvictionRecord:
    """One device-memory eviction (copy dropped to make room)."""

    handle_id: int
    handle_name: str
    node: int
    nbytes: int
    time: float
    flushed: bool  # True when the copy had to be written home first
    seq: int = -1


#: host-access kinds (see :meth:`ExecutionTrace.record_access`)
ACCESS_KINDS = (
    "acquire",  # application program touched the data on the host
    "unregister",  # handle flushed home and released
    "partition",  # handle split into chunk children (``related`` ids)
    "unpartition",  # children gathered back into the parent
)


@dataclass(frozen=True)
class AccessRecord:
    """One host-side data-management event (container/application access).

    The coherence half of the invariant checker needs these to replay
    the container state machine: a host read is only legal over a valid
    (or just-transferred) host copy, a host write makes the host the
    sole owner, and partitioning hands the parent's coherence state to
    its children.
    """

    kind: str
    handle_id: int
    handle_name: str
    #: access mode ("r"/"w"/"rw") for acquire events, "" otherwise
    mode: str
    time: float
    #: child handle ids for partition/unpartition events
    related: tuple[int, ...] = ()
    seq: int = -1


#: fault-record kinds (see :mod:`repro.hw.faults` for injection and the
#: engine's recovery layer for handling)
FAULT_KINDS = (
    "kernel",  # transient kernel failure during one execution attempt
    "transfer",  # one corrupted transfer attempt (retransmitted in place)
    "transfer_abort",  # transfer retransmissions exhausted; task attempt failed
    "device_lost",  # a device dropped off the bus permanently
    "replica_lost",  # sole-owner replica on a lost device, re-sourced from host
    "blacklisted",  # a worker crossed the transient-fault budget and was retired
)


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault (and how far recovery had to go)."""

    kind: str
    time: float
    #: failed task attempt (None for pure transfer/replica events)
    task_id: int | None = None
    task_name: str = ""
    #: workers occupied by the failed attempt
    worker_ids: tuple[int, ...] = ()
    #: memory node involved (transfers, device loss, replica recovery)
    node: int | None = None
    handle_id: int | None = None
    handle_name: str = ""
    #: retry attempt index this fault struck (0 = first try)
    attempt: int = 0
    detail: str = ""
    seq: int = -1


@dataclass(frozen=True)
class RequestRecord:
    """One client request served (or shed) by the composition service.

    Requests are the serving layer's unit of accounting: a tenant's
    component invocation travels arrival -> admission -> batch queue ->
    dispatch (task submission) -> execution.  The record decomposes the
    end-to-end latency into queue wait (arrival to dispatch), pending
    time (dispatch to execution start: staging transfers plus waiting
    for a worker) and execution time, which is what the per-tenant SLO
    report aggregates.
    """

    tenant: str
    req_id: int
    codelet: str
    arrival_time: float
    #: request rejected by admission control (never dispatched)
    shed: bool = False
    #: request was held back by a delaying admission controller
    delayed: bool = False
    #: dispatched but abandoned (unrecoverable injected fault)
    failed: bool = False
    dispatch_time: float = float("nan")
    start_time: float = float("nan")
    end_time: float = float("nan")
    #: seconds of staging transfers committed while dispatching this task
    transfer_s: float = 0.0
    #: size of the coalesced batch this request was dispatched in
    batch_size: int = 1
    task_id: int | None = None

    @property
    def completed(self) -> bool:
        return not self.shed and not self.failed

    @property
    def latency(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.end_time - self.arrival_time

    @property
    def queue_wait(self) -> float:
        """Admission plus batch-queue wait before dispatch."""
        return self.dispatch_time - self.arrival_time

    @property
    def pending_wait(self) -> float:
        """Dispatch to execution start (staging + worker queueing)."""
        return self.start_time - self.dispatch_time

    @property
    def exec_s(self) -> float:
        return self.end_time - self.start_time


class _DerivedStats:
    """Incrementally maintained aggregates over a trace's record lists.

    The derived-stat properties of :class:`ExecutionTrace` (``n_h2d``,
    ``makespan``, ``faults_by_kind``, ...) used to rescan the full
    record lists on every call — O(n) per query, which a live obs layer
    polls constantly.  This cache folds records in exactly once, lazily:
    each accessor first consumes whatever was appended since the last
    query (records are immutable and lists append-only), so direct list
    appends (``canonicalized()``, ``trace_from_dict``) are folded in
    like ``record_*`` calls.  A list that *shrank* (``clear()``, tests
    replacing a list wholesale) triggers a full recompute.

    Deliberately not a dataclass field: ``repro.check.replay`` compares
    traces by iterating ``fields(ExecutionTrace)`` and the cache must
    stay invisible to that.
    """

    __slots__ = (
        "_seen_tasks",
        "_seen_transfers",
        "_seen_faults",
        "_seen_requests",
        "n_h2d",
        "n_d2h",
        "bytes_transferred",
        "max_end",
        "total_energy_j",
        "energy_by_arch",
        "busy_time",
        "tasks_by_arch",
        "tasks_by_variant",
        "faults_by_kind",
        "faults_by_worker",
        "n_shed",
        "n_failed_requests",
        "tenants",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self._seen_tasks = 0
        self._seen_transfers = 0
        self._seen_faults = 0
        self._seen_requests = 0
        self.n_h2d = 0
        self.n_d2h = 0
        self.bytes_transferred = 0
        self.max_end = 0.0
        self.total_energy_j = 0.0
        self.energy_by_arch: dict[str, float] = {}
        self.busy_time: dict[int, float] = {}
        self.tasks_by_arch: dict[str, int] = {}
        self.tasks_by_variant: dict[str, int] = {}
        self.faults_by_kind: dict[str, int] = {}
        self.faults_by_worker: dict[int, int] = {}
        self.n_shed = 0
        self.n_failed_requests = 0
        #: insertion-ordered tenant-name set (dict used as such)
        self.tenants: dict[str, None] = {}

    def catch_up(self, trace: "ExecutionTrace") -> "_DerivedStats":
        if (
            len(trace.tasks) < self._seen_tasks
            or len(trace.transfers) < self._seen_transfers
            or len(trace.faults) < self._seen_faults
            or len(trace.requests) < self._seen_requests
        ):
            self.reset()
        for rec in trace.tasks[self._seen_tasks :]:
            self.max_end = max(self.max_end, rec.end_time)
            self.total_energy_j += rec.energy_j
            self.energy_by_arch[rec.arch] = (
                self.energy_by_arch.get(rec.arch, 0.0) + rec.energy_j
            )
            self.tasks_by_arch[rec.arch] = (
                self.tasks_by_arch.get(rec.arch, 0) + 1
            )
            self.tasks_by_variant[rec.variant] = (
                self.tasks_by_variant.get(rec.variant, 0) + 1
            )
            for w in rec.worker_ids:
                self.busy_time[w] = self.busy_time.get(w, 0.0) + rec.duration
        self._seen_tasks = len(trace.tasks)
        for xrec in trace.transfers[self._seen_transfers :]:
            if xrec.is_h2d:
                self.n_h2d += 1
            elif xrec.is_d2h:
                self.n_d2h += 1
            self.bytes_transferred += xrec.nbytes
            self.max_end = max(self.max_end, xrec.end_time)
        self._seen_transfers = len(trace.transfers)
        for frec in trace.faults[self._seen_faults :]:
            self.faults_by_kind[frec.kind] = (
                self.faults_by_kind.get(frec.kind, 0) + 1
            )
            for w in frec.worker_ids:
                self.faults_by_worker[w] = self.faults_by_worker.get(w, 0) + 1
        self._seen_faults = len(trace.faults)
        for rrec in trace.requests[self._seen_requests :]:
            if rrec.shed:
                self.n_shed += 1
            if rrec.failed:
                self.n_failed_requests += 1
            self.tenants.setdefault(rrec.tenant, None)
        self._seen_requests = len(trace.requests)
        return self


@dataclass
class ExecutionTrace:
    """Accumulates task and transfer records for one runtime session."""

    tasks: list[TaskRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)
    evictions: list[EvictionRecord] = field(default_factory=list)
    faults: list[FaultRecord] = field(default_factory=list)
    requests: list[RequestRecord] = field(default_factory=list)
    accesses: list[AccessRecord] = field(default_factory=list)
    #: tasks accepted by ``Engine.submit`` (conservation basis:
    #: ``n_submitted == n_tasks + n_tasks_aborted``)
    n_submitted: int = 0
    #: tasks accepted per codelet name — native bookkeeping kept by the
    #: engine itself (submit-time facts are not in any record until the
    #: task completes); the obs metric catalogue reads these by diffing
    #: rather than subscribing to per-task events
    submitted_by_codelet: dict[str, int] = field(default_factory=dict)
    #: ``Scheduler.choose`` calls per codelet name (one per placement
    #: attempt, so fault-recovery retries count again)
    decisions_by_codelet: dict[str, int] = field(default_factory=dict)
    #: placement attempts after a fault (attempt > 0) per codelet name
    retries_by_codelet: dict[str, int] = field(default_factory=dict)
    #: tasks aborted without executing (unplaceable, retries exhausted)
    n_tasks_aborted: int = 0
    #: monotone recording sequence shared by task/transfer/eviction/
    #: access/fault records — the trace's causal order
    next_seq: int = 0
    #: task-level retries the recovery layer performed (one per failed
    #: execution attempt that was rescheduled)
    n_task_retries: int = 0
    #: tasks that faulted at least once but eventually completed
    n_tasks_recovered: int = 0
    #: tasks abandoned after exhausting the retry budget
    n_tasks_lost: int = 0
    #: recovered tasks whose final placement used a different backend
    #: architecture than the first failed attempt (e.g. GPU -> CPU)
    n_fallbacks: int = 0
    #: placement decisions made while the performance model was still
    #: uncalibrated for the task (scheduler exploration / calibration
    #: phase); a warm-started run should keep this at zero
    n_exploration_decisions: int = 0
    #: workers disabled after repeated transient faults
    blacklisted_workers: set[int] = field(default_factory=set)
    #: workers whose device was permanently lost
    lost_workers: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        # derived-stat cache; deliberately NOT a dataclass field (replay
        # trace comparison iterates fields() and must not see it)
        self._stats = _DerivedStats()

    def _derived(self) -> _DerivedStats:
        return self._stats.catch_up(self)

    def _stamp(self, rec):
        rec = replace(rec, seq=self.next_seq)
        self.next_seq += 1
        return rec

    def record_task(self, rec: TaskRecord) -> TaskRecord:
        rec = self._stamp(rec)
        self.tasks.append(rec)
        return rec

    def record_transfer(self, rec: TransferRecord) -> TransferRecord:
        rec = self._stamp(rec)
        self.transfers.append(rec)
        return rec

    def record_eviction(self, rec: EvictionRecord) -> EvictionRecord:
        rec = self._stamp(rec)
        self.evictions.append(rec)
        return rec

    def record_fault(self, rec: FaultRecord) -> FaultRecord:
        rec = self._stamp(rec)
        self.faults.append(rec)
        return rec

    def record_access(self, rec: AccessRecord) -> AccessRecord:
        rec = self._stamp(rec)
        self.accesses.append(rec)
        return rec

    def record_request(self, rec: RequestRecord) -> RequestRecord:
        self.requests.append(rec)
        return rec

    def records_in_seq_order(self) -> list:
        """Task/transfer/eviction/access/fault records, causal order."""
        out = [
            *self.tasks,
            *self.transfers,
            *self.evictions,
            *self.accesses,
            *self.faults,
        ]
        out.sort(key=lambda r: r.seq)
        return out

    # -- serving views -------------------------------------------------------

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def n_shed(self) -> int:
        return self._derived().n_shed

    @property
    def n_failed_requests(self) -> int:
        return self._derived().n_failed_requests

    def tenants(self) -> list[str]:
        """Tenant names seen, in first-arrival order."""
        return list(self._derived().tenants)

    def requests_for(self, tenant: str) -> list[RequestRecord]:
        return [r for r in self.requests if r.tenant == tenant]

    @property
    def n_evictions(self) -> int:
        return len(self.evictions)

    # -- fault views --------------------------------------------------------

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def n_kernel_faults(self) -> int:
        return self._derived().faults_by_kind.get("kernel", 0)

    @property
    def n_transfer_faults(self) -> int:
        return self._derived().faults_by_kind.get("transfer", 0)

    @property
    def n_devices_lost(self) -> int:
        return self._derived().faults_by_kind.get("device_lost", 0)

    @property
    def n_replicas_recovered(self) -> int:
        return self._derived().faults_by_kind.get("replica_lost", 0)

    def faults_by_kind(self) -> dict[str, int]:
        return dict(self._derived().faults_by_kind)

    def faults_by_worker(self) -> dict[int, int]:
        """Transient faults attributed to each worker (blacklist basis)."""
        return dict(self._derived().faults_by_worker)

    def faults_for_task(self, task_id: int) -> list[FaultRecord]:
        return [f for f in self.faults if f.task_id == task_id]

    # -- aggregate views ----------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_transfers(self) -> int:
        return len(self.transfers)

    @property
    def n_h2d(self) -> int:
        return self._derived().n_h2d

    @property
    def n_d2h(self) -> int:
        return self._derived().n_d2h

    @property
    def bytes_transferred(self) -> int:
        return self._derived().bytes_transferred

    @property
    def makespan(self) -> float:
        """Virtual time from first task start to last task/transfer end."""
        return self._derived().max_end

    @property
    def total_energy_j(self) -> float:
        """Modeled execution energy over all tasks, in joules (basis of
        the ``min_energy`` optimization goal)."""
        return self._derived().total_energy_j

    def energy_by_arch(self) -> dict[str, float]:
        return dict(self._derived().energy_by_arch)

    def busy_time(self, worker_id: int) -> float:
        """Total virtual time ``worker_id`` spent executing tasks."""
        return self._derived().busy_time.get(worker_id, 0.0)

    def utilisation(self, worker_id: int) -> float:
        """Busy fraction of the makespan for one worker."""
        span = self.makespan
        return self.busy_time(worker_id) / span if span > 0 else 0.0

    def tasks_by_arch(self) -> dict[str, int]:
        """How many tasks each backend architecture executed."""
        return dict(self._derived().tasks_by_arch)

    def tasks_by_variant(self) -> dict[str, int]:
        return dict(self._derived().tasks_by_variant)

    def transfers_for_handle(self, handle_id: int) -> list[TransferRecord]:
        return [t for t in self.transfers if t.handle_id == handle_id]

    def summary(self) -> str:
        """Short human-readable report."""
        by_arch = ", ".join(
            f"{arch}: {n}" for arch, n in sorted(self.tasks_by_arch().items())
        )
        text = (
            f"{self.n_tasks} tasks ({by_arch or 'none'}), "
            f"{self.n_transfers} transfers "
            f"({self.n_h2d} h2d / {self.n_d2h} d2h, "
            f"{self.bytes_transferred / 1e6:.2f} MB), "
            f"makespan {self.makespan * 1e3:.3f} ms"
        )
        if self.faults:
            by_kind = ", ".join(
                f"{kind}: {n}" for kind, n in sorted(self.faults_by_kind().items())
            )
            text += (
                f"; {self.n_faults} faults ({by_kind}), "
                f"{self.n_task_retries} retries, "
                f"{self.n_tasks_recovered} recovered / {self.n_tasks_lost} lost"
            )
        if self.requests:
            text += (
                f"; {self.n_requests} requests over {len(self.tenants())} "
                f"tenants ({self.n_shed} shed, {self.n_failed_requests} failed)"
            )
        return text

    # -- canonical form -----------------------------------------------------

    def canonicalized(self) -> "ExecutionTrace":
        """A copy with dense, first-appearance task/handle numbering.

        Task ids and handle ids come from process-global counters, so
        two identical runs in one process carry different raw ids.  The
        canonical form renumbers both by order of first appearance in
        the causal record stream — and rewrites the auto-generated
        names that embed those ids (``codelet#<id>``, ``data<id>``) —
        so equal runs compare equal.  This is the basis of replay
        bit-identity and byte-identical canonical trace JSON.
        """
        task_map: dict[int, int] = {}
        handle_map: dict[int, int] = {}

        def tid(old: int) -> int:
            return task_map.setdefault(old, len(task_map))

        def hid(old: int) -> int:
            return handle_map.setdefault(old, len(handle_map))

        for rec in self.records_in_seq_order():
            if isinstance(rec, TaskRecord):
                tid(rec.task_id)
                for h in (*rec.reads, *rec.writes):
                    hid(h)
            elif isinstance(rec, (TransferRecord, EvictionRecord)):
                hid(rec.handle_id)
            elif isinstance(rec, AccessRecord):
                hid(rec.handle_id)
                for h in rec.related:
                    hid(h)
            elif isinstance(rec, FaultRecord):
                if rec.task_id is not None:
                    tid(rec.task_id)
                if rec.handle_id is not None:
                    hid(rec.handle_id)
        # references that may point outside the record stream (aborted
        # dependencies, request task ids) get ids too, in stable order
        for trec in self.tasks:
            for d in trec.deps:
                tid(d)
        for rrec in self.requests:
            if rrec.task_id is not None:
                tid(rrec.task_id)

        def task_name(name: str, old: int) -> str:
            suffix = f"#{old}"
            if name.endswith(suffix):
                return name[: -len(suffix)] + f"#{task_map[old]}"
            return name

        def handle_name(name: str, old: int) -> str:
            return f"data{handle_map[old]}" if name == f"data{old}" else name

        out = ExecutionTrace(
            n_submitted=self.n_submitted,
            submitted_by_codelet=dict(self.submitted_by_codelet),
            decisions_by_codelet=dict(self.decisions_by_codelet),
            retries_by_codelet=dict(self.retries_by_codelet),
            n_tasks_aborted=self.n_tasks_aborted,
            next_seq=self.next_seq,
            n_task_retries=self.n_task_retries,
            n_tasks_recovered=self.n_tasks_recovered,
            n_tasks_lost=self.n_tasks_lost,
            n_fallbacks=self.n_fallbacks,
            n_exploration_decisions=self.n_exploration_decisions,
            blacklisted_workers=set(self.blacklisted_workers),
            lost_workers=set(self.lost_workers),
        )
        for trec in self.tasks:
            out.tasks.append(
                replace(
                    trec,
                    task_id=task_map[trec.task_id],
                    name=task_name(trec.name, trec.task_id),
                    reads=tuple(handle_map[h] for h in trec.reads),
                    writes=tuple(handle_map[h] for h in trec.writes),
                    deps=tuple(task_map[d] for d in trec.deps),
                )
            )
        for xrec in self.transfers:
            out.transfers.append(
                replace(
                    xrec,
                    handle_id=handle_map[xrec.handle_id],
                    handle_name=handle_name(xrec.handle_name, xrec.handle_id),
                )
            )
        for erec in self.evictions:
            out.evictions.append(
                replace(
                    erec,
                    handle_id=handle_map[erec.handle_id],
                    handle_name=handle_name(erec.handle_name, erec.handle_id),
                )
            )
        for arec in self.accesses:
            out.accesses.append(
                replace(
                    arec,
                    handle_id=handle_map[arec.handle_id],
                    handle_name=handle_name(arec.handle_name, arec.handle_id),
                    related=tuple(handle_map[h] for h in arec.related),
                )
            )
        for frec in self.faults:
            out.faults.append(
                replace(
                    frec,
                    task_id=(
                        None if frec.task_id is None else task_map[frec.task_id]
                    ),
                    task_name=(
                        frec.task_name
                        if frec.task_id is None
                        else task_name(frec.task_name, frec.task_id)
                    ),
                    handle_id=(
                        None
                        if frec.handle_id is None
                        else handle_map[frec.handle_id]
                    ),
                    handle_name=(
                        frec.handle_name
                        if frec.handle_id is None
                        else handle_name(frec.handle_name, frec.handle_id)
                    ),
                )
            )
        for rrec in self.requests:
            out.requests.append(
                replace(
                    rrec,
                    task_id=(
                        None if rrec.task_id is None else task_map[rrec.task_id]
                    ),
                )
            )
        return out

    def clear(self) -> None:
        self.tasks.clear()
        self.transfers.clear()
        self.evictions.clear()
        self.faults.clear()
        self.requests.clear()
        self.accesses.clear()
        self.n_submitted = 0
        self.submitted_by_codelet.clear()
        self.decisions_by_codelet.clear()
        self.retries_by_codelet.clear()
        self.n_tasks_aborted = 0
        self.next_seq = 0
        self.n_task_retries = 0
        self.n_tasks_recovered = 0
        self.n_tasks_lost = 0
        self.n_fallbacks = 0
        self.n_exploration_decisions = 0
        self.blacklisted_workers.clear()
        self.lost_workers.clear()
        self._stats.reset()
