"""Data access modes for task operands.

PEPPHER interfaces declare each parameter's access type (read, write or
both); the runtime uses these to infer inter-task dependencies and to
decide which coherence actions (transfers, invalidations) a task needs.
"""

from __future__ import annotations

from enum import Enum


class AccessMode(Enum):
    """How a task (or the host program) accesses one operand."""

    R = "r"  #: read-only
    W = "w"  #: write-only (previous contents are irrelevant)
    RW = "rw"  #: read-write

    @property
    def reads(self) -> bool:
        """True if the previous contents of the operand are needed."""
        return self in (AccessMode.R, AccessMode.RW)

    @property
    def writes(self) -> bool:
        """True if the operand is modified."""
        return self in (AccessMode.W, AccessMode.RW)

    @classmethod
    def parse(cls, text: str) -> "AccessMode":
        """Parse from descriptor text (``read``/``write``/``readwrite``
        or the short forms ``r``/``w``/``rw``), case-insensitively."""
        key = text.strip().lower()
        aliases = {
            "r": cls.R,
            "read": cls.R,
            "in": cls.R,
            "w": cls.W,
            "write": cls.W,
            "out": cls.W,
            "rw": cls.RW,
            "readwrite": cls.RW,
            "read-write": cls.RW,
            "inout": cls.RW,
        }
        try:
            return aliases[key]
        except KeyError:
            raise ValueError(f"unknown access mode {text!r}") from None
