"""Data access modes for task operands.

PEPPHER interfaces declare each parameter's access type (read, write or
both); the runtime uses these to infer inter-task dependencies and to
decide which coherence actions (transfers, invalidations) a task needs.
"""

from __future__ import annotations

from enum import Enum


class AccessMode(Enum):
    """How a task (or the host program) accesses one operand.

    ``reads`` (previous contents are needed) and ``writes`` (the operand
    is modified) are plain precomputed member attributes, not properties:
    every operand of every task is checked against them on the
    scheduling hot path.
    """

    R = "r"  #: read-only
    W = "w"  #: write-only (previous contents are irrelevant)
    RW = "rw"  #: read-write

    reads: bool
    writes: bool

    @classmethod
    def parse(cls, text: str) -> "AccessMode":
        """Parse from descriptor text (``read``/``write``/``readwrite``
        or the short forms ``r``/``w``/``rw``), case-insensitively."""
        # fast path for the canonical lowercase short forms, which is
        # what every submit() call in a tight loop passes
        member = cls._value2member_map_.get(text)
        if member is not None:
            return member
        key = text.strip().lower()
        aliases = {
            "r": cls.R,
            "read": cls.R,
            "in": cls.R,
            "w": cls.W,
            "write": cls.W,
            "out": cls.W,
            "rw": cls.RW,
            "readwrite": cls.RW,
            "read-write": cls.RW,
            "inout": cls.RW,
        }
        try:
            return aliases[key]
        except KeyError:
            raise ValueError(f"unknown access mode {text!r}") from None


# precomputed per-member flags (see class docstring)
AccessMode.R.reads = True
AccessMode.R.writes = False
AccessMode.W.reads = False
AccessMode.W.writes = True
AccessMode.RW.reads = True
AccessMode.RW.writes = True
