"""Backend architectures for implementation variants.

A PEPPHER component implementation targets one platform/programming model
(serial C++ on a CPU core, OpenMP across the CPU cores, CUDA or OpenCL on
an accelerator).  The runtime maps each architecture onto the machine's
processing units.
"""

from __future__ import annotations

from enum import Enum

from repro.hw.devices import DeviceKind
from repro.hw.description import ProcessingUnit


class Arch(Enum):
    """Programming-model / target-architecture of a variant."""

    CPU = "cpu"  #: sequential code on one CPU core
    OPENMP = "openmp"  #: parallel code over a gang of CPU cores
    CUDA = "cuda"  #: NVIDIA GPU kernel (wrapped in a CPU-side call)
    OPENCL = "opencl"  #: OpenCL kernel, runnable on a GPU

    #: gang architectures occupy every CPU worker while running; a
    #: precomputed member attribute (not a property) because the engine
    #: checks it for every scheduled task
    is_gang: bool

    @classmethod
    def parse(cls, text: str) -> "Arch":
        key = text.strip().lower()
        aliases = {
            "cpu": cls.CPU,
            "c++": cls.CPU,
            "c": cls.CPU,
            "serial": cls.CPU,
            "sequential": cls.CPU,
            "openmp": cls.OPENMP,
            "omp": cls.OPENMP,
            "cpu/openmp": cls.OPENMP,
            "cuda": cls.CUDA,
            "gpu": cls.CUDA,
            "opencl": cls.OPENCL,
        }
        try:
            return aliases[key]
        except KeyError:
            raise ValueError(f"unknown architecture {text!r}") from None

    def runs_on(self, unit: ProcessingUnit) -> bool:
        """Whether a variant of this arch can execute on ``unit``.

        OpenMP variants are *gang* tasks: they are anchored on one CPU
        unit but occupy the whole CPU gang (see the engine).
        """
        if self in (Arch.CPU, Arch.OPENMP):
            return unit.device.kind is DeviceKind.CPU
        return unit.device.kind is DeviceKind.GPU


# precomputed per-member flags (see the is_gang annotation above)
Arch.CPU.is_gang = False
Arch.OPENMP.is_gang = True
Arch.CUDA.is_gang = False
Arch.OPENCL.is_gang = False
