"""Typed engine event subscription API (`EngineEvents`).

One subscription surface replaces the ad-hoc ``add_submit_hook`` /
``add_complete_hook`` pair: every layer that needs to observe the engine
— the serving front-end, :mod:`repro.check`'s decision recorder, the
:mod:`repro.obs` metrics/tracing stack — subscribes to the same stream
of typed events:

==========  ==============================================================
kind        emitted when
==========  ==============================================================
submit      a task was accepted by :meth:`Engine.submit`
schedule    the scheduling policy returned a decision for a ready task
            (one event per ``Scheduler.choose`` call, so fault-recovery
            retries each produce their own event)
start       a placement was committed and the task's timeline is known
complete    the task's completion event was processed
transfer    a data copy between memory nodes was committed
evict       a device-resident copy was dropped to make room
fault       an injected hardware fault was recorded
flush       the engine drained at shutdown; subscribers must finalize
            any buffered state *now*, before shutdown-time consumers
            (invariant checking, trace export, model persistence) run
==========  ==============================================================

Payloads are slim ``slots`` dataclasses — treat them as immutable
(they are not frozen only because plain attribute assignment constructs
measurably faster on the per-task hot path).  Emission is zero-cost for
kinds nobody subscribed to (an empty-list check), which keeps the
metrics-off engine at its old speed.

Delivery is synchronous and in emission order.  Subscribers must not
submit tasks or otherwise re-enter the engine from a callback.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.schedulers.base import Decision
    from repro.runtime.stats import (
        EvictionRecord,
        FaultRecord,
        TaskRecord,
        TransferRecord,
    )
    from repro.runtime.task import Task


@dataclass(slots=True)
class SubmitEvent:
    """A task was accepted for execution."""

    time: float
    task: "Task"


@dataclass(slots=True)
class ScheduleEvent:
    """The policy chose (variant, workers) for a ready task.

    Emitted once per ``Scheduler.choose`` call — a task that faults and
    is retried produces one event per attempt (``attempt`` counts them,
    0 = first try), which is exactly the stream deterministic replay
    must record.
    """

    time: float
    task: "Task"
    decision: "Decision"
    attempt: int


@dataclass(slots=True)
class StartEvent:
    """A placement was committed; the task timeline is now known.

    ``time`` is the task's (virtual) start time; ``task.end_time`` is
    already valid because the engine computes timelines eagerly.
    """

    time: float
    task: "Task"


@dataclass(slots=True)
class CompleteEvent:
    """A task's completion event was processed."""

    time: float
    task: "Task"
    record: "TaskRecord"


@dataclass(slots=True)
class TransferEvent:
    """A data copy between memory nodes was committed.

    ``task`` is the task whose staging caused the copy, or ``None`` for
    host-initiated transfers (container acquire, unregister, eviction
    flush).
    """

    time: float
    record: "TransferRecord"
    task: "Task | None"


@dataclass(slots=True)
class EvictEvent:
    """A device-resident copy was dropped to make room."""

    time: float
    record: "EvictionRecord"


@dataclass(slots=True)
class FaultEvent:
    """An injected hardware fault was recorded."""

    time: float
    record: "FaultRecord"


@dataclass(slots=True)
class FlushEvent:
    """The engine drained at shutdown; finalize buffered state now."""

    time: float


#: subscription kinds, in rough lifecycle order
EVENT_KINDS = (
    "submit",
    "schedule",
    "start",
    "complete",
    "transfer",
    "evict",
    "fault",
    "flush",
)


class EngineEvents:
    """Per-engine registry of typed event subscribers.

    Subscribe either one callback per kind::

        unsubscribe = engine.events.subscribe("complete", on_complete)

    or a whole observer object whose ``on_<kind>`` methods are bound in
    one call::

        detach = engine.events.attach(observer)   # binds on_submit, ...

    Both forms return a zero-argument detach callable.
    """

    __slots__ = ("_subs", "_live")

    def __init__(self) -> None:
        self._subs: dict[str, list[Callable]] = {k: [] for k in EVENT_KINDS}
        # emission-side snapshots: a tuple per kind, rebuilt on
        # (un)subscribe, so delivery never copies and unsubscribing from
        # inside a callback cannot corrupt an in-flight dispatch
        self._live: dict[str, tuple[Callable, ...]] = {
            k: () for k in EVENT_KINDS
        }

    # -- subscription --------------------------------------------------------

    def subscribe(self, kind: str, fn: Callable) -> Callable[[], None]:
        """Register ``fn`` for one event kind; returns an unsubscriber."""
        try:
            subs = self._subs[kind]
        except KeyError:
            raise KeyError(
                f"unknown engine event kind {kind!r}; known: {EVENT_KINDS}"
            ) from None
        subs.append(fn)
        self._live[kind] = tuple(subs)

        def unsubscribe() -> None:
            try:
                subs.remove(fn)
            except ValueError:
                return
            self._live[kind] = tuple(subs)

        return unsubscribe

    def attach(self, observer: object) -> Callable[[], None]:
        """Bind every ``on_<kind>`` method ``observer`` defines.

        Returns a detach callable undoing all of them.  Raises
        ``TypeError`` when the object defines none (almost certainly a
        misspelled method name).
        """
        undos = [
            self.subscribe(kind, fn)
            for kind in EVENT_KINDS
            if callable(fn := getattr(observer, f"on_{kind}", None))
        ]
        if not undos:
            raise TypeError(
                f"{type(observer).__name__} defines no on_<kind> methods "
                f"(kinds: {EVENT_KINDS})"
            )

        def detach() -> None:
            for undo in undos:
                undo()

        return detach

    def n_subscribers(self, kind: str | None = None) -> int:
        if kind is not None:
            return len(self._subs[kind])
        return sum(len(v) for v in self._subs.values())

    # -- emission (engine-internal) ------------------------------------------
    #
    # Each emitter early-outs on "no subscribers" before building the
    # payload, so an unobserved engine pays one dict lookup and a
    # truthiness check per potential event.

    def emit_submit(self, time: float, task: "Task") -> None:
        subs = self._live["submit"]
        if subs:
            event = SubmitEvent(time, task)
            for fn in subs:
                fn(event)

    def emit_schedule(
        self, time: float, task: "Task", decision: "Decision", attempt: int
    ) -> None:
        subs = self._live["schedule"]
        if subs:
            event = ScheduleEvent(time, task, decision, attempt)
            for fn in subs:
                fn(event)

    def emit_start(self, time: float, task: "Task") -> None:
        subs = self._live["start"]
        if subs:
            event = StartEvent(time, task)
            for fn in subs:
                fn(event)

    def emit_complete(self, time: float, task: "Task", record) -> None:
        subs = self._live["complete"]
        if subs:
            event = CompleteEvent(time, task, record)
            for fn in subs:
                fn(event)

    def emit_transfer(self, time: float, record, task: "Task | None") -> None:
        subs = self._live["transfer"]
        if subs:
            event = TransferEvent(time, record, task)
            for fn in subs:
                fn(event)

    def emit_evict(self, time: float, record) -> None:
        subs = self._live["evict"]
        if subs:
            event = EvictEvent(time, record)
            for fn in subs:
                fn(event)

    def emit_fault(self, time: float, record) -> None:
        subs = self._live["fault"]
        if subs:
            event = FaultEvent(time, record)
            for fn in subs:
                fn(event)

    def emit_flush(self, time: float) -> None:
        subs = self._live["flush"]
        if subs:
            event = FlushEvent(time)
            for fn in subs:
                fn(event)


#: one-shot guard for the hook-pair deprecation below
_hook_warned = False


def warn_hook_api(entry: str, stacklevel: int = 3) -> None:
    """Emit the hook-pair `DeprecationWarning` at most once per process.

    Mirrors :func:`repro.runtime.schedulers.warn_scheduler_instance`:
    the old ``add_submit_hook``/``add_complete_hook`` methods keep
    working as shims over :class:`EngineEvents`, but internal code paths
    must use the subscription API (the test suite escalates this warning
    to an error for them).
    """
    global _hook_warned
    if _hook_warned:
        return
    _hook_warned = True
    warnings.warn(
        f"the add_submit_hook/add_complete_hook pair is deprecated; "
        f"subscribe to the typed event stream instead — {entry} delegates "
        f'to Engine.events.subscribe("submit"/"complete", fn)',
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_hook_warning() -> None:
    """Re-arm the one-shot deprecation (for tests)."""
    global _hook_warned
    _hook_warned = False
