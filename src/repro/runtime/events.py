"""Typed engine event subscription API (`EngineEvents`).

One subscription surface replaces the ad-hoc ``add_submit_hook`` /
``add_complete_hook`` pair: every layer that needs to observe the engine
— the serving front-end, :mod:`repro.check`'s decision recorder, the
:mod:`repro.obs` metrics/tracing stack — subscribes to the same stream
of typed events:

==========  ==============================================================
kind        emitted when
==========  ==============================================================
submit      a task was accepted by :meth:`Engine.submit`
schedule    the scheduling policy returned a decision for a ready task
            (one event per ``Scheduler.choose`` call, so fault-recovery
            retries each produce their own event)
start       a placement was committed and the task's timeline is known
complete    the task's completion event was processed
transfer    a data copy between memory nodes was committed
evict       a device-resident copy was dropped to make room
fault       an injected hardware fault was recorded
flush       the engine drained at shutdown; subscribers must finalize
            any buffered state *now*, before shutdown-time consumers
            (invariant checking, trace export, model persistence) run
==========  ==============================================================

Payloads are slim ``slots`` dataclasses — treat them as immutable
(they are not frozen only because plain attribute assignment constructs
measurably faster on the per-task hot path).  Emission is zero-cost for
kinds nobody subscribed to: the engine checks the per-kind ``want_<kind>``
plain-bool attribute before even building the payload, so a metrics-off
run constructs no event objects at all.

Delivery is *batched*: emitted events land in a bounded ring buffer and
are dispatched — in emission order, with the subscriber set captured at
emission time — when the buffer fills or the engine reaches a sync
point (end of ``submit``, host accesses, ``wait_for_all``, shutdown).
Events carry virtual timestamps, so deferred delivery is observably
identical for subscribers that do not re-read engine state from inside
a callback; subscribers must not submit tasks or otherwise re-enter the
engine from a callback.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.schedulers.base import Decision
    from repro.runtime.stats import (
        EvictionRecord,
        FaultRecord,
        TaskRecord,
        TransferRecord,
    )
    from repro.runtime.task import Task


@dataclass(slots=True)
class SubmitEvent:
    """A task was accepted for execution."""

    time: float
    task: "Task"


@dataclass(slots=True)
class ScheduleEvent:
    """The policy chose (variant, workers) for a ready task.

    Emitted once per ``Scheduler.choose`` call — a task that faults and
    is retried produces one event per attempt (``attempt`` counts them,
    0 = first try), which is exactly the stream deterministic replay
    must record.
    """

    time: float
    task: "Task"
    decision: "Decision"
    attempt: int


@dataclass(slots=True)
class StartEvent:
    """A placement was committed; the task timeline is now known.

    ``time`` is the task's (virtual) start time; ``task.end_time`` is
    already valid because the engine computes timelines eagerly.
    """

    time: float
    task: "Task"


@dataclass(slots=True)
class CompleteEvent:
    """A task's completion event was processed."""

    time: float
    task: "Task"
    record: "TaskRecord"


@dataclass(slots=True)
class TransferEvent:
    """A data copy between memory nodes was committed.

    ``task`` is the task whose staging caused the copy, or ``None`` for
    host-initiated transfers (container acquire, unregister, eviction
    flush).
    """

    time: float
    record: "TransferRecord"
    task: "Task | None"


@dataclass(slots=True)
class EvictEvent:
    """A device-resident copy was dropped to make room."""

    time: float
    record: "EvictionRecord"


@dataclass(slots=True)
class FaultEvent:
    """An injected hardware fault was recorded."""

    time: float
    record: "FaultRecord"


@dataclass(slots=True)
class FlushEvent:
    """The engine drained at shutdown; finalize buffered state now."""

    time: float


#: subscription kinds, in rough lifecycle order
EVENT_KINDS = (
    "submit",
    "schedule",
    "start",
    "complete",
    "transfer",
    "evict",
    "fault",
    "flush",
)


#: pending-event ring capacity; a full ring forces an early drain so the
#: buffer stays cache-sized however long the engine runs between syncs
RING_CAPACITY = 256


class EngineEvents:
    """Per-engine registry of typed event subscribers.

    Subscribe either one callback per kind::

        unsubscribe = engine.events.subscribe("complete", on_complete)

    or a whole observer object whose ``on_<kind>`` methods are bound in
    one call::

        detach = engine.events.attach(observer)   # binds on_submit, ...

    Both forms return a zero-argument detach callable.

    The per-kind ``want_<kind>`` plain-bool attributes mirror "anyone
    subscribed to this kind" — the engine's hot path reads them to skip
    payload construction entirely when nobody is listening.
    """

    __slots__ = (
        "_subs",
        "_live",
        "_ring",
        "_draining",
        "want_submit",
        "want_schedule",
        "want_start",
        "want_complete",
        "want_transfer",
        "want_evict",
        "want_fault",
        "want_flush",
    )

    def __init__(self) -> None:
        self._subs: dict[str, list[Callable]] = {k: [] for k in EVENT_KINDS}
        # emission-side snapshots: a tuple per kind, rebuilt on
        # (un)subscribe, so delivery never copies and unsubscribing from
        # inside a callback cannot corrupt an in-flight dispatch
        self._live: dict[str, tuple[Callable, ...]] = {
            k: () for k in EVENT_KINDS
        }
        # batched-dispatch ring: (subscriber-snapshot, event) pairs
        # waiting for the next drain
        self._ring: list = []
        self._draining = False
        for kind in EVENT_KINDS:
            setattr(self, "want_" + kind, False)

    # -- subscription --------------------------------------------------------

    def subscribe(self, kind: str, fn: Callable) -> Callable[[], None]:
        """Register ``fn`` for one event kind; returns an unsubscriber."""
        try:
            subs = self._subs[kind]
        except KeyError:
            raise KeyError(
                f"unknown engine event kind {kind!r}; known: {EVENT_KINDS}"
            ) from None
        subs.append(fn)
        self._live[kind] = tuple(subs)
        setattr(self, "want_" + kind, True)

        def unsubscribe() -> None:
            try:
                subs.remove(fn)
            except ValueError:
                return
            self._live[kind] = tuple(subs)
            setattr(self, "want_" + kind, bool(subs))

        return unsubscribe

    def attach(self, observer: object) -> Callable[[], None]:
        """Bind every ``on_<kind>`` method ``observer`` defines.

        Returns a detach callable undoing all of them.  Raises
        ``TypeError`` when the object defines none (almost certainly a
        misspelled method name).
        """
        undos = [
            self.subscribe(kind, fn)
            for kind in EVENT_KINDS
            if callable(fn := getattr(observer, f"on_{kind}", None))
        ]
        if not undos:
            raise TypeError(
                f"{type(observer).__name__} defines no on_<kind> methods "
                f"(kinds: {EVENT_KINDS})"
            )

        def detach() -> None:
            for undo in undos:
                undo()

        return detach

    def n_subscribers(self, kind: str | None = None) -> int:
        if kind is not None:
            return len(self._subs[kind])
        return sum(len(v) for v in self._subs.values())

    # -- emission (engine-internal) ------------------------------------------
    #
    # Each emitter short-circuits on "no subscribers" before building
    # the payload (the engine usually pre-checks the matching want_*
    # flag and skips even the call).  With subscribers, the payload and
    # the emission-time subscriber snapshot are pushed onto the ring;
    # dispatch happens in batches at drain points.

    def _enqueue(self, subs: tuple, event) -> None:
        ring = self._ring
        ring.append((subs, event))
        if len(ring) >= RING_CAPACITY:
            self.drain()

    def drain(self) -> None:
        """Dispatch every buffered event, in emission order.

        The engine calls this at its sync points (end of ``submit``,
        host accesses, ``wait_for_all``, shutdown); it is also safe —
        and a no-op — for anyone else to call at any time.  Events
        enqueued *by* a callback ride the same drain; a drain triggered
        from inside a callback (ring full mid-dispatch) defers to the
        outer one.
        """
        if self._draining:
            return
        ring = self._ring
        if not ring:
            return
        self._draining = True
        try:
            i = 0
            while i < len(ring):
                subs, event = ring[i]
                for fn in subs:
                    fn(event)
                i += 1
            ring.clear()
        finally:
            self._draining = False

    def emit_submit(self, time: float, task: "Task") -> None:
        subs = self._live["submit"]
        if subs:
            self._enqueue(subs, SubmitEvent(time, task))

    def emit_schedule(
        self, time: float, task: "Task", decision: "Decision", attempt: int
    ) -> None:
        subs = self._live["schedule"]
        if subs:
            self._enqueue(subs, ScheduleEvent(time, task, decision, attempt))

    def emit_start(self, time: float, task: "Task") -> None:
        subs = self._live["start"]
        if subs:
            self._enqueue(subs, StartEvent(time, task))

    def emit_complete(self, time: float, task: "Task", record) -> None:
        subs = self._live["complete"]
        if subs:
            self._enqueue(subs, CompleteEvent(time, task, record))

    def emit_transfer(self, time: float, record, task: "Task | None") -> None:
        subs = self._live["transfer"]
        if subs:
            self._enqueue(subs, TransferEvent(time, record, task))

    def emit_evict(self, time: float, record) -> None:
        subs = self._live["evict"]
        if subs:
            self._enqueue(subs, EvictEvent(time, record))

    def emit_fault(self, time: float, record) -> None:
        subs = self._live["fault"]
        if subs:
            self._enqueue(subs, FaultEvent(time, record))

    def emit_flush(self, time: float) -> None:
        subs = self._live["flush"]
        if subs:
            self._enqueue(subs, FlushEvent(time))
        # flush marks "finalize buffered state now" — deliver immediately
        self.drain()


#: one-shot guard for the hook-pair deprecation below
_hook_warned = False


def warn_hook_api(entry: str, stacklevel: int = 3) -> None:
    """Emit the hook-pair `DeprecationWarning` at most once per process.

    Mirrors :func:`repro.runtime.schedulers.warn_scheduler_instance`:
    the old ``add_submit_hook``/``add_complete_hook`` methods keep
    working as shims over :class:`EngineEvents`, but internal code paths
    must use the subscription API (the test suite escalates this warning
    to an error for them).
    """
    global _hook_warned
    if _hook_warned:
        return
    _hook_warned = True
    warnings.warn(
        f"the add_submit_hook/add_complete_hook pair is deprecated; "
        f"subscribe to the typed event stream instead — {entry} delegates "
        f'to Engine.events.subscribe("submit"/"complete", fn)',
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_hook_warning() -> None:
    """Re-arm the one-shot deprecation (for tests)."""
    global _hook_warned
    _hook_warned = False
