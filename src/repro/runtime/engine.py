"""The discrete-event execution engine.

Design (see DESIGN.md section 5): the *application's main program* runs
eagerly as ordinary Python and submits tasks; the engine immediately
resolves each task's implicit dependencies, and as soon as a task becomes
ready it asks the scheduling policy for a (variant, workers) decision and
computes the task's timeline — staging transfers on the PCIe links,
start on the chosen worker(s), modeled execution time with noise, end.
Completions are processed in virtual-time order from an event heap; each
completion releases dependents and feeds the performance model, so later
scheduling decisions see exactly the history a real runtime would have at
that (virtual) moment.

Host-side blocking points — smart-container accesses, synchronous calls,
``wait_for_all`` — advance the virtual clock only as far as the awaited
result requires, so the host program genuinely overlaps with outstanding
asynchronous tasks (paper section IV-E).

Values vs. time: kernels run *for real* on the NumPy payloads (results
are checkable), in dependency order; only the *durations* are modeled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import count
from typing import Callable, Iterable

import numpy as np

from repro.errors import (
    DataConsistencyError,
    DeviceLostError,
    HardwareFault,
    KernelExecutionError,
    PeppherError,
    RuntimeSystemError,
    TransferFault,
    TransientKernelFault,
    UnrecoverableTaskError,
)
from repro.exec.base import ExecFuture, ExecutionBackend
from repro.exec.timing import Measurement
from repro.hw.clock import VirtualClock
from repro.hw.faults import FaultModel
from repro.hw.description import HOST_NODE, Machine, ProcessingUnit
from repro.hw.noise import NoiseModel
from repro.runtime.access import AccessMode
from repro.runtime.codelet import ImplVariant
from repro.runtime.data import CopyState, DataHandle
from repro.runtime.events import EngineEvents, warn_hook_api
from repro.runtime.perfmodel import PerfModel
from repro.runtime.schedulers.base import Decision, Scheduler
from repro.runtime.stats import (
    AccessRecord,
    EvictionRecord,
    ExecutionTrace,
    FaultRecord,
)
from repro.runtime.task import Task, TaskState


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the engine reacts to injected hardware faults.

    The policy is deliberately StarPU-shaped: a failed execution attempt
    is retried a bounded number of times with exponential backoff *in
    virtual time*, preferring placements (variant, worker) that have not
    faulted yet for that task — which is what makes multi-variant
    codelets cheap to recover (a failed CUDA attempt falls back to the
    CPU/OpenMP variant).  Workers accumulating faults are blacklisted,
    and transfers get their own small retransmission budget because a
    corrupted copy is repaired on the wire, not by rescheduling.
    """

    #: failed execution attempts tolerated per task before giving up
    max_retries: int = 3
    #: first retry is delayed by this much virtual time...
    backoff_base_s: float = 1e-4
    #: ...growing by this factor per subsequent attempt...
    backoff_factor: float = 2.0
    #: ...up to this cap
    backoff_cap_s: float = 1e-2
    #: transient faults on one worker before it is blacklisted
    blacklist_after: int = 8
    #: retransmissions tolerated per committed transfer
    max_transfer_retries: int = 3
    #: relative jitter applied to each backoff delay: the delay is
    #: scaled by a factor in ``[1 - jitter, 1 + jitter]`` drawn from a
    #: stream keyed by the retry's identity, so concurrent retries
    #: desynchronize (no thundering herd) while replays of the same
    #: seed stay byte-identical.  0 disables jitter (the old behavior).
    backoff_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.max_transfer_retries < 0:
            raise ValueError("max_transfer_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.blacklist_after < 1:
            raise ValueError("blacklist_after must be >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )

    def backoff(self, attempt: int, u: float | None = None) -> float:
        """Virtual-time delay before retry number ``attempt`` (1-based).

        ``u`` is a uniform [0, 1) sample supplied by the caller (the
        engine keys it to the retry's identity); the jittered delay is
        still capped at ``backoff_cap_s``, so the cap is the hard
        maximum delay regardless of jitter.  ``None`` skips jitter.
        """
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if u is not None and self.backoff_jitter > 0.0:
            delay *= 1.0 + self.backoff_jitter * (2.0 * u - 1.0)
        return min(self.backoff_cap_s, delay)


class _WorkerState:
    """Mutable per-worker scheduling state."""

    __slots__ = ("unit", "available_at", "assigned_count")

    def __init__(self, unit: ProcessingUnit) -> None:
        self.unit = unit
        self.available_at = 0.0
        self.assigned_count = 0


class Engine:
    """Discrete-event engine implementing the EngineView protocol."""

    def __init__(
        self,
        machine: Machine,
        scheduler: Scheduler,
        perfmodel: PerfModel | None = None,
        noise: NoiseModel | None = None,
        submit_overhead_s: float = 1e-6,
        seed: int = 0,
        run_kernels: bool = True,
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        exec_backend: ExecutionBackend | None = None,
    ) -> None:
        """
        Parameters
        ----------
        submit_overhead_s:
            Host-side virtual time charged per task submission (the
            paper reports StarPU task overhead below ~2 microseconds).
        run_kernels:
            When False, skip the real NumPy computation and only model
            time — used by pure scheduling experiments where values are
            irrelevant and kernels would be wasted work.
        faults:
            Optional :class:`~repro.hw.faults.FaultModel` injecting
            transient kernel failures, transfer corruption and device
            loss.  ``None`` (the default) disables the whole fault path
            with zero overhead; a model with all rates zero behaves
            bit-identically.
        recovery:
            Retry/backoff/blacklist policy applied when ``faults`` is
            active (defaults to :class:`RecoveryPolicy`).
        exec_backend:
            Where kernel computations actually run (see
            :mod:`repro.exec`).  ``None`` and *inline* backends (e.g.
            :class:`~repro.exec.simulated.SimulatedBackend`) keep the
            original synchronous path byte-identical; real backends
            (thread/process pools) dispatch kernels as futures that the
            engine joins at data-hazard and host-access points, and
            every joined kernel feeds a wall-clock sample into the
            performance model under the ``"measured"`` provenance.
        """
        self.machine = machine
        self.scheduler = scheduler
        self.perf = perfmodel or PerfModel()
        self.noise = noise or NoiseModel(seed=seed)
        self.faults = faults
        #: hot-path gate: scripted device losses exist at all (the
        #: per-placement _fire_due_losses call is skipped entirely when
        #: no loss is scripted — the common, fault-free case)
        self._scripted_losses = faults is not None and bool(faults.device_loss_at)
        self.recovery = recovery or RecoveryPolicy()
        self.clock = VirtualClock()
        if faults is not None:
            faults.validate_for(machine, now=self.clock.now)
        self.trace = ExecutionTrace()
        self.submit_overhead_s = float(submit_overhead_s)
        self.run_kernels = run_kernels
        self._seed = int(seed)
        self._rng = np.random.default_rng(seed + 0x5EED)
        self._workers = [_WorkerState(u) for u in machine.units]
        #: mirror of each worker's available_at, indexed by unit id;
        #: exposed through worker_available_times() so schedulers can
        #: index instead of making one method call per candidate
        self._avail: list[float] = [0.0] * len(self._workers)
        self._gang = tuple(u for u in machine.units if u.is_cpu)
        #: per-(link node, direction) DMA availability; direction is
        #: "h2d"/"d2h" for duplex links, "both" otherwise
        self._link_free: dict[tuple[int, str], float] = {}
        #: static (node, direction) -> link-free key map (folds the
        #: duplex check out of the per-estimate hot path)
        self._link_keys: dict[tuple[int, str], tuple[int, str]] = {
            (node, d): (node, d if link.duplex else "both")
            for node, link in machine.links.items()
            for d in ("h2d", "d2h")
        }
        #: non-host memory nodes, precomputed for per-write residency
        #: sync (machine topology is fixed for the engine's lifetime)
        self._device_nodes: tuple[int, ...] = tuple(
            range(1, machine.n_memory_nodes)
        )
        #: device-memory accounting: resident top-level handles and used
        #: bytes per memory node (host is unlimited and untracked)
        self._resident: list[dict[int, DataHandle]] = [
            {} for _ in range(machine.n_memory_nodes)
        ]
        self._node_usage: list[int] = [0] * machine.n_memory_nodes
        self._node_capacity: list[int | None] = [
            machine.node_capacity(n) for n in range(machine.n_memory_nodes)
        ]
        self._events: list[tuple[float, int, Task]] = []
        self._event_seq = count()
        #: bulk (window-planning) policy support: buffered tasks awaiting
        #: a window flush.  Checked once here so the eager per-submit
        #: path pays a single attribute test (see schedulers/bulk.py).
        self._bulk = bool(getattr(scheduler, "is_bulk", False))
        self._window: list[Task] = []
        self._last_end = 0.0
        self._n_submitted = 0
        self._n_completed = 0
        self._shutdown = False
        # fault-recovery state
        #: workers whose device is permanently gone
        self._lost_workers: set[int] = set()
        #: workers disabled after repeated transient faults
        self._blacklisted: set[int] = set()
        #: transient-fault tally per worker (blacklist trigger)
        self._worker_faults: dict[int, int] = {}
        #: stable per-engine key stream for committed-transfer fault draws
        self._transfer_draws = count()
        # observability for layers above the engine (the serving front-end)
        #: end times of scheduled tasks still running in the virtual
        #: future; appended plain on the hot path and heapified on
        #: demand by n_inflight (which lazily prunes past end times)
        self._inflight_ends: list[float] = []
        self._inflight_dirty = False
        #: typed event stream every observing layer subscribes to
        #: (serving front-end, decision recorder, obs metrics/tracing)
        self.events = EngineEvents()
        #: task whose operand staging is currently committing transfers
        #: (attributes TransferEvents to their invocation)
        self._staging_task: Task | None = None
        #: per-codelet feasible-decision cache consulted by
        #: enumerate_candidates (guard-free codelets only); cleared
        #: whenever worker health changes (device loss, blacklisting)
        self.candidate_cache: dict[int, tuple] = {}
        #: one-entry (task, footprint, size) cache: schedulers query the
        #: performance model several times per choose() for the same
        #: task, and the footprint cannot change within one choice
        self._fp_cache: tuple[Task, tuple, float] | None = None
        #: (src, dst, nbytes) -> seconds memo for Machine.transfer_time
        #: (pure function of the link specs; distinct keys are few)
        self._tt_cache: dict[tuple[int, int, int], float] = {}
        # real-concurrency execution (repro.exec); inline backends take
        # the original synchronous path so defaults stay byte-identical
        self.exec_backend = exec_backend
        self._exec_inline = exec_backend is None or exec_backend.inline
        #: kernels dispatched to the backend but not yet joined
        self._pending_kernels: dict[int, tuple[Task, ExecFuture]] = {}
        #: handle_id -> [(task_id, wrote)] for pending kernels touching it
        self._handle_kernels: dict[int, list[tuple[int, bool]]] = {}
        #: wall-clock measurements of every joined kernel (kept out of
        #: the ExecutionTrace so canonical trace digests are unchanged)
        self.measurements: list[Measurement] = []

    # ------------------------------------------------------------------
    # load introspection and events (serving front-end support)
    # ------------------------------------------------------------------

    def add_submit_hook(self, fn: Callable[[Task], None]) -> None:
        """Deprecated: use ``engine.events.subscribe("submit", fn)``.

        Delegates to the typed event stream (``fn`` receives the task,
        as before) and warns once per process.
        """
        warn_hook_api("Engine.add_submit_hook")
        self.events.subscribe("submit", lambda event: fn(event.task))

    def add_complete_hook(self, fn: Callable[[Task], None]) -> None:
        """Deprecated: use ``engine.events.subscribe("complete", fn)``.

        Delegates to the typed event stream (``fn`` receives the task,
        as before) and warns once per process.
        """
        warn_hook_api("Engine.add_complete_hook")
        self.events.subscribe("complete", lambda event: fn(event.task))

    def n_inflight(self, at: float | None = None) -> int:
        """Tasks scheduled but not yet finished at virtual time ``at``.

        The engine computes task timelines eagerly, so bookkeeping-wise
        tasks complete immediately; *virtually* they occupy workers until
        their modeled end time.  This is the queue depth an admission
        controller sees.
        """
        t = self.clock.now if at is None else at
        ends = self._inflight_ends
        if self._inflight_dirty:
            heapq.heapify(ends)
            self._inflight_dirty = False
        while ends and ends[0] <= t:
            heapq.heappop(ends)
        return len(ends)

    def resident_bytes(self, node: int | None = None) -> int:
        """Container bytes resident at one device memory node (or the
        sum over all device nodes; the host is unlimited and untracked)."""
        if node is not None:
            return self._node_usage[node]
        return sum(self._node_usage[1:])

    def backlog_seconds(self, at: float | None = None) -> float:
        """Committed work (seconds) ahead of the most loaded usable worker.

        Zero when every worker is idle at ``at``; the admission layer
        combines this with :class:`~repro.runtime.perfmodel.PerfModel`
        estimates of queued-but-undispatched requests to predict backlog.
        """
        t = self.clock.now if at is None else at
        free = [
            ws.available_at
            for ws in self._workers
            if self.worker_usable(ws.unit.unit_id)
        ]
        if not free:
            return 0.0
        return max(0.0, max(free) - t)

    # ------------------------------------------------------------------
    # EngineView protocol (what schedulers may see)
    # ------------------------------------------------------------------

    def worker_available_at(self, unit_id: int) -> float:
        return self._workers[unit_id].available_at

    def worker_available_times(self) -> list[float]:
        """Live per-worker available_at list indexed by unit id.

        Read-only for schedulers; indexing it replaces one
        worker_available_at call per candidate on the choose hot path.
        """
        return self._avail

    def worker_assigned_count(self, unit_id: int) -> int:
        return self._workers[unit_id].assigned_count

    def estimate_data_ready(self, task: Task, node: int) -> float:
        """Earliest time the task's operands could be valid at ``node``.

        Pending copies share one DMA engine per direction, so their
        estimated transfers *serialize* (StarPU's dmda models per-link
        queues the same way); ignoring that would make multi-operand
        accelerator tasks look systematically cheaper than they are.
        """
        ready = task.ready_time
        invalid = CopyState.INVALID
        pending: list[DataHandle] | None = None
        for op in task.operands:
            if not op.mode.reads:
                continue
            h = op.handle
            if h._states[node] is not invalid:
                r = h._ready_at[node]
                if r > ready:
                    ready = r
            elif pending is None:
                pending = [h]
            else:
                pending.append(h)
        if pending:
            direction = "d2h" if node == HOST_NODE else "h2d"
            t_link = task.ready_time
            if node != HOST_NODE:
                t_link = max(t_link, self._link_available(node, direction))
            for h in pending:
                src = h.pick_source()
                t_src = h._ready_at[src]
                if t_src > t_link:
                    t_link = t_src
                t_link += self._transfer_time(src, node, h.nbytes)
            if t_link > ready:
                ready = t_link
        return ready

    def estimate_transfer_cost(self, task: Task, node: int) -> float:
        cost = 0.0
        invalid = CopyState.INVALID
        for op in task.operands:
            if not op.mode.reads:
                continue
            h = op.handle
            if h._states[node] is invalid:
                cost += self._transfer_time(h.pick_source(), node, h.nbytes)
        return cost

    def _transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Memoized :meth:`Machine.transfer_time` (called per candidate
        node on the scheduling hot path; the answer only depends on the
        static link specs)."""
        key = (src, dst, nbytes)
        dur = self._tt_cache.get(key)
        if dur is None:
            if len(self._tt_cache) >= 4096:  # leak guard, not policy
                self._tt_cache.clear()
            dur = self._tt_cache[key] = self.machine.transfer_time(
                src, dst, nbytes
            )
        return dur

    def _footprint_size(self, task: Task) -> tuple[tuple, float]:
        """The task's (footprint, total operand bytes), cached while the
        same task is queried repeatedly (one scheduling choice asks for
        several variants; neither value can change mid-choice)."""
        cached = self._fp_cache
        if cached is not None and cached[0] is task:
            return cached[1], cached[2]
        fp = task.footprint()
        size = float(sum(op.handle.nbytes for op in task.operands))
        self._fp_cache = (task, fp, size)
        return fp, size

    def predict_exec(
        self, task: Task, variant: ImplVariant, unit: ProcessingUnit
    ) -> float | None:
        fp, size = self._footprint_size(task)
        return self.perf.predict(fp, variant.name, size)

    def n_samples(self, task: Task, variant: ImplVariant) -> int:
        return self.perf.n_samples(self._footprint_size(task)[0], variant.name)

    def is_calibrated(
        self, task: Task, variant: ImplVariant, min_history: int
    ) -> bool:
        fp, size = self._footprint_size(task)
        return self.perf.calibrated(
            fp, variant.name, size, min_history=min_history
        )

    def note_exploration(self, task: Task) -> None:
        self.trace.n_exploration_decisions += 1

    def cpu_gang(self) -> tuple[ProcessingUnit, ...]:
        if not self._lost_workers and not self._blacklisted:
            return self._gang
        # graceful degradation: the gang shrinks around unusable cores
        return tuple(u for u in self._gang if self.worker_usable(u.unit_id))

    def random(self) -> float:
        return float(self._rng.random())

    def worker_usable(self, unit_id: int) -> bool:
        return unit_id not in self._lost_workers and unit_id not in self._blacklisted

    def failed_placements(self, task: Task) -> set[tuple[str, int]]:
        failed = task.failed_on
        return failed if failed is not None else set()

    # ------------------------------------------------------------------
    # data registration
    # ------------------------------------------------------------------

    def register(self, array: np.ndarray, name: str = "") -> DataHandle:
        """Register host data with the runtime's data management."""
        self._check_alive()
        return DataHandle(array, self.machine.n_memory_nodes, name=name)

    def unregister(self, handle: DataHandle) -> float:
        """Flush the handle home (host) and discard device copies.

        Returns the virtual time at which the host copy is consistent.
        """
        self._check_alive()
        if handle.unregistered:
            raise RuntimeSystemError(
                f"handle {handle.name!r} is already unregistered"
            )
        t = self.acquire(handle, AccessMode.R)
        handle.mark_modified(HOST_NODE, t)
        handle.unregistered = True
        self._sync_residency(handle)
        self._record_access("unregister", handle, "", t)
        return t

    # ------------------------------------------------------------------
    # task submission
    # ------------------------------------------------------------------

    def submit(self, task: Task, sync: bool = False) -> Task:
        """Submit one task; with ``sync=True``, block until it completes."""
        if self._shutdown:
            self._check_alive()
        if not self._exec_inline and self.run_kernels:
            # fail fast (e.g. unpicklable kernels on a process pool)
            # before the task mutates any engine state
            self.exec_backend.prepare_codelet(task.codelet)
        operands = task.operands
        # one pass validates operands and collects the implicit
        # dependencies via sequential data consistency (StarPU's R/W
        # ordering, inlined from DataHandle.dependencies_for: a reader
        # waits for the last writer; a writer additionally waits for
        # every reader since).  Collection must finish before any access
        # is recorded below — a task touching one handle twice must see
        # the pre-submit ordering state for both operands.
        if len(operands) == 1:
            # single-operand fast path: dedup degenerates (a reader list
            # only repeats tasks that touched this handle through several
            # operands, and the last writer can never be in it), so the
            # seen-set and the second loop disappear
            op = operands[0]
            h = op.handle
            if h.unregistered:
                raise RuntimeSystemError(
                    f"task {task.name}: operand {h.name!r} is unregistered"
                )
            if h.children:
                raise RuntimeSystemError(
                    f"task {task.name}: operand {h.name!r} is partitioned; "
                    "use its children or unpartition first"
                )
            lw = h.last_writer
            deps = [lw] if lw is not None and lw is not task else []
            task.submit_time = self.clock.advance(self.submit_overhead_s)
            if op.mode.writes:
                rs = h.readers_since_write
                if rs:
                    seen = {deps[0].task_id} if deps else set()
                    for dep in rs:
                        if dep.task_id not in seen and dep is not task:
                            seen.add(dep.task_id)
                            deps.append(dep)
                    h.readers_since_write = []
                h.last_writer = task
            else:
                h.readers_since_write.append(task)
        else:
            deps = []
            seen = set()
            for op in operands:
                h = op.handle
                if h.unregistered:
                    raise RuntimeSystemError(
                        f"task {task.name}: operand {h.name!r} is unregistered"
                    )
                if h.children:
                    raise RuntimeSystemError(
                        f"task {task.name}: operand {h.name!r} is "
                        "partitioned; use its children or unpartition first"
                    )
                lw = h.last_writer
                if lw is not None and lw.task_id not in seen and lw is not task:
                    seen.add(lw.task_id)
                    deps.append(lw)
                if op.mode.writes:
                    for dep in h.readers_since_write:
                        if dep.task_id not in seen and dep is not task:
                            seen.add(dep.task_id)
                            deps.append(dep)
            task.submit_time = self.clock.advance(self.submit_overhead_s)
            for op in operands:
                h = op.handle
                if op.mode.writes:
                    h.last_writer = task
                    h.readers_since_write = []
                else:
                    h.readers_since_write.append(task)
        if deps:
            if len(deps) == 1:
                dep = deps[0]
                task.dep_ids = (dep.task_id,)
                # inlined Task.add_dependency (per-task hot path)
                if (
                    dep.state is TaskState.DONE
                    or dep.state is TaskState.SCHEDULED
                ):
                    if dep.end_time > task.earliest_start:
                        task.earliest_start = dep.end_time
                else:
                    dep.dependents.append(task)
                    task.n_pending_deps += 1
            else:
                task.dep_ids = tuple(d.task_id for d in deps)
                for dep in deps:
                    task.add_dependency(dep)
        task.submit_seq = self._n_submitted
        self._n_submitted += 1
        trace = self.trace
        trace.n_submitted += 1
        sbc = trace.submitted_by_codelet
        name = task.codelet.name
        sbc[name] = sbc.get(name, 0) + 1
        ev = self.events
        if ev.want_submit:
            ev.emit_submit(task.submit_time, task)
        if self._bulk:
            # window buffering: fold the submit time into the start
            # lower bound now (dependents released by a later flush see
            # only earliest_start), defer placement to the flush
            if task.submit_time > task.earliest_start:
                task.earliest_start = task.submit_time
            self._window.append(task)
            if len(self._window) >= self.scheduler.window_size:
                self.flush_window()
        elif task.n_pending_deps == 0:
            es = task.earliest_start
            st = task.submit_time
            self._make_ready(task, st if st > es else es)
        if self._events:
            self._process_events()
        if ev._ring:
            ev.drain()
        if sync:
            self.wait_for_task(task)
        return task

    def flush_window(self) -> None:
        """Commit every buffered task (bulk policies only; no-op otherwise).

        The window is handed to the scheduler's ``plan_window`` once,
        then each dependency-free task is made ready in submission
        order; dependents cascade through the normal completion
        machinery, so every task still goes through one ``choose`` call
        (fault recovery, schedule events and the trace behave exactly as
        under an eager policy).  A task that cannot be placed is aborted
        but the rest of the window still commits; the first error
        re-raises once the window is drained.
        """
        window = self._window
        if not window:
            return
        self._window = []
        pending = [t for t in window if t.state is TaskState.SUBMITTED]
        if pending:
            self.scheduler.plan_window(pending, self)
        first: PeppherError | None = None
        for task in pending:
            if task.state is not TaskState.SUBMITTED or task.n_pending_deps:
                continue
            try:
                self._make_ready(task, task.earliest_start)
            except PeppherError as exc:
                if first is None:
                    first = exc
        self._process_events()
        if self.events._ring:
            self.events.drain()
        if first is not None:
            raise first

    def wait_for_task(self, task: Task) -> float:
        """Block the host program until ``task`` completes."""
        if self._bulk:
            self.flush_window()
        self._process_events()
        self.events.drain()
        self._join_kernel(task.task_id)
        if task.state is not TaskState.DONE:
            raise RuntimeSystemError(
                f"task {task.name} cannot complete: state {task.state.value} "
                "(missing dependency? engine invariant violated)"
            )
        self.clock.advance_to(task.end_time)
        return task.end_time

    def wait_for_all(self) -> float:
        """Barrier: block until every submitted task has completed."""
        self._check_alive()
        if self._bulk:
            self.flush_window()
        self._process_events()
        self.events.drain()
        self._drain_kernels()
        if self._n_completed != self._n_submitted:
            raise RuntimeSystemError(
                f"{self._n_submitted - self._n_completed} tasks never completed"
            )
        self.clock.advance_to(self._last_end)
        return self.clock.now

    # ------------------------------------------------------------------
    # host-side data access (smart containers call this)
    # ------------------------------------------------------------------

    def acquire(self, handle: DataHandle, mode: AccessMode) -> float:
        """Block until ``handle`` may be accessed on the host with ``mode``.

        Implements the paper's Figure 3 semantics: a read of an outdated
        master copy triggers one implicit device-to-host copy; a host
        write additionally invalidates device copies and resets the
        task-ordering state (the host now owns the data).
        """
        self._check_alive()
        if handle.unregistered:
            raise RuntimeSystemError(
                f"handle {handle.name!r} is unregistered; the flushed host "
                "array remains usable directly"
            )
        if handle.partitioned:
            raise DataConsistencyError(
                f"handle {handle.name!r} is partitioned; unpartition before "
                "accessing it from the application program"
            )
        if self._bulk:
            self.flush_window()
        self._process_events()
        self._drain_kernels()
        t = self.clock.now
        if handle.last_writer is not None:
            t = max(t, handle.last_writer.end_time)
        if mode.writes:
            for reader in handle.readers_since_write:
                t = max(t, reader.end_time)
        self._fire_due_losses(t)
        if mode.reads:
            t = max(t, self._commit_copy(handle, HOST_NODE, earliest=t))
        if mode.writes:
            handle.mark_modified(HOST_NODE, t)
            handle.reset_host_access()
            self._sync_residency(handle)
        self._record_access("acquire", handle, str(mode.value), t)
        self.events.drain()
        self.clock.advance_to(t)
        return t

    def _record_access(
        self,
        kind: str,
        handle: DataHandle,
        mode: str,
        t: float,
        related: tuple[int, ...] = (),
    ) -> None:
        self.trace.record_access(
            AccessRecord.make(
                kind=kind,
                handle_id=handle.handle_id,
                handle_name=handle.name,
                mode=mode,
                time=t,
                related=related,
            )
        )

    # ------------------------------------------------------------------
    # partitioning (intra-component parallelism, paper section IV-F)
    # ------------------------------------------------------------------

    def partition_by_slices(
        self, handle: DataHandle, slices: Iterable
    ) -> list[DataHandle]:
        """Split a handle into chunk children usable as task operands."""
        self._check_alive()
        children = handle.partition_by_slices(list(slices))
        self._record_access(
            "partition",
            handle,
            "",
            self.clock.now,
            related=tuple(c.handle_id for c in children),
        )
        return children

    def partition_equal(
        self, handle: DataHandle, n_chunks: int, axis: int = 0
    ) -> list[DataHandle]:
        self._check_alive()
        children = handle.partition_equal(n_chunks, axis=axis)
        self._record_access(
            "partition",
            handle,
            "",
            self.clock.now,
            related=tuple(c.handle_id for c in children),
        )
        return children

    def unpartition(self, handle: DataHandle) -> float:
        """Gather all chunk children back into a consistent host copy."""
        self._check_alive()
        if not handle.partitioned:
            return self.clock.now
        if self._bulk:
            self.flush_window()
        self._process_events()
        self._drain_kernels()
        t = self.clock.now
        for child in handle.children:
            if child.last_writer is not None:
                t = max(t, child.last_writer.end_time)
            for reader in child.readers_since_write:
                t = max(t, reader.end_time)
        self._fire_due_losses(t)
        ready = t
        for child in handle.children:
            ready = max(ready, self._commit_copy(child, HOST_NODE, earliest=t))
        children = tuple(c.handle_id for c in handle.children)
        handle.mark_modified(HOST_NODE, ready)
        handle.reset_host_access()
        handle.drop_partition()
        self._sync_residency(handle)
        self._record_access("unpartition", handle, "", ready, related=children)
        self.events.drain()
        self.clock.advance_to(ready)
        return ready

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> float:
        """Drain all tasks and stop accepting work.

        Emits the ``flush`` event *after* draining but before returning,
        so event subscribers (samplers, span tracers, recorders) finalize
        their buffered state before any shutdown-time consumer — trace
        invariant checking, trace export, model persistence — observes
        the run.
        """
        if self._shutdown:
            return self.clock.now
        t = self.wait_for_all()
        self._shutdown = True
        self.events.emit_flush(t)
        return t

    def _check_alive(self) -> None:
        if self._shutdown:
            raise RuntimeSystemError("runtime has been shut down")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _make_ready(self, task: Task, t: float) -> None:
        task.state = TaskState.READY
        task.ready_time = t
        try:
            self._place_with_recovery(task)
        except PeppherError:
            # keep the engine consistent when a task cannot be placed
            # (no feasible variant, device out of memory, ...): abort the
            # task, release its dependents, and let the error propagate
            self._abort(task, t)
            raise

    def _place_with_recovery(self, task: Task) -> None:
        """Schedule ``task``, retrying around injected hardware faults.

        Each failed attempt records a fault, charges the lost virtual
        time to the occupied workers, remembers the placement so the
        next attempt prefers a different variant/worker, and delays the
        retry by the policy's exponential backoff.  The retry budget is
        bounded; exhaustion surfaces as UnrecoverableTaskError.
        """
        attempt = 0
        while True:
            if self._scripted_losses:
                self._fire_due_losses(task.ready_time)
            decision = self.scheduler.choose(task, self)
            dbc = self.trace.decisions_by_codelet
            name = task.codelet.name
            dbc[name] = dbc.get(name, 0) + 1
            if attempt:
                rbc = self.trace.retries_by_codelet
                rbc[name] = rbc.get(name, 0) + 1
            if self.events.want_schedule:
                self.events.emit_schedule(task.ready_time, task, decision, attempt)
            try:
                self._schedule(task, decision, attempt)
                if attempt > 0:
                    self.trace.n_tasks_recovered += 1
                    if (
                        task.first_fault_arch is not None
                        and decision.variant.arch.value != task.first_fault_arch
                    ):
                        self.trace.n_fallbacks += 1
                return
            except HardwareFault as fault:
                task.n_faults += 1
                failed = task.failed_on
                if failed is None:
                    failed = task.failed_on = set()
                failed.add((decision.variant.name, decision.anchor.unit_id))
                if task.first_fault_arch is None:
                    task.first_fault_arch = decision.variant.arch.value
                attempt += 1
                if attempt > self.recovery.max_retries:
                    self.trace.n_tasks_lost += 1
                    raise UnrecoverableTaskError(
                        f"task {task.name}: giving up after {attempt} failed "
                        f"attempts (last fault: {fault})"
                    ) from fault
                self.trace.n_task_retries += 1
                task.state = TaskState.READY
                task.ready_time = max(
                    task.ready_time,
                    fault.time
                    + self.recovery.backoff(
                        attempt,
                        self._backoff_jitter_u(task.submit_seq, attempt),
                    ),
                )

    def _abort(self, task: Task, t: float) -> None:
        """Mark an unplaceable task as terminated without executing it."""
        task.state = TaskState.DONE
        task.start_time = t
        task.end_time = t
        self._n_completed += 1
        self.trace.n_tasks_aborted += 1
        self._last_end = max(self._last_end, t)
        for dependent in task.dependents:
            if dependent.dep_satisfied():
                self._make_ready(dependent, max(t, dependent.earliest_start))

    def _schedule(self, task: Task, decision: Decision, attempt: int = 0) -> None:
        variant = decision.variant
        workers = decision.workers
        node = workers[0].memory_node
        operands = task.operands
        ready_time = task.ready_time
        # gang variants see how many cores they occupy
        if variant.arch.is_gang:
            task.ctx.setdefault("ncores", len(workers))
        # stage operands at the target node (commits transfers); the
        # task's own operands are pinned against eviction.  Fast path:
        # read operands already valid at the node only need a touch and a
        # readiness max — no pin set, no transfer machinery.  Only the
        # remaining ("slow") operands go through _commit_copy /
        # _ensure_capacity; reordering the valid ones ahead of them is
        # observably identical because a touch only folds a max into the
        # LRU clock and every operand is pinned against eviction anyway.
        data_ready = ready_time
        slow: list = []
        invalid = CopyState.INVALID
        for op in operands:
            if op.mode.reads:
                h = op.handle
                if h._states[node] is not invalid:
                    lu = h._last_used
                    if ready_time > lu[node]:
                        lu[node] = ready_time
                    r = h._ready_at[node]
                    if r > data_ready:
                        data_ready = r
                else:
                    slow.append(op)
            elif node != HOST_NODE:
                slow.append(op)
        try:
            if slow:
                pinned = frozenset(op.handle.handle_id for op in operands)
                self._staging_task = task
                try:
                    for op in slow:
                        if op.mode.reads:
                            data_ready = max(
                                data_ready,
                                self._commit_copy(
                                    op.handle,
                                    node,
                                    earliest=ready_time,
                                    pinned=pinned,
                                ),
                            )
                        else:
                            # write-only outputs still need an
                            # allocation on the device
                            data_ready = max(
                                data_ready,
                                self._ensure_capacity(
                                    node, op.handle, ready_time, pinned
                                ),
                            )
                finally:
                    self._staging_task = None
        except TransferFault as fault:
            # staging for this placement is a lost cause: attribute the
            # abort to the task so the recovery loop can place it where
            # the failing link is not needed
            self._fault(
                FaultRecord.make(
                    kind="transfer_abort",
                    time=fault.time,
                    task_id=task.task_id,
                    task_name=task.name,
                    node=node,
                    attempt=attempt,
                    detail=str(fault),
                )
            )
            raise
        states = self._workers
        if len(workers) == 1:
            worker_free = states[workers[0].unit_id].available_at
        else:
            worker_free = max(states[u.unit_id].available_at for u in workers)
        start = ready_time if ready_time > data_ready else data_ready
        if worker_free > start:
            start = worker_free
        raw = variant.predict(task.ctx, workers[0].device)
        noise = self.noise
        # inline the sigma==0 identity (perturb's own short-circuit) so
        # noise-off runs skip the call; negative raw still goes through
        # perturb, which rejects it.  getattr: wrapped noise models
        # (e.g. cluster degradation scaling) need not expose sigma.
        exec_time = (
            raw
            if raw >= 0.0 and getattr(noise, "sigma", None) == 0.0
            else noise.perturb(raw)
        )
        end = start + exec_time
        if self.faults is not None:
            self._inject_exec_fault(task, decision, attempt, start, exec_time)
        # run the real computation now: dependency order is respected
        # because dependents are only scheduled after this completes
        task.chosen_variant = variant
        task.workers = workers
        if self.run_kernels:
            if self._exec_inline:
                try:
                    task.run_kernel()
                except PeppherError:
                    raise
                except Exception as exc:
                    # wrap so _make_ready's abort path keeps the engine
                    # consistent; chain the original for diagnosis
                    raise KernelExecutionError(
                        f"task {task.name}: variant {variant.name!r} raised "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
            else:
                self._dispatch_kernel(task)
        avail = self._avail
        for u in workers:
            uid = u.unit_id
            ws = states[uid]
            ws.available_at = end
            ws.assigned_count += 1
            avail[uid] = end
        # apply write effects: the target node becomes the single owner
        for op in operands:
            h = op.handle
            lu = h._last_used
            if end > lu[node]:
                lu[node] = end
            if op.mode.writes:
                h.mark_modified(node, end)
                self._sync_residency(h)
        task.state = TaskState.SCHEDULED
        task.start_time = start
        task.end_time = end
        heapq.heappush(self._events, (end, next(self._event_seq), task))
        self._inflight_ends.append(end)
        self._inflight_dirty = True
        ev = self.events
        if ev.want_start:
            ev.emit_start(start, task)

    # -- real-concurrency kernel execution (repro.exec) ----------------------

    def _dispatch_kernel(self, task: Task) -> None:
        """Hand a scheduled task's kernel to the execution backend.

        Data-hazard order: any pending kernel touching one of this
        task's operands is joined first if either side writes, so the
        values this kernel reads are final.  Independent kernels stay
        in flight and genuinely overlap.
        """
        for op in task.operands:
            entries = self._handle_kernels.get(op.handle.handle_id)
            if not entries:
                continue
            for tid, wrote in list(entries):
                if wrote or op.mode.writes:
                    self._join_kernel(tid)
        try:
            fut = self.exec_backend.dispatch_task(task)
        except PeppherError:
            raise
        except Exception as exc:
            raise KernelExecutionError(
                f"task {task.name}: backend {self.exec_backend.name!r} "
                f"failed to dispatch: {type(exc).__name__}: {exc}"
            ) from exc
        self._pending_kernels[task.task_id] = (task, fut)
        for op in task.operands:
            self._handle_kernels.setdefault(op.handle.handle_id, []).append(
                (task.task_id, op.mode.writes)
            )

    def _join_kernel(self, task_id: int) -> None:
        """Wait for one dispatched kernel; record its measurement.

        Exceptions raised inside the kernel (or a broken pool) surface
        here wrapped in :class:`KernelExecutionError` naming the task,
        variant and backend.  Successful joins append to
        :attr:`measurements` and feed the performance model under the
        ``"measured"`` provenance — never the analytical tables, so
        simulated predictions and trace digests are untouched.
        """
        entry = self._pending_kernels.pop(task_id, None)
        if entry is None:
            return
        task, fut = entry
        for op in task.operands:
            lst = self._handle_kernels.get(op.handle.handle_id)
            if lst:
                lst[:] = [e for e in lst if e[0] != task_id]
                if not lst:
                    del self._handle_kernels[op.handle.handle_id]
        variant = task.chosen_variant
        vname = variant.name if variant is not None else "?"
        try:
            m = fut.result()
        except PeppherError:
            raise
        except Exception as exc:
            raise KernelExecutionError(
                f"task {task.name}: variant {vname!r} failed on the "
                f"{self.exec_backend.name!r} backend: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        self.measurements.append(m)
        if variant is not None:
            size = float(sum(h.nbytes for h in task.handles))
            self.perf.record(
                task.footprint(),
                variant.name,
                size,
                m.wall_s,
                provenance="measured",
            )

    def _drain_kernels(self) -> None:
        """Join every pending kernel (host-access and barrier points).

        All kernels are joined even if one fails, so operand write-backs
        and measurements are not lost; the first error is re-raised.
        """
        if not self._pending_kernels:
            return
        first: PeppherError | None = None
        for tid in sorted(self._pending_kernels):
            try:
                self._join_kernel(tid)
            except PeppherError as exc:
                if first is None:
                    first = exc
        if first is not None:
            raise first

    # -- fault injection and recovery ----------------------------------------

    def _fault(self, rec: FaultRecord) -> FaultRecord:
        """Record one injected fault and emit the matching event."""
        rec = self.trace.record_fault(rec)
        self.events.emit_fault(rec.time, rec)
        return rec

    def _inject_exec_fault(
        self,
        task: Task,
        decision: Decision,
        attempt: int,
        start: float,
        exec_time: float,
    ) -> None:
        """Draw faults for one execution attempt; raise if one strikes.

        Permanent device loss dominates transient kernel faults.  A
        scripted loss before the attempt's start is detected at dispatch
        (``start``); a loss inside the window surfaces when it happens.
        """
        assert self.faults is not None
        end = start + exec_time
        for unit in decision.workers:
            t_loss = self.faults.device_lost_at(unit.unit_id)
            if t_loss is None and unit.is_gpu:
                frac = self.faults.device_loss(
                    unit.unit_id, task.submit_seq, attempt
                )
                if frac is not None:
                    t_loss = start + frac * exec_time
            if t_loss is None or t_loss >= end:
                continue
            fail_time = max(start, t_loss)
            self._charge_failed_attempt(decision.workers, fail_time)
            self._mark_device_lost(unit, fail_time)
            self._fault(
                FaultRecord.make(
                    kind="device_lost",
                    time=fail_time,
                    task_id=task.task_id,
                    task_name=task.name,
                    worker_ids=(unit.unit_id,),
                    node=unit.memory_node,
                    attempt=attempt,
                    detail=f"unit {unit.unit_id} ({unit.device.name}) lost",
                )
            )
            raise DeviceLostError(
                f"unit {unit.unit_id} ({unit.device.name}) lost at "
                f"t={fail_time:.6f}s during task {task.name}",
                time=fail_time,
            )
        frac = self.faults.kernel_fault(task.submit_seq, attempt)
        if frac is not None:
            fail_time = start + frac * exec_time
            self._charge_failed_attempt(decision.workers, fail_time)
            self._note_worker_fault(decision.anchor, fail_time, task)
            self._fault(
                FaultRecord.make(
                    kind="kernel",
                    time=fail_time,
                    task_id=task.task_id,
                    task_name=task.name,
                    worker_ids=tuple(u.unit_id for u in decision.workers),
                    node=decision.anchor.memory_node,
                    attempt=attempt,
                    detail=f"variant {decision.variant.name!r}",
                )
            )
            raise TransientKernelFault(
                f"task {task.name}: variant {decision.variant.name!r} faulted "
                f"on unit {decision.anchor.unit_id} at t={fail_time:.6f}s",
                time=fail_time,
            )

    def _charge_failed_attempt(
        self, workers: tuple[ProcessingUnit, ...], fail_time: float
    ) -> None:
        """The failed attempt occupied its workers until the fault."""
        for u in workers:
            uid = u.unit_id
            ws = self._workers[uid]
            ws.available_at = max(ws.available_at, fail_time)
            ws.assigned_count += 1
            self._avail[uid] = ws.available_at

    def _backoff_jitter_u(self, task_seq: int, attempt: int) -> float | None:
        """Uniform sample for retry-backoff jitter, keyed by the retry's
        identity (task submission index, attempt) like the fault model's
        own draws — order-independent, so record/replay stays
        byte-identical and zero-jitter policies draw nothing."""
        if self.recovery.backoff_jitter <= 0.0:
            return None
        rng = np.random.default_rng((self._seed, 0xB0FF, task_seq, attempt))
        return float(rng.random())

    def _note_worker_fault(
        self, unit: ProcessingUnit, fail_time: float, task: Task
    ) -> None:
        """Tally a transient fault; blacklist chronically faulty workers
        (never the last usable one — degraded progress beats none).

        Crossing the budget records a ``blacklisted`` fault naming the
        triggering task, so the trace checker can verify that no
        placement decided after this moment uses the retired worker.
        """
        n = self._worker_faults.get(unit.unit_id, 0) + 1
        self._worker_faults[unit.unit_id] = n
        if (
            n >= self.recovery.blacklist_after
            and unit.unit_id not in self._blacklisted
            and any(
                u.unit_id != unit.unit_id and self.worker_usable(u.unit_id)
                for u in self.machine.units
            )
        ):
            self._blacklisted.add(unit.unit_id)
            self.trace.blacklisted_workers.add(unit.unit_id)
            self.candidate_cache.clear()
            self._fault(
                FaultRecord.make(
                    kind="blacklisted",
                    time=fail_time,
                    task_id=task.task_id,
                    task_name=task.name,
                    worker_ids=(unit.unit_id,),
                    node=unit.memory_node,
                    detail=f"unit {unit.unit_id} blacklisted after "
                    f"{n} transient faults",
                )
            )

    def _mark_device_lost(self, unit: ProcessingUnit, t: float) -> None:
        """Graceful degradation after permanent device loss: retire the
        worker and invalidate the dead node's replicas (sole-owner copies
        re-source from the host shadow via the coherence protocol)."""
        self._lost_workers.add(unit.unit_id)
        self.trace.lost_workers.add(unit.unit_id)
        self.candidate_cache.clear()
        node = unit.memory_node
        if node == HOST_NODE:
            return
        for handle in list(self._resident[node].values()):
            for h in [handle, *handle.children]:
                if h.recover_from_node_loss(node, t):
                    self._fault(
                        FaultRecord.make(
                            kind="replica_lost",
                            time=t,
                            node=node,
                            handle_id=h.handle_id,
                            handle_name=h.name,
                            detail="sole replica on lost device; "
                            "re-sourced from host",
                        )
                    )
            self._sync_residency(handle)

    def _fire_due_losses(self, now: float) -> None:
        """Apply scripted device losses whose time has passed, so neither
        scheduling nor host-side transfers use a dead device."""
        if self.faults is None or not self.faults.device_loss_at:
            return
        for unit_id, t_loss in sorted(self.faults.device_loss_at.items()):
            if t_loss <= now and unit_id not in self._lost_workers:
                unit = self.machine.unit(unit_id)
                self._mark_device_lost(unit, t_loss)
                self._fault(
                    FaultRecord.make(
                        kind="device_lost",
                        time=t_loss,
                        worker_ids=(unit_id,),
                        node=unit.memory_node,
                        detail=f"unit {unit_id} ({unit.device.name}) lost",
                    )
                )

    def _process_events(self) -> None:
        events = self._events
        if not events:
            return
        pop = heapq.heappop
        complete = self._complete
        while events:
            end, _, task = pop(events)
            complete(task, end)

    def _complete(self, task: Task, end: float) -> None:
        task.state = TaskState.DONE
        self._n_completed += 1
        if end > self._last_end:
            self._last_end = end
        variant = task.chosen_variant
        assert variant is not None
        workers = task.workers
        start_time = task.start_time
        end_time = task.end_time
        # one pass over the operands: total bytes plus read/written ids
        size = 0
        reads: list[int] = []
        writes: list[int] = []
        for op in task.operands:
            h = op.handle
            size += h.nbytes
            mode = op.mode
            if mode.reads:
                reads.append(h.handle_id)
            if mode.writes:
                writes.append(h.handle_id)
        duration = end_time - start_time
        self.perf.record(task.footprint(), variant.name, float(size), duration)
        if len(workers) == 1:
            u0 = workers[0]
            worker_ids: tuple[int, ...] = (u0.unit_id,)
            energy = duration * u0.device.busy_watts
        else:
            worker_ids = tuple(u.unit_id for u in workers)
            energy = duration * sum(u.device.busy_watts for u in workers)
        # column-direct append: values in TaskRecord field order minus the
        # trailing seq (add_task stamps it); no record object is built
        # unless a subscriber asks for one
        trace = self.trace
        trace.add_task(
            (
                task.task_id,
                task.name,
                task.codelet.name,
                variant.name,
                variant.arch.value,
                worker_ids,
                task.submit_time,
                task.ready_time,
                start_time,
                end_time,
                energy,
                workers[0].memory_node,
                tuple(reads),
                tuple(writes),
                task.dep_ids,
                task.submit_seq,
            )
        )
        ev = self.events
        if ev.want_complete:
            ev.emit_complete(end, task, trace.tasks[-1])
        for dependent in task.dependents:
            if dependent.dep_satisfied():
                self._make_ready(dependent, max(end, dependent.earliest_start))

    # -- transfers -----------------------------------------------------------

    def _commit_copy(
        self,
        handle: DataHandle,
        node: int,
        earliest: float,
        pinned: frozenset[int] | None = None,
    ) -> float:
        """Ensure a valid copy of ``handle`` at ``node``; commit transfers.

        Returns the virtual time the copy is (or becomes) valid.  Lazy:
        no transfer happens if the node already holds a valid copy.
        Device-to-device copies stage through the host (no peer DMA on
        the paper's platforms).  When the target device memory is full,
        least-recently-used resident copies are evicted first (``pinned``
        handles — the current task's operands — are exempt).
        """
        if handle.is_valid(node):
            handle.touch(node, earliest)
            return handle.ready_at(node)
        if pinned is None:
            pinned = frozenset({handle.handle_id})
        src = handle.pick_source()
        if src != HOST_NODE and node != HOST_NODE:
            # stage through host, then continue host -> node
            t_host = self._commit_copy(handle, HOST_NODE, earliest, pinned)
            src, earliest = HOST_NODE, max(earliest, t_host)
        earliest = self._ensure_capacity(node, handle, earliest, pinned)
        direction = "d2h" if node == HOST_NODE else "h2d"
        link_node = src if node == HOST_NODE else node
        dur = self._transfer_time(src, node, handle.nbytes)
        resend = 0
        while True:
            link_free = self._link_available(link_node, direction)
            start = max(earliest, handle.ready_at(src), link_free)
            end = start + dur
            if (
                self.faults is None
                or handle.nbytes == 0
                or not self.faults.transfer_fault(next(self._transfer_draws))
            ):
                break
            # corrupted on the wire: the attempt's time is spent and the
            # copy must be resent
            self._occupy_link(link_node, direction, end)
            self._fault(
                FaultRecord.make(
                    kind="transfer",
                    time=end,
                    node=node,
                    handle_id=handle.handle_id,
                    handle_name=handle.name,
                    attempt=resend,
                    detail=f"{direction} copy node {src} -> {node} corrupted",
                )
            )
            resend += 1
            if resend > self.recovery.max_transfer_retries:
                raise TransferFault(
                    f"handle {handle.name!r}: {direction} copy to node {node} "
                    f"still failing after {resend} attempts",
                    time=end,
                )
            earliest = end
        self._occupy_link(link_node, direction, end)
        handle.mark_shared(node, end)
        handle.touch(node, end)
        self._sync_residency(handle)
        trace = self.trace
        trace.add_transfer(
            (
                handle.handle_id,
                handle.name,
                src,
                node,
                handle.nbytes,
                start,
                end,
            )
        )
        ev = self.events
        if ev.want_transfer:
            ev.emit_transfer(end, trace.transfers[-1], self._staging_task)
        return end

    # -- device-memory management (LRU eviction) -----------------------------

    def _sync_residency(self, handle: DataHandle) -> None:
        """Reconcile the per-node residency tables with a handle's state.

        Only top-level handles are tracked: partition children are views
        into their parent's allocation.
        """
        if handle.parent is not None:
            return
        hid = handle.handle_id
        states = handle._states
        invalid = CopyState.INVALID
        unregistered = handle.unregistered
        for node in self._device_nodes:
            resident = self._resident[node]
            present = hid in resident
            wanted = not unregistered and states[node] is not invalid
            if wanted and not present:
                resident[hid] = handle
                self._node_usage[node] += handle.nbytes
            elif present and not wanted:
                del resident[hid]
                self._node_usage[node] -= handle.nbytes

    def _ensure_capacity(
        self, node: int, handle: DataHandle, when: float, pinned: frozenset[int]
    ) -> float:
        """Make room for ``handle`` at ``node``, evicting LRU copies.

        Returns the (possibly later) time the allocation can proceed —
        evicting a sole-owner copy costs a flush transfer home.
        """
        capacity = self._node_capacity[node]
        if capacity is None or node == HOST_NODE or handle.parent is not None:
            return when
        if handle.handle_id in self._resident[node]:
            return when  # already allocated there
        need = handle.nbytes
        if need > capacity:
            raise RuntimeSystemError(
                f"handle {handle.name!r} ({need} bytes) exceeds node {node} "
                f"memory ({capacity} bytes); partition it first"
            )
        t = when
        while self._node_usage[node] + need > capacity:
            victims = [
                h
                for hid, h in self._resident[node].items()
                if hid not in pinned and not h.partitioned
            ]
            if not victims:
                raise RuntimeSystemError(
                    f"node {node} out of memory: {self._node_usage[node]} bytes "
                    f"resident, all pinned, {need} more needed"
                )
            victim = min(victims, key=lambda h: h.last_used(node))
            flushed = False
            if victim.state(node) is CopyState.MODIFIED:
                # sole owner: write it home before dropping it
                t = max(t, self._commit_copy(victim, HOST_NODE, t, pinned))
                flushed = True
            victim.invalidate(node)
            self._sync_residency(victim)
            rec = self.trace.record_eviction(
                EvictionRecord.make(
                    handle_id=victim.handle_id,
                    handle_name=victim.name,
                    node=node,
                    nbytes=victim.nbytes,
                    time=t,
                    flushed=flushed,
                )
            )
            self.events.emit_evict(t, rec)
        return t

    def _link_available(self, link_node: int, direction: str) -> float:
        key = self._link_keys[(link_node, direction)]
        return self._link_free.get(key, 0.0)

    def link_available(self, link_node: int, direction: str) -> float:
        """EngineView: when the (link, direction) DMA queue frees up.

        Bulk planners seed their simulated link occupancy from this so a
        window planned while earlier transfers are still queued does not
        model the PCIe link as idle.
        """
        return self._link_available(link_node, direction)

    def _occupy_link(self, link_node: int, direction: str, until: float) -> None:
        key = self._link_keys[(link_node, direction)]
        self._link_free[key] = max(self._link_free.get(key, 0.0), until)
