"""Data handles: registered operands with MSI coherence over memory nodes.

A :class:`DataHandle` wraps one NumPy array (the *ground-truth payload* —
real values, checkable in tests) and models where valid *copies* of it
currently live: host RAM (node 0) and each GPU's device memory.  The model
is a classic MSI protocol:

- ``MODIFIED`` — this node holds the only up-to-date copy.
- ``SHARED``   — this node holds an up-to-date copy; others may too.
- ``INVALID``  — this node's copy (if allocated) is stale.

Transfers are *lazy*: a copy is made only when a task (or the host
program) actually needs the data at a node where it is not valid.  This
is exactly the smart-container behaviour of the paper's Figure 3, where a
four-call scenario needs 2 copies instead of the 7 a copy-every-call
strategy performs.

The handle also tracks, per StarPU's *sequential data consistency*, which
task last wrote it and which tasks have read it since — the information
needed to infer implicit dependencies between asynchronously submitted
tasks (paper section IV-E).
"""

from __future__ import annotations

from enum import Enum
from itertools import count
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import DataConsistencyError
from repro.hw.description import HOST_NODE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.task import Task


class CopyState(Enum):
    """MSI state of one node's copy of a handle."""

    INVALID = "invalid"
    SHARED = "shared"
    MODIFIED = "modified"


class DataHandle:
    """One registered operand.

    Parameters
    ----------
    array:
        Ground-truth payload.  Tasks compute on this array directly (the
        simulation separates *values*, which are real, from *placement
        and timing*, which are modeled).
    n_nodes:
        Number of memory nodes in the machine.
    name:
        Debugging / tracing label.
    """

    _ids = count()

    def __init__(self, array: np.ndarray, n_nodes: int, name: str = "") -> None:
        if n_nodes < 1:
            raise DataConsistencyError("need at least the host memory node")
        self.handle_id: int = next(DataHandle._ids)
        self.array = np.asarray(array)
        #: payload size in bytes (cached: the array is never reassigned,
        #: and schedulers query this on the per-candidate hot path)
        self.nbytes: int = int(self.array.nbytes)
        self.name = name or f"data{self.handle_id}"
        self._states: list[CopyState] = [CopyState.INVALID] * n_nodes
        self._states[HOST_NODE] = CopyState.MODIFIED
        #: node of the sole MODIFIED copy, or None when copies are
        #: SHARED.  Maintained by every state transition; lets the
        #: hot-path queries (pick_source, mark_modified) skip their
        #: node scans in the common sole-owner case.
        self._owner: int | None = HOST_NODE
        #: virtual time at which each node's copy becomes valid
        self._ready_at: list[float] = [0.0] * n_nodes
        #: virtual time of the last use of each node's copy (LRU eviction)
        self._last_used: list[float] = [0.0] * n_nodes
        # --- sequential-consistency bookkeeping -------------------------
        self.last_writer: "Task | None" = None
        self.readers_since_write: list["Task"] = []
        # --- partitioning ------------------------------------------------
        self.parent: DataHandle | None = None
        self.children: list[DataHandle] = []
        self.unregistered = False

    # -- basic queries ----------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self._states)

    @property
    def partitioned(self) -> bool:
        return bool(self.children)

    def state(self, node: int) -> CopyState:
        return self._states[node]

    def is_valid(self, node: int) -> bool:
        return self._states[node] is not CopyState.INVALID

    def ready_at(self, node: int) -> float:
        """Virtual time the copy at ``node`` becomes valid (only
        meaningful when the node is or is becoming valid)."""
        return self._ready_at[node]

    def valid_nodes(self) -> list[int]:
        return [n for n, s in enumerate(self._states) if s is not CopyState.INVALID]

    def pick_source(self) -> int:
        """Choose the node to copy from: the valid copy that is ready
        earliest (ties broken toward the host, which every link touches).

        Nodes are scanned in index order (host first), so keeping the
        first node with the strictly-earliest ready time implements the
        (ready, non-host, node) tie-break without per-node key tuples.
        """
        owner = self._owner
        if owner is not None:  # sole valid copy — nothing to compare
            return owner
        ready = self._ready_at
        invalid = CopyState.INVALID
        best = -1
        best_r = 0.0
        for n, s in enumerate(self._states):
            if s is invalid:
                continue
            r = ready[n]
            if best < 0 or r < best_r:
                best, best_r = n, r
        if best < 0:
            raise DataConsistencyError(
                f"handle {self.name!r} has no valid copy anywhere"
            )
        return best

    def touch(self, node: int, t: float) -> None:
        """Record a use of the copy at ``node`` (for LRU eviction)."""
        if t > self._last_used[node]:
            self._last_used[node] = t

    def last_used(self, node: int) -> float:
        return self._last_used[node]

    # -- state transitions (invoked by the engine) --------------------------

    def invalidate(self, node: int) -> None:
        """Drop the copy at ``node`` (eviction); some other copy must
        remain valid, otherwise data would be lost."""
        if self._states[node] is CopyState.INVALID:
            return
        others_valid = any(
            s is not CopyState.INVALID
            for n, s in enumerate(self._states)
            if n != node
        )
        if not others_valid:
            raise DataConsistencyError(
                f"handle {self.name!r}: evicting node {node} would lose the "
                "only valid copy (flush it home first)"
            )
        self._states[node] = CopyState.INVALID
        # a remaining single SHARED copy is effectively the owner
        valid = [n for n, s in enumerate(self._states) if s is not CopyState.INVALID]
        if len(valid) == 1:
            self._states[valid[0]] = CopyState.MODIFIED
            self._owner = valid[0]
        self._check_invariants()

    def recover_from_node_loss(self, node: int, t: float) -> bool:
        """Drop the copy at ``node`` after its device was lost.

        Unlike :meth:`invalidate` (a policy decision that refuses to lose
        the only valid copy), device loss is involuntary: the replica is
        gone no matter what.  When another node still holds a valid copy
        the loss degenerates to a plain invalidation.  When the lost node
        was the *sole owner*, the handle is re-sourced from the host
        shadow: kernels compute on the host-resident ground-truth payload
        and device copies are placement/timing model state, so the engine
        recovers by re-validating the host copy at the loss time — the
        modeled equivalent of a runtime that lazily write-backs device
        data and replays from the last host checkpoint.

        Returns True when sole-owner recovery was needed (callers record
        a ``replica_lost`` fault for it), False for a plain invalidation,
        and False without side effects when the node held no valid copy.
        """
        if node == HOST_NODE:
            raise DataConsistencyError("the host memory node cannot be lost")
        if self._states[node] is CopyState.INVALID:
            return False
        if any(
            s is not CopyState.INVALID
            for n, s in enumerate(self._states)
            if n != node
        ):
            self.invalidate(node)
            return False
        self._states[node] = CopyState.INVALID
        self._states[HOST_NODE] = CopyState.MODIFIED
        self._owner = HOST_NODE
        self._ready_at[HOST_NODE] = max(self._ready_at[HOST_NODE], t)
        self._check_invariants()
        return True

    def mark_shared(self, node: int, ready_at: float) -> None:
        """A valid copy appears at ``node`` (via transfer); any MODIFIED
        copy elsewhere degrades to SHARED — both are now up to date.

        No invariant check: the transition cannot leave a MODIFIED copy
        behind, so the MSI invariants hold by construction (these two
        transitions are on the per-task hot path).
        """
        states = self._states
        for n, s in enumerate(states):
            if s is CopyState.MODIFIED:
                states[n] = CopyState.SHARED
        states[node] = CopyState.SHARED
        self._owner = None
        if ready_at > self._ready_at[node]:
            self._ready_at[node] = ready_at

    def mark_modified(self, node: int, ready_at: float) -> None:
        """``node`` is written: it becomes the single valid copy.

        No invariant check — single MODIFIED owner by construction.
        """
        if self._owner != node:
            states = self._states
            for n in range(len(states)):
                states[n] = CopyState.INVALID
            states[node] = CopyState.MODIFIED
            self._owner = node
        self._ready_at[node] = ready_at

    def _check_invariants(self) -> None:
        states = self._states
        modified = [n for n, s in enumerate(states) if s is CopyState.MODIFIED]
        if len(modified) > 1:
            raise DataConsistencyError(
                f"handle {self.name!r}: multiple MODIFIED copies at {modified}"
            )
        if modified and any(s is CopyState.SHARED for s in states):
            raise DataConsistencyError(
                f"handle {self.name!r}: MODIFIED coexists with SHARED"
            )
        if not any(s is not CopyState.INVALID for s in states):
            raise DataConsistencyError(f"handle {self.name!r}: no valid copy")

    # -- sequential data consistency ---------------------------------------

    def dependencies_for(self, writes: bool) -> list["Task"]:
        """Tasks a new access must wait for (StarPU's R/W ordering):

        - a reader waits for the last writer;
        - a writer waits for the last writer *and* every reader since.
        """
        deps: list["Task"] = []
        if self.last_writer is not None:
            deps.append(self.last_writer)
        if writes:
            deps.extend(self.readers_since_write)
        return deps

    def record_access(self, task: "Task", writes: bool) -> None:
        """Register ``task``'s access in submission order."""
        if writes:
            self.last_writer = task
            self.readers_since_write = []
        else:
            self.readers_since_write.append(task)

    def reset_host_access(self) -> None:
        """The host program wrote the data (acquire-RW): task-level
        ordering restarts from the host copy."""
        self.last_writer = None
        self.readers_since_write = []

    # -- partitioning --------------------------------------------------------

    def partition_by_slices(
        self, slices: Sequence[tuple[slice, ...] | slice]
    ) -> list["DataHandle"]:
        """Split this handle into child handles over *views* of the payload.

        Children inherit the parent's coherence state, so a handle that is
        valid on the GPU stays valid chunk-wise.  While partitioned, the
        parent must not be used by tasks (use :meth:`unpartition` first).
        """
        if self.partitioned:
            raise DataConsistencyError(f"handle {self.name!r} already partitioned")
        if not slices:
            raise DataConsistencyError("partition needs at least one slice")
        for i, sl in enumerate(slices):
            view = self.array[sl]
            if view.base is None and view.size and view is not self.array:
                raise DataConsistencyError(
                    f"slice {i} of handle {self.name!r} is not a view"
                )
            child = DataHandle(view, self.n_nodes, name=f"{self.name}[{i}]")
            child._states = list(self._states)
            child._owner = self._owner
            child._ready_at = list(self._ready_at)
            # children inherit the parent's ordering state so chunk tasks
            # still serialize correctly against pre-partition accesses
            child.last_writer = self.last_writer
            child.readers_since_write = list(self.readers_since_write)
            child.parent = self
            self.children.append(child)
        return list(self.children)

    def partition_equal(self, n_chunks: int, axis: int = 0) -> list["DataHandle"]:
        """Split into ``n_chunks`` nearly equal blocks along ``axis``."""
        if n_chunks < 1:
            raise DataConsistencyError(f"n_chunks must be >= 1, got {n_chunks}")
        length = self.array.shape[axis]
        bounds = np.linspace(0, length, n_chunks + 1).astype(int)
        slices = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            sl: list[slice] = [slice(None)] * self.array.ndim
            sl[axis] = slice(int(lo), int(hi))
            slices.append(tuple(sl))
        return self.partition_by_slices(slices)

    def drop_partition(self) -> None:
        """Forget the children (the engine gathers them first)."""
        for child in self.children:
            child.parent = None
            child.unregistered = True
        self.children = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = ",".join(s.value[0] for s in self._states)
        return f"<DataHandle {self.name} #{self.handle_id} [{states}]>"
