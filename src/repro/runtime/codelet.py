"""Codelets: the runtime-level bundle of implementation variants.

This is the analog of a StarPU codelet: one computational functionality
with up to one entry point per backend architecture (the paper's
backend-wrappers).  The composition tool lowers each PEPPHER component
interface plus its selected implementation variants into one codelet.

A variant carries two callables:

``fn(ctx, *arrays)``
    The *real* computation, operating on NumPy arrays in place (W/RW
    operands) — results are bit-checkable against a reference.

``cost_model(ctx, device)``
    The *modeled* execution time of this variant on a given
    :class:`~repro.hw.devices.DeviceSpec`, in seconds.  This is ground
    truth for the simulation; the runtime's *performance models* (see
    :mod:`repro.runtime.perfmodel`) learn it from noisy observations, the
    way StarPU's history models learn real kernel timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.errors import RuntimeSystemError
from repro.hw.devices import DeviceSpec
from repro.runtime.archs import Arch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.model import KernelProfile

#: signature of the real computation: fn(ctx, *operand_arrays) -> None
KernelFn = Callable[..., None]
#: signature of the modeled execution time: (ctx, device) -> seconds
CostFn = Callable[[Mapping[str, object], DeviceSpec], float]
#: optional selectability predicate: ctx -> bool
GuardFn = Callable[[Mapping[str, object]], bool]


@dataclass
class ImplVariant:
    """One implementation variant of a codelet.

    Attributes
    ----------
    name:
        Unique variant name, e.g. ``"spmv_cuda_cusp"``.
    arch:
        Backend architecture the variant targets.
    fn:
        The real computation (see module docstring).
    cost_model:
        Modeled execution time (see module docstring).
    guard:
        Optional selectability constraint evaluated on the call context;
        variants whose guard returns False are not candidates for that
        call (paper section II, "additional constraints for component
        selectability").
    tunables:
        Bound tunable-parameter values this variant was expanded with.
    min_device_memory_bytes:
        Resource requirement from the implementation descriptor: the
        variant only bids for devices with at least this much local
        memory (host workers, whose memory is unlimited, always qualify).
    min_cores:
        Minimum CPU-gang size a gang (OpenMP) variant requires.
    kernel_profile:
        Optional :class:`~repro.hw.model.KernelProfile` describing this
        variant's launch shape and instruction mix.  Consumed by
        detailed-tier device models: it refines the occupancy and
        latency arithmetic, and makes :meth:`fits_device` reject
        devices whose SMs cannot host even one block of the launch
        shape.  Coarse-tier devices ignore it.
    """

    name: str
    arch: Arch
    fn: KernelFn
    cost_model: CostFn
    guard: GuardFn | None = None
    tunables: dict[str, object] = field(default_factory=dict)
    min_device_memory_bytes: int = 0
    min_cores: int = 1
    kernel_profile: "KernelProfile | None" = None

    def fits_device(self, device: DeviceSpec) -> bool:
        """Resource check against a device (paper section II's
        "type and min./max. amount of resources required")."""
        if self.min_device_memory_bytes and device.memory_bytes is not None:
            if device.memory_bytes < self.min_device_memory_bytes:
                return False
        if self.kernel_profile is not None and device.model is not None:
            feasible = getattr(device.model, "feasible", None)
            if feasible is not None and not feasible(self.kernel_profile):
                return False
        return True

    def selectable(self, ctx: Mapping[str, object]) -> bool:
        """Evaluate the selectability guard for a call context."""
        if self.guard is None:
            return True
        return bool(self.guard(ctx))

    def predict(self, ctx: Mapping[str, object], device: DeviceSpec) -> float:
        """Ground-truth modeled time for this variant on ``device``."""
        t = float(self.cost_model(ctx, device))
        if t < 0:
            raise RuntimeSystemError(
                f"variant {self.name!r}: cost model returned negative time {t}"
            )
        return t


@dataclass
class Codelet:
    """A named functionality with one or more implementation variants.

    ``performance_aware`` mirrors the per-component ``useHistoryModels``
    flag: when False, performance-aware policies place this codelet's
    tasks greedily instead of consulting learned models (paper IV-G).
    """

    name: str
    variants: list[ImplVariant] = field(default_factory=list)
    performance_aware: bool = True

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for v in self.variants:
            if v.name in seen:
                raise RuntimeSystemError(
                    f"codelet {self.name!r}: duplicate variant {v.name!r}"
                )
            seen.add(v.name)

    def add_variant(self, variant: ImplVariant) -> None:
        if any(v.name == variant.name for v in self.variants):
            raise RuntimeSystemError(
                f"codelet {self.name!r}: duplicate variant {variant.name!r}"
            )
        self.variants.append(variant)

    def variants_for_arch(self, arch: Arch) -> list[ImplVariant]:
        return [v for v in self.variants if v.arch is arch]

    def candidates(self, ctx: Mapping[str, object]) -> list[ImplVariant]:
        """Variants whose selectability guard passes for this context."""
        return [v for v in self.variants if v.selectable(ctx)]

    def archs(self) -> set[Arch]:
        return {v.arch for v in self.variants}

    def restricted(self, keep: Sequence[str]) -> "Codelet":
        """A copy containing only the named variants (static narrowing)."""
        keep_set = set(keep)
        missing = keep_set - {v.name for v in self.variants}
        if missing:
            raise RuntimeSystemError(
                f"codelet {self.name!r}: cannot keep unknown variants {sorted(missing)}"
            )
        return Codelet(
            name=self.name,
            variants=[v for v in self.variants if v.name in keep_set],
            performance_aware=self.performance_aware,
        )

    def without(self, drop: Sequence[str]) -> "Codelet":
        """A copy with the named variants disabled (``disableImpls``)."""
        drop_set = set(drop)
        kept = [v for v in self.variants if v.name not in drop_set]
        if not kept:
            raise RuntimeSystemError(
                f"codelet {self.name!r}: disabling {sorted(drop_set)} leaves no variant"
            )
        return Codelet(
            name=self.name, variants=kept, performance_aware=self.performance_aware
        )
