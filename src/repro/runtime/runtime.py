"""The Runtime facade: PEPPHER's runtime-system API surface.

Generated entry-wrappers (and hand-written "direct" code) talk to this
class, the analog of StarPU's public API as the paper uses it:
``PEPPHER_INITIALIZE()`` / ``PEPPHER_SHUTDOWN()``, data registration,
asynchronous and synchronous task submission, explicit acquire/release of
data from the application program, and a task barrier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import PeppherError, RuntimeSystemError
from repro.hw.faults import FaultModel
from repro.hw.description import Machine
from repro.hw.noise import NoiseModel, NullNoise
from repro.runtime.access import AccessMode
from repro.runtime.codelet import Codelet
from repro.runtime.data import DataHandle
from repro.runtime.engine import Engine, RecoveryPolicy
from repro.runtime.perfmodel import PerfModel
from repro.runtime.schedulers import (
    Scheduler,
    make_scheduler,
    warn_scheduler_instance,
)
from repro.runtime.stats import ExecutionTrace
from repro.runtime.task import Operand, Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.base import ExecutionBackend
    from repro.tuning.store import PerfModelStore


class Runtime:
    """One runtime session on a (simulated) heterogeneous machine.

    Parameters
    ----------
    machine:
        The machine to execute on (see :mod:`repro.hw.presets`).
    scheduler:
        A policy name (``"eager"``, ``"random"``, ``"ws"``, ``"dm"``,
        ``"dmda"``) or a :class:`Scheduler` instance.  The paper's
        performance-aware dynamic composition corresponds to ``"dmda"``.
    seed:
        Seed for timing noise and randomized policies; runs are
        bit-reproducible for a fixed seed.
    noise_sigma:
        Relative timing jitter; 0 disables noise.
    submit_overhead_s:
        Host virtual time charged per task submission.
    run_kernels:
        When False, tasks advance time but skip the real computation.
    perfmodel:
        Optionally start from a pre-trained performance model (e.g.
        loaded from disk), like StarPU's persistent calibration files.
    perfmodel_path:
        Persistent calibration file (StarPU keeps per-machine perfmodel
        files under ``~/.starpu``): loaded at start-up when it exists,
        written back at shutdown, so later sessions skip calibration.
    store:
        A :class:`~repro.tuning.store.PerfModelStore`: the machine's
        calibrated model is loaded at start-up (stale entries raise
        :class:`~repro.errors.StaleModelError` instead of being reused)
        and the updated model is merged back at shutdown.  Mutually
        exclusive with ``perfmodel`` / ``perfmodel_path``.
    faults:
        Optional :class:`~repro.hw.faults.FaultModel` injecting transient
        kernel failures, transfer corruption and device loss.  ``None``
        disables fault injection entirely (zero overhead).
    recovery:
        :class:`~repro.runtime.engine.RecoveryPolicy` governing retries,
        backoff, and worker blacklisting under faults.
    check:
        Run the :mod:`repro.check.invariants` trace checker when the
        session shuts down cleanly; the first violation raises
        :class:`~repro.errors.InvariantViolation`.  ``None`` (default)
        defers to the process-wide default
        (:func:`repro.check.config.default_check` / ``REPRO_CHECK=1``).
    record:
        Record every scheduling decision into a
        :class:`~repro.check.replay.DecisionLog` (see
        :attr:`decision_log`) for deterministic replay via the
        ``"replay"`` policy.
    exec_backend:
        Where kernels actually execute (see :mod:`repro.exec`): a
        backend name (``"simulated"``, ``"thread"``, ``"process"``), a
        backend instance, or ``None`` (default) for the original inline
        path.  A backend given by name is owned by this runtime and
        closed at shutdown; an instance is borrowed (callers sharing a
        pool across runtimes close it themselves).

    Example
    -------
    >>> from repro.hw.presets import platform_c2050
    >>> rt = Runtime(platform_c2050())
    >>> # h = rt.register(array); rt.submit(codelet, [(h, "rw")], ctx={...})
    >>> # rt.wait_for_all(); rt.shutdown()
    """

    def __init__(
        self,
        machine: Machine,
        scheduler: str | Scheduler = "dmda",
        seed: int = 0,
        noise_sigma: float = 0.03,
        submit_overhead_s: float = 1e-6,
        run_kernels: bool = True,
        perfmodel: PerfModel | None = None,
        scheduler_options: Mapping[str, object] | None = None,
        perfmodel_path: "str | None" = None,
        store: "PerfModelStore | None" = None,
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        check: bool | None = None,
        record: bool = False,
        exec_backend: "str | ExecutionBackend | None" = None,
    ) -> None:
        if store is not None and (
            perfmodel is not None or perfmodel_path is not None
        ):
            raise RuntimeSystemError(
                "pass either store or perfmodel/perfmodel_path, not both"
            )
        if perfmodel_path is not None:
            if perfmodel is not None:
                raise RuntimeSystemError(
                    "pass either perfmodel or perfmodel_path, not both"
                )
            from pathlib import Path

            if Path(perfmodel_path).exists():
                perfmodel = PerfModel.load(perfmodel_path)
        if store is not None:
            perfmodel = store.warm_model(machine)
        self._perfmodel_path = perfmodel_path
        self._store = store
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler, **dict(scheduler_options or {}))
        else:
            warn_scheduler_instance("Runtime")
            if scheduler_options:
                raise RuntimeSystemError(
                    "scheduler_options only apply when scheduler is given by name"
                )
        self._check = check
        self._checked = False
        self._recorder = None
        self._own_backend = False
        if isinstance(exec_backend, str):
            from repro.exec.base import make_backend

            exec_backend = make_backend(exec_backend)
            self._own_backend = True
        self.exec_backend = exec_backend
        noise: NoiseModel = (
            NullNoise() if noise_sigma == 0 else NoiseModel(sigma=noise_sigma, seed=seed)
        )
        self.machine = machine
        self.scheduler = scheduler
        self.engine = Engine(
            machine=machine,
            scheduler=scheduler,
            perfmodel=perfmodel,
            noise=noise,
            submit_overhead_s=submit_overhead_s,
            seed=seed,
            run_kernels=run_kernels,
            faults=faults,
            recovery=recovery,
            exec_backend=exec_backend,
        )
        if record:
            # decisions are captured from the typed event stream, not by
            # wrapping the scheduler: one schedule event per choose call
            from repro.check.replay import DecisionRecorder

            self._recorder = DecisionRecorder().attach(self.engine)

    # -- data ---------------------------------------------------------------

    def register(self, array: np.ndarray, name: str = "") -> DataHandle:
        """Register host data; returns a handle usable as task operand."""
        return self.engine.register(array, name=name)

    def unregister(self, handle: DataHandle) -> float:
        """Flush to host and release the handle (no further task use)."""
        return self.engine.unregister(handle)

    def acquire(self, handle: DataHandle, mode: str | AccessMode) -> float:
        """Block until the host may access the data with ``mode``."""
        if isinstance(mode, str):
            mode = AccessMode.parse(mode)
        return self.engine.acquire(handle, mode)

    def partition_equal(
        self, handle: DataHandle, n_chunks: int, axis: int = 0
    ) -> list[DataHandle]:
        return self.engine.partition_equal(handle, n_chunks, axis=axis)

    def partition_by_slices(
        self, handle: DataHandle, slices: Iterable
    ) -> list[DataHandle]:
        return self.engine.partition_by_slices(handle, slices)

    def unpartition(self, handle: DataHandle) -> float:
        return self.engine.unpartition(handle)

    # -- tasks ----------------------------------------------------------------

    def submit(
        self,
        codelet: Codelet,
        operands: Sequence[tuple[DataHandle, str | AccessMode]],
        ctx: Mapping[str, object] | None = None,
        scalar_args: tuple = (),
        sync: bool = False,
        priority: int = 0,
        name: str = "",
        parent: Task | None = None,
    ) -> Task:
        """Translate one component invocation into a runtime task.

        ``operands`` pairs each registered handle with its access mode
        (``"r"``/``"w"``/``"rw"`` or :class:`AccessMode`).  Asynchronous
        by default; ``sync=True`` blocks the host program until the task
        completes (entry-wrappers expose both, paper section IV-C).
        """
        parse = AccessMode.parse
        ops = [
            Operand(h, parse(m) if isinstance(m, str) else m)
            for h, m in operands
        ]
        task = Task(codelet, ops, ctx, scalar_args, priority, parent, name)
        return self.engine.submit(task, sync)

    def wait_for_all(self) -> float:
        """Barrier over every submitted task; returns virtual time."""
        return self.engine.wait_for_all()

    def shutdown(self) -> float:
        """Drain and close the session; returns the final virtual time.

        When a persistent calibration file or a model store was
        configured, the (now updated) performance model is written back.
        With checking enabled (``check=True`` or the process default),
        the finished trace is validated against the run invariants and
        the first violation raises
        :class:`~repro.errors.InvariantViolation`.
        """
        t = self.engine.shutdown()
        if self._own_backend and self.exec_backend is not None:
            self.exec_backend.close()
        if self._perfmodel_path is not None:
            self.engine.perf.save(self._perfmodel_path)
        if self._store is not None:
            self._store.save(self.machine, self.engine.perf)
        if not self._checked and self._resolve_check():
            self._checked = True
            from repro.check.invariants import assert_trace_legal

            assert_trace_legal(self.trace, self.machine)
        return t

    def _resolve_check(self) -> bool:
        if self._check is not None:
            return self._check
        from repro.check.config import default_check

        return default_check()

    # -- introspection ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current host virtual time in seconds."""
        return self.engine.clock.now

    @property
    def trace(self) -> ExecutionTrace:
        return self.engine.trace

    @property
    def perfmodel(self) -> PerfModel:
        return self.engine.perf

    @property
    def measurements(self):
        """Wall-clock :class:`~repro.exec.timing.Measurement` records of
        every kernel joined by a real execution backend (empty on the
        inline path)."""
        return self.engine.measurements

    @property
    def decision_log(self):
        """The recorded :class:`~repro.check.replay.DecisionLog`, or
        ``None`` unless the session was built with ``record=True``."""
        return self._recorder.log if self._recorder is not None else None

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the session on both the clean and the error path.

        When the ``with`` body raised, shutdown still runs (so the
        session never leaks half-open state), but any secondary error it
        produces — e.g. ``wait_for_all`` complaining about the very tasks
        the in-flight exception interrupted — is swallowed rather than
        masking the original exception.
        """
        try:
            self.shutdown()
        except PeppherError:
            if exc_type is None:
                raise
