"""Tenant-fair scheduling policy (``fair``).

Multi-tenant serving needs two decisions per request: *when* it is
dispatched relative to other tenants' requests, and *where* it executes.
The weighted fair queueing that orders dispatches lives in the serving
layer (:mod:`repro.serve.fairness`) because only the front-end sees
requests before they become tasks; this policy is the placement half and
the switch that turns the fair dispatch path on.  The
:class:`~repro.serve.server.CompositionServer` detects ``fair`` and
orders its dispatch queue by per-tenant weighted virtual time instead of
throughput-greedy batch selection.

Placement itself delegates to an inner policy (``dmda`` by default):
fairness between tenants is a queueing property, not a placement one, so
the fair policy composes with any placement strategy rather than
re-implementing one.  The policy additionally tracks per-tenant service
consumption from the tasks it places (tasks carry their tenant in
``ctx["tenant"]``), which the serving layer reads back for accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.runtime.schedulers.base import Decision, EngineView, Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task


class FairShareScheduler(Scheduler):
    """Weighted-fair serving policy; placement delegates to ``inner``."""

    name = "fair"

    def __init__(
        self,
        inner: str | Scheduler = "dmda",
        weights: Mapping[str, float] | None = None,
        **inner_options,
    ) -> None:
        # deferred import: the policy registry imports this module
        from repro.runtime.schedulers import make_scheduler

        if isinstance(inner, str):
            inner = make_scheduler(inner, **inner_options)
        elif inner_options:
            raise ValueError(
                "inner_options only apply when inner is given by name"
            )
        if inner.name == self.name:
            raise ValueError("fair cannot delegate placement to itself")
        self.inner = inner
        self.weights = {str(k): float(v) for k, v in (weights or {}).items()}
        for tenant, w in self.weights.items():
            if w <= 0:
                raise ValueError(
                    f"tenant {tenant!r} weight must be positive, got {w}"
                )
        #: seconds of execution time placed per tenant (unweighted)
        self.service_s: dict[str, float] = {}

    def weight_of(self, tenant: str) -> float:
        return self.weights.get(tenant, 1.0)

    def note_service(self, tenant: str, seconds: float) -> None:
        """Credit executed seconds to a tenant (engine complete hook)."""
        self.service_s[tenant] = self.service_s.get(tenant, 0.0) + seconds

    def choose(self, task: "Task", view: EngineView) -> Decision:
        return self.inner.choose(task, view)
