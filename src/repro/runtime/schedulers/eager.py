"""Eager (greedy first-free) scheduling policy.

The StarPU ``eager`` policy keeps one central queue; any worker that
becomes idle grabs the next task, regardless of how well suited it is.
In our push-model simulator the equivalent greedy behaviour is: assign
the ready task to whichever feasible (variant, worker) pair can *start*
it earliest, ignoring how long it will then take.  This is deliberately
performance-oblivious — it is the baseline that dmda improves upon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.schedulers.base import Decision, EngineView, Scheduler, enumerate_candidates

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task


class EagerScheduler(Scheduler):
    """Greedy first-free assignment, oblivious to execution time."""

    name = "eager"

    def __init__(self) -> None:
        #: per-candidate-list derived attributes (anchor unit id, memory
        #: node, gang worker ids).  enumerate_candidates returns the
        #: *same cached list object* for a guard-free codelet until the
        #: engine invalidates it, so keying on list identity is exact.
        self._plan: tuple[list, list] | None = None

    def choose(self, task: "Task", view: EngineView) -> Decision:
        candidates = enumerate_candidates(task, view)
        plan = self._plan
        if plan is None or plan[0] is not candidates:
            info = [
                (
                    d,
                    d.workers[0].unit_id,
                    d.workers[0].memory_node,
                    (
                        None
                        if len(d.workers) == 1
                        else tuple(u.unit_id for u in d.workers)
                    ),
                )
                for d in candidates
            ]
            self._plan = plan = (candidates, info)
        ready = task.ready_time
        avail_times = view.worker_available_times()
        data_at = view.estimate_data_ready
        # operand readiness depends only on the anchor's memory node, so
        # candidates sharing a node (e.g. every CPU core) share one
        # estimate_data_ready call
        node_ready: dict[int, float] = {}
        best: Decision | None = None
        best_start = 0.0
        best_uid = -1
        for decision, uid, node, gang_ids in plan[1]:
            if gang_ids is None:
                avail = avail_times[uid]
            else:
                avail = max(avail_times[u] for u in gang_ids)
            data = node_ready.get(node)
            if data is None:
                data = node_ready[node] = data_at(task, node)
            start = ready if ready > avail else avail
            if data > start:
                start = data
            # deterministic tie-break on anchor unit id
            if (
                best is None
                or start < best_start
                or (start == best_start and uid < best_uid)
            ):
                best, best_start, best_uid = decision, start, uid
        assert best is not None  # enumerate_candidates raises when empty
        return best
