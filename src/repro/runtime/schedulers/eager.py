"""Eager (greedy first-free) scheduling policy.

The StarPU ``eager`` policy keeps one central queue; any worker that
becomes idle grabs the next task, regardless of how well suited it is.
In our push-model simulator the equivalent greedy behaviour is: assign
the ready task to whichever feasible (variant, worker) pair can *start*
it earliest, ignoring how long it will then take.  This is deliberately
performance-oblivious — it is the baseline that dmda improves upon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.schedulers.base import Decision, EngineView, Scheduler, enumerate_candidates

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task


class EagerScheduler(Scheduler):
    """Greedy first-free assignment, oblivious to execution time."""

    name = "eager"

    def choose(self, task: "Task", view: EngineView) -> Decision:
        candidates = enumerate_candidates(task, view)
        best: Decision | None = None
        best_key: tuple[float, int] | None = None
        for decision in candidates:
            start = self.earliest_start(task, decision, view)
            # deterministic tie-break on anchor unit id
            key = (start, decision.anchor.unit_id)
            if best_key is None or key < best_key:
                best, best_key = decision, key
        assert best is not None  # enumerate_candidates raises when empty
        return best
