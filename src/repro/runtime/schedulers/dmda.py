"""dmda — deque model data aware (StarPU's performance-aware policy).

This is the policy behind the paper's "tool-generated performance-aware"
(TGPA) results: for every ready task it evaluates each feasible
(variant, worker) pair and picks the one with the minimum *expected
completion time*::

    completion = max(worker_free, data_ready) + predicted_exec

where ``data_ready`` includes estimated PCIe transfer time for operands
not yet valid at the target memory node (the "data aware" part) and
``predicted_exec`` comes from the learned performance model
(:mod:`repro.runtime.perfmodel`), never from ground truth.

While a (task-size, variant) combination is uncalibrated — the model has
fewer than ``calibration_samples`` observations — the policy explores:
it deliberately assigns the task to the least-sampled candidate so every
variant quickly accumulates history, mirroring StarPU's calibration
phase.  The ``dm`` variant (``data_aware=False``) ignores transfer costs,
for ablation studies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.schedulers.base import Decision, EngineView, Scheduler, enumerate_candidates

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task


class DmdaScheduler(Scheduler):
    """Minimum-expected-completion-time scheduling with calibration."""

    name = "dmda"

    #: optimisation goals the policy can pursue (the PEPPHER main
    #: descriptor's optimizationGoal maps onto these)
    OBJECTIVES = ("min_exec_time", "min_energy", "min_edp")

    def __init__(
        self,
        data_aware: bool = True,
        calibration_samples: int = 2,
        beta: float = 1.0,
        objective: str = "min_exec_time",
    ) -> None:
        """
        Parameters
        ----------
        data_aware:
            Include estimated transfer time in the completion estimate
            (``True`` = StarPU dmda; ``False`` = StarPU dm).
        calibration_samples:
            Observations required per (size-bucket, variant) before the
            policy trusts the model instead of exploring.
        beta:
            Weight of the transfer-cost term (StarPU's ``STARPU_SCHED_BETA``).
        objective:
            ``min_exec_time`` ranks candidates by expected completion
            time; ``min_energy`` by predicted execution energy
            (exec_estimate x device busy power, still tie-broken by
            completion); ``min_edp`` by the energy-delay product.
        """
        if calibration_samples < 1:
            raise ValueError("calibration_samples must be >= 1")
        if objective not in self.OBJECTIVES:
            raise ValueError(
                f"objective must be one of {self.OBJECTIVES}, got {objective!r}"
            )
        self.data_aware = data_aware
        self.calibration_samples = calibration_samples
        self.beta = beta
        self.objective = objective

    def choose(self, task: "Task", view: EngineView) -> Decision:
        candidates = enumerate_candidates(task, view)

        # --- per-component useHistoryModels off: greedy placement ---------
        if not task.codelet.performance_aware:
            return min(
                candidates,
                key=lambda d: (
                    self.earliest_start(task, d, view),
                    d.anchor.unit_id,
                ),
            )

        # --- calibration: explore least-sampled variants first ------------
        # A variant counts as calibrated with either enough exact history
        # for this size bucket or a regression fit covering the size —
        # warm-started models therefore skip exploration entirely.
        undersampled = [
            d
            for d in candidates
            if not view.is_calibrated(task, d.variant, self.calibration_samples)
        ]
        if undersampled:
            view.note_exploration(task)

            # among undersampled variants prefer the globally least
            # sampled one, then the earliest-starting worker for it
            def calib_key(d: Decision) -> tuple:
                return (
                    view.n_samples(task, d.variant),
                    self.earliest_start(task, d, view),
                    d.anchor.unit_id,
                )

            return min(undersampled, key=calib_key)

        # --- steady state: minimum expected completion time ----------------
        best: Decision | None = None
        best_key: tuple[float, int] | None = None
        # data readiness/transfer cost depend only on the target memory
        # node; candidates sharing a node share one estimate
        node_est: dict[int, tuple[float, float]] = {}
        for decision in candidates:
            node = decision.anchor.memory_node
            avail = max(
                view.worker_available_at(u.unit_id) for u in decision.workers
            )
            if self.data_aware:
                est = node_est.get(node)
                if est is None:
                    est = node_est[node] = (
                        view.estimate_data_ready(task, node),
                        view.estimate_transfer_cost(task, node),
                    )
                data_ready = est[0]
                penalty = (self.beta - 1.0) * est[1]
            else:
                data_ready = task.ready_time
                penalty = 0.0
            exec_est = view.predict_exec(task, decision.variant, decision.anchor)
            assert exec_est is not None  # calibrated: model must answer
            completion = (
                max(task.ready_time, avail, data_ready) + exec_est + penalty
            )
            if self.objective == "min_exec_time":
                score = completion
            else:
                energy = exec_est * sum(
                    u.device.busy_watts for u in decision.workers
                )
                score = energy if self.objective == "min_energy" else energy * completion
            key = (score, completion, decision.anchor.unit_id)
            if best_key is None or key < best_key:
                best, best_key = decision, key
        assert best is not None
        return best


class DmScheduler(DmdaScheduler):
    """StarPU ``dm``: performance-model driven but transfer-oblivious."""

    name = "dm"

    def __init__(self, calibration_samples: int = 2) -> None:
        super().__init__(data_aware=False, calibration_samples=calibration_samples)
