"""Weighted-random scheduling policy (StarPU's ``random``).

Each feasible decision is drawn with probability proportional to the
peak throughput of its (anchor) device, so a C2050 attracts ~50x more
tasks than one CPU core — statistically load-balanced but blind to data
locality and to the actual per-task costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.schedulers.base import Decision, EngineView, Scheduler, enumerate_candidates

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task


class RandomWeightedScheduler(Scheduler):
    """Pick a decision with probability proportional to device speed."""

    name = "random"

    def choose(self, task: "Task", view: EngineView) -> Decision:
        candidates = enumerate_candidates(task, view)
        weights = [
            sum(u.device.peak_gflops for u in d.workers) for d in candidates
        ]
        total = sum(weights)
        pick = view.random() * total
        acc = 0.0
        for decision, w in zip(candidates, weights):
            acc += w
            if pick < acc:
                return decision
        return candidates[-1]  # numerical edge: pick == total
