"""Work-stealing-style load balancing (StarPU's ``ws``).

Real work stealing is a pull protocol; in the push-model simulator the
observable effect — tasks spread to keep per-worker queue lengths even —
is reproduced by assigning each ready task to the feasible worker with
the fewest tasks assigned so far.  Like ``eager``, it is oblivious to
execution-time predictions and to transfer costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.schedulers.base import Decision, EngineView, Scheduler, enumerate_candidates

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task


class WorkStealingScheduler(Scheduler):
    """Balance assigned-task counts across feasible workers."""

    name = "ws"

    def choose(self, task: "Task", view: EngineView) -> Decision:
        candidates = enumerate_candidates(task, view)
        best: Decision | None = None
        best_key: tuple[int, float, int] | None = None
        for decision in candidates:
            count = max(
                view.worker_assigned_count(u.unit_id) for u in decision.workers
            )
            start = self.earliest_start(task, decision, view)
            key = (count, start, decision.anchor.unit_id)
            if best_key is None or key < best_key:
                best, best_key = decision, key
        assert best is not None
        return best
