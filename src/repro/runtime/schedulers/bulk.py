"""Bulk scheduling: plan a whole window of tasks before committing any.

The push-model policies in this package see one ready task at a time.
A :class:`BulkScheduler` instead asks the engine to *buffer* submitted
tasks into a sliding window; when the window fills (or the application
hits a synchronization point — ``wait_for_all``, a smart-container
access, ``unpartition``), the engine hands the whole window to
:meth:`BulkScheduler.plan_window` and only then commits placements, one
``choose`` call per task in dependency order.  ``choose`` is expected to
return the planned decision (or a fallback when the plan is stale — a
worker died, the placement faulted, or the task escaped the window).

The contract keeps every other engine mechanism intact: fault recovery
retries still call ``choose``, schedule events still fire once per
``choose`` (so record/replay works unchanged), and the trace records the
committed timeline exactly as under an eager policy.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.runtime.schedulers.base import EngineView, Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task


class BulkScheduler(Scheduler):
    """Base class for window-planning (bulk) policies.

    Subclasses must set :attr:`window_size` (the engine flushes the
    buffered window when it reaches this many tasks) and implement
    :meth:`plan_window`, which inspects the window's DAG against the
    engine view and stashes per-task decisions for the subsequent
    ``choose`` calls.
    """

    is_bulk = True

    #: tasks buffered before the engine forces a window flush
    window_size: int = 16

    @abstractmethod
    def plan_window(self, tasks: Sequence["Task"], view: EngineView) -> None:
        """Plan placements for one window of submitted tasks.

        ``tasks`` arrive in submission order (a valid topological order:
        sequential data consistency only ever creates edges from earlier
        to later submissions).  The engine commits the window right
        after this returns, calling ``choose`` once per task as it
        becomes ready.
        """
