"""Scheduling policies for the task runtime.

``eager`` (greedy first-free), ``random`` (speed-weighted random), ``ws``
(queue-length balancing), ``dm`` (performance-model driven), ``dmda``
(performance-model + data-transfer aware — the default, and the policy
the paper's evaluation relies on) and ``fair`` (per-tenant weighted fair
serving; placement delegates to an inner policy).
"""

from __future__ import annotations

from repro.runtime.schedulers.base import Decision, EngineView, Scheduler, enumerate_candidates
from repro.runtime.schedulers.dmda import DmdaScheduler, DmScheduler
from repro.runtime.schedulers.eager import EagerScheduler
from repro.runtime.schedulers.fair import FairShareScheduler
from repro.runtime.schedulers.random_sched import RandomWeightedScheduler
from repro.runtime.schedulers.ws import WorkStealingScheduler

_POLICIES: dict[str, type[Scheduler]] = {
    EagerScheduler.name: EagerScheduler,
    RandomWeightedScheduler.name: RandomWeightedScheduler,
    WorkStealingScheduler.name: WorkStealingScheduler,
    DmScheduler.name: DmScheduler,
    DmdaScheduler.name: DmdaScheduler,
    FairShareScheduler.name: FairShareScheduler,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a policy by its short name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduling policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
    return cls(**kwargs)


def policy_names() -> list[str]:
    return sorted(_POLICIES)


__all__ = [
    "Decision",
    "DmScheduler",
    "DmdaScheduler",
    "EagerScheduler",
    "EngineView",
    "FairShareScheduler",
    "RandomWeightedScheduler",
    "Scheduler",
    "WorkStealingScheduler",
    "enumerate_candidates",
    "make_scheduler",
    "policy_names",
]
