"""Scheduling policies for the task runtime.

``eager`` (greedy first-free), ``random`` (speed-weighted random), ``ws``
(queue-length balancing), ``dm`` (performance-model driven), ``dmda``
(performance-model + data-transfer aware — the default, and the policy
the paper's evaluation relies on), ``fair`` (per-tenant weighted fair
serving; placement delegates to an inner policy) and ``lookahead``
(bulk window planning with container-aware fusion; see
:mod:`repro.composer.lookahead` and ``docs/PLANNER.md``).
"""

from __future__ import annotations

import warnings

from repro.runtime.schedulers.base import Decision, EngineView, Scheduler, enumerate_candidates
from repro.runtime.schedulers.bulk import BulkScheduler
from repro.runtime.schedulers.dmda import DmdaScheduler, DmScheduler
from repro.runtime.schedulers.eager import EagerScheduler
from repro.runtime.schedulers.fair import FairShareScheduler
from repro.runtime.schedulers.random_sched import RandomWeightedScheduler
from repro.runtime.schedulers.ws import WorkStealingScheduler

_POLICIES: dict[str, type[Scheduler]] = {
    EagerScheduler.name: EagerScheduler,
    RandomWeightedScheduler.name: RandomWeightedScheduler,
    WorkStealingScheduler.name: WorkStealingScheduler,
    DmScheduler.name: DmScheduler,
    DmdaScheduler.name: DmdaScheduler,
    FairShareScheduler.name: FairShareScheduler,
}


def _register_replay() -> None:
    """Add the decision-replay policy (lives in :mod:`repro.check`).

    Deferred to a function so the import stays obviously one-way:
    ``repro.check.replay`` depends only on ``schedulers.base``.
    """
    from repro.check.replay import ReplayScheduler

    _POLICIES[ReplayScheduler.name] = ReplayScheduler


_register_replay()

#: policies resolved on first use: the lookahead planner lives in
#: :mod:`repro.composer` (whose package import pulls the components
#: stack, which itself imports this runtime package), so registering it
#: eagerly here would be circular.  By the time anyone *instantiates*
#: the policy, the runtime package is fully initialized and the import
#: is safe.
_DEFERRED: dict[str, tuple[str, str]] = {
    "lookahead": ("repro.composer.lookahead", "LookaheadScheduler"),
}


def _resolve_deferred(name: str) -> type[Scheduler]:
    from importlib import import_module

    module, attr = _DEFERRED[name]
    cls: type[Scheduler] = getattr(import_module(module), attr)
    _POLICIES[cls.name] = cls
    del _DEFERRED[name]
    return cls


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a policy by its short name."""
    cls = _POLICIES.get(name)
    if cls is None:
        if name in _DEFERRED:
            cls = _resolve_deferred(name)
        else:
            raise KeyError(
                f"unknown scheduling policy {name!r}; known: {policy_names()}"
            )
    return cls(**kwargs)


def policy_names() -> list[str]:
    return sorted({*_POLICIES, *_DEFERRED})


#: one-shot guard for the scheduler-instance deprecation below
_instance_warned = False


def warn_scheduler_instance(entry: str, stacklevel: int = 3) -> None:
    """Emit the scheduler-instance `DeprecationWarning` at most once.

    Every entry point (`Runtime`, `CompositionServer`, experiment CLIs)
    now resolves ``scheduler="dmda"`` strings through
    :func:`make_scheduler`; passing pre-built instances still works but
    is deprecated.  The warning fires once per process however many
    layers re-pass the same instance inward (a server handing its
    resolved scheduler to `Runtime` must not re-warn — under
    ``filterwarnings=error`` the inner call would otherwise explode).
    """
    global _instance_warned
    if _instance_warned:
        return
    _instance_warned = True
    warnings.warn(
        f"passing a Scheduler instance to {entry} is deprecated; pass the "
        f'policy name (e.g. scheduler="dmda") plus scheduler_options and '
        "let make_scheduler build it",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_instance_warning() -> None:
    """Re-arm the one-shot deprecation (for tests)."""
    global _instance_warned
    _instance_warned = False


__all__ = [
    "BulkScheduler",
    "Decision",
    "DmScheduler",
    "DmdaScheduler",
    "EagerScheduler",
    "EngineView",
    "FairShareScheduler",
    "RandomWeightedScheduler",
    "Scheduler",
    "WorkStealingScheduler",
    "enumerate_candidates",
    "make_scheduler",
    "policy_names",
    "reset_instance_warning",
    "warn_scheduler_instance",
]
