"""Scheduler interface and the engine view schedulers decide against.

A scheduler sees tasks one at a time, at the moment they become ready
(StarPU's push model), and picks an (implementation variant, worker set)
pair.  It never sees ground-truth cost models — only the machine layout,
current worker/link availability estimates and the *learned* performance
model, exactly the information StarPU policies have.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence

from repro.errors import SchedulingError
from repro.runtime.archs import Arch
from repro.runtime.codelet import ImplVariant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.description import Machine, ProcessingUnit
    from repro.runtime.task import Task


@dataclass(frozen=True)
class Decision:
    """Outcome of a scheduling choice for one ready task."""

    variant: ImplVariant
    workers: tuple["ProcessingUnit", ...]

    @property
    def anchor(self) -> "ProcessingUnit":
        """The unit whose memory node the task computes from."""
        return self.workers[0]


class EngineView(Protocol):
    """What the engine exposes to scheduling policies (read-only)."""

    @property
    def machine(self) -> "Machine": ...

    def worker_available_at(self, unit_id: int) -> float:
        """Virtual time the worker finishes its currently assigned work."""
        ...

    def worker_available_times(self) -> Sequence[float]:
        """Live per-worker available_at values indexed by unit id
        (read-only; one lookup per candidate instead of one call)."""
        ...

    def worker_assigned_count(self, unit_id: int) -> int:
        """Number of tasks assigned to the worker so far."""
        ...

    def estimate_data_ready(self, task: "Task", node: int) -> float:
        """Earliest time all of ``task``'s operands could be valid at
        ``node``, including estimated (not yet committed) transfers."""
        ...

    def estimate_transfer_cost(self, task: "Task", node: int) -> float:
        """Total seconds of copies needed to stage ``task`` at ``node``."""
        ...

    def link_available(self, link_node: int, direction: str) -> float:
        """Virtual time the (PCIe link, direction) DMA queue frees up
        (``direction`` is ``"h2d"`` or ``"d2h"``); bulk planners seed
        their simulated link occupancy from this."""
        ...

    def predict_exec(
        self, task: "Task", variant: ImplVariant, unit: "ProcessingUnit"
    ) -> float | None:
        """Learned execution-time estimate, or None while uncalibrated."""
        ...

    def n_samples(self, task: "Task", variant: ImplVariant) -> int:
        """Performance-history sample count for this (task-size, variant)."""
        ...

    def is_calibrated(
        self, task: "Task", variant: ImplVariant, min_history: int
    ) -> bool:
        """True once the model is trustworthy for this (task, variant):
        enough exact history for the size bucket, or a regression fit
        that covers the size (warm-started models count)."""
        ...

    def note_exploration(self, task: "Task") -> None:
        """Tell the engine this placement was an uncalibrated
        (exploration) decision, for the trace's exploration counter."""
        ...

    def cpu_gang(self) -> tuple["ProcessingUnit", ...]:
        """The CPU worker set an OpenMP (gang) variant occupies."""
        ...

    def random(self) -> float:
        """Uniform sample in [0, 1) from the engine's seeded stream."""
        ...

    def worker_usable(self, unit_id: int) -> bool:
        """False for workers whose device was lost or that the recovery
        layer blacklisted after repeated faults."""
        ...

    def failed_placements(self, task: "Task") -> set[tuple[str, int]]:
        """(variant name, anchor unit id) placements that already faulted
        for this task; retries prefer placements outside this set."""
        ...


def _feasible_decisions(task: "Task", view: EngineView) -> list[Decision]:
    """Build the feasible (variant, workers) list for one ready task."""
    decisions: list[Decision] = []
    gang = view.cpu_gang()
    for variant in task.codelet.candidates(task.ctx):
        if variant.arch.is_gang:
            if gang and len(gang) >= variant.min_cores:
                decisions.append(Decision(variant=variant, workers=gang))
            continue
        for unit in view.machine.units:
            if not view.worker_usable(unit.unit_id):
                continue
            if variant.arch.runs_on(unit) and variant.fits_device(unit.device):
                decisions.append(Decision(variant=variant, workers=(unit,)))
    return decisions


def enumerate_candidates(
    task: "Task", view: EngineView
) -> list[Decision]:
    """All feasible (variant, workers) decisions for a ready task.

    CPU variants may run on any CPU worker; OpenMP variants occupy the
    whole CPU gang; CUDA/OpenCL variants run on any GPU worker.  Variants
    whose selectability guard rejects the call context are skipped, as
    are workers that are dead (device lost) or blacklisted.  When the
    task already faulted on some placements, those are filtered out so
    every policy retries *elsewhere* first (GPU -> CPU fallback); they
    come back only if no untried placement remains (bounded same-place
    retry is better than giving up).

    Views may expose a ``candidate_cache`` dict; codelets whose variants
    are all guard-free get their decision list cached there (keyed by
    codelet identity — the list only depends on the codelet and on
    worker health, and the engine clears the cache whenever a worker is
    lost or blacklisted).  The returned list must be treated as
    immutable.
    """
    codelet = task.codelet
    cache = getattr(view, "candidate_cache", None)
    decisions: list[Decision] | None = None
    if cache is not None:
        entry = cache.get(id(codelet))
        if (
            entry is not None
            and entry[0] is codelet
            and entry[1] == len(codelet.variants)
        ):
            decisions = entry[2]
    if decisions is None:
        decisions = _feasible_decisions(task, view)
        if (
            cache is not None
            and decisions
            and all(v.guard is None for v in codelet.variants)
        ):
            cache[id(codelet)] = (codelet, len(codelet.variants), decisions)
    if not decisions:
        raise SchedulingError(
            f"task {task.name}: no executable variant on machine "
            f"{view.machine.name!r} (variants: "
            f"{[v.name for v in task.codelet.variants]}, context rejected: "
            f"{[v.name for v in task.codelet.variants if not v.selectable(task.ctx)]})"
        )
    # read the per-task fault set directly: it is None for every task
    # that never faulted, and the view-method indirection costs a call
    # on the per-task hot path
    failed = task.failed_on
    if failed:
        untried = [
            d
            for d in decisions
            if (d.variant.name, d.anchor.unit_id) not in failed
        ]
        if untried:
            return untried
    return decisions


class Scheduler(ABC):
    """Base class for scheduling policies."""

    #: short policy name used in CLI flags and experiment configs
    name: str = "base"

    #: bulk policies plan whole task windows before the engine commits
    #: any placement (see :mod:`repro.runtime.schedulers.bulk`); the
    #: engine checks this flag once at construction
    is_bulk: bool = False

    @abstractmethod
    def choose(self, task: "Task", view: EngineView) -> Decision:
        """Pick the decision for one ready task."""

    # Helper shared by time-driven policies ---------------------------------

    @staticmethod
    def earliest_start(task: "Task", decision: Decision, view: EngineView) -> float:
        """max(worker availability, operand readiness) for a decision."""
        node = decision.anchor.memory_node
        avail = max(view.worker_available_at(u.unit_id) for u in decision.workers)
        data = view.estimate_data_ready(task, node)
        return max(task.ready_time, avail, data)
