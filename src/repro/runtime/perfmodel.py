"""Performance models: what the runtime *learns* about variant timings.

The paper's runtime (StarPU) selects variants using performance history
recorded per codelet, per architecture and per data-size bucket.  We
reproduce both model kinds StarPU offers:

- :class:`HistoryModel` — per-(footprint, variant) running mean of observed
  execution times; exact but only valid for sizes already seen.
- :class:`RegressionModel` — per-variant power-law fit ``t = a * s^b + c``
  (we fit ``log t = log a + b log s``, StarPU's ``NL_REGRESSION_BASED``
  without the constant term) over (total operand bytes, time) samples;
  extrapolates to unseen sizes once enough samples span a size range.

:class:`PerfModel` combines them: exact history when available, regression
as fallback, ``None`` when the variant is still uncalibrated (schedulers
then explore, mirroring StarPU's calibration phase).

Observations come from the *simulated* execution times (analytic cost
model + lognormal noise), so the learning problem is faithful: the
scheduler never sees the ground-truth cost model, only noisy samples.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import RuntimeSystemError


@dataclass(slots=True)
class RunningStats:
    """Welford running mean/variance of a stream of durations."""

    n: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, x: float) -> None:
        if x < 0:
            raise RuntimeSystemError(f"negative duration observed: {x}")
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        return self.m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


#: footprint -> repr memo shared by every HistoryModel: repr() of the
#: same footprint tuple is recomputed for every record/predict call on
#: the per-task hot path otherwise.  Distinct footprints are few (one
#: per codelet and size bucket); the cap is a leak guard, not a policy.
_FOOTPRINT_REPRS: dict = {}
_FOOTPRINT_REPR_CAP = 4096


def _footprint_repr(footprint: tuple) -> str:
    try:
        r = _FOOTPRINT_REPRS.get(footprint)
    except TypeError:  # unhashable override inside the footprint
        return repr(footprint)
    if r is None:
        if len(_FOOTPRINT_REPRS) >= _FOOTPRINT_REPR_CAP:
            _FOOTPRINT_REPRS.clear()
        r = _FOOTPRINT_REPRS[footprint] = repr(footprint)
    return r


class HistoryModel:
    """Exact per-(footprint, variant) history of observed times."""

    def __init__(self, min_samples: int = 1) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.min_samples = min_samples
        self._table: dict[tuple, RunningStats] = {}

    @staticmethod
    def _key(footprint: tuple, variant_name: str) -> tuple:
        # Footprints are keyed by their repr so that persisted models
        # (JSON) round-trip exactly: Task.footprint() is stable across runs.
        return (_footprint_repr(footprint), variant_name)

    def record(self, footprint: tuple, variant_name: str, duration: float) -> None:
        # _key and RunningStats.add inlined: this runs once per completed
        # task and the two call frames are measurable at 1M-task scale
        key = (_footprint_repr(footprint), variant_name)
        stats = self._table.get(key)
        if stats is None:
            stats = self._table[key] = RunningStats()
        if duration < 0:
            raise RuntimeSystemError(f"negative duration observed: {duration}")
        n = stats.n + 1
        stats.n = n
        delta = duration - stats.mean
        stats.mean += delta / n
        stats.m2 += delta * (duration - stats.mean)

    def predict(self, footprint: tuple, variant_name: str) -> float | None:
        stats = self._table.get(self._key(footprint, variant_name))
        if stats is None or stats.n < self.min_samples:
            return None
        return stats.mean

    def n_samples(self, footprint: tuple, variant_name: str) -> int:
        stats = self._table.get(self._key(footprint, variant_name))
        return 0 if stats is None else stats.n

    def __len__(self) -> int:
        return len(self._table)


class RegressionModel:
    """Power-law fit of time vs. total operand size, per variant."""

    def __init__(self, min_samples: int = 4, min_size_ratio: float = 2.0) -> None:
        self.min_samples = min_samples
        #: largest/smallest sampled size must exceed this for extrapolation
        self.min_size_ratio = min_size_ratio
        self._samples: dict[str, list[tuple[float, float]]] = {}
        self._fits: dict[str, tuple[float, float] | None] = {}

    def record(self, variant_name: str, size: float, duration: float) -> None:
        if size <= 0 or duration <= 0:
            return  # log-log fit cannot use non-positive samples
        self._samples.setdefault(variant_name, []).append((size, duration))
        if self._fits:  # invalidate cached fit (skipped while unfit)
            self._fits.pop(variant_name, None)

    def _fit(self, variant_name: str) -> tuple[float, float] | None:
        """Return (log_a, b) of ``t = a * s^b``, or None if unfit-able."""
        if variant_name in self._fits:
            return self._fits[variant_name]
        fit = self._fit_samples(self._samples.get(variant_name, ()))
        self._fits[variant_name] = fit
        return fit

    def _fit_samples(
        self, samples: list[tuple[float, float]]
    ) -> tuple[float, float] | None:
        fit: tuple[float, float] | None = None
        if len(samples) >= self.min_samples:
            sizes = [s for s, _ in samples]
            # a single footprint size cannot anchor a slope, whatever
            # min_size_ratio allows; without the explicit spread check a
            # rounding-noise sxx (~1e-31) would fabricate one
            if (
                max(sizes) > min(sizes)
                and max(sizes) / min(sizes) >= self.min_size_ratio
            ):
                xs = [math.log(s) for s, _ in samples]
                ys = [math.log(t) for _, t in samples]
                n = len(xs)
                mx = sum(xs) / n
                my = sum(ys) / n
                sxx = sum((x - mx) ** 2 for x in xs)
                # noise floor: legitimate fits (size ratio >= 2) give
                # sxx of order n*(ln 2 / 2)^2 ~ 0.1; float rounding of
                # equal log-sizes gives ~1e-30
                if sxx > 1e-12:
                    b = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sxx
                    log_a = my - b * mx
                    fit = (log_a, b)
        return fit

    def predict(self, variant_name: str, size: float) -> float | None:
        if size <= 0:
            return None
        fit = self._fit(variant_name)
        if fit is None:
            return None
        log_a, b = fit
        return math.exp(log_a + b * math.log(size))

    def predict_from(
        self, samples: list[tuple[float, float]], size: float
    ) -> float | None:
        """Prediction from an explicit sample list under this model's fit
        rules, without touching recorded state — e.g. for out-of-sample
        validation of a fit against a measurement it has not seen."""
        if size <= 0:
            return None
        fit = self._fit_samples(samples)
        if fit is None:
            return None
        log_a, b = fit
        return math.exp(log_a + b * math.log(size))

    def samples(self, variant_name: str) -> list[tuple[float, float]]:
        """Copy of the recorded (size, duration) samples for a variant."""
        return list(self._samples.get(variant_name, ()))

    def n_samples(self, variant_name: str) -> int:
        return len(self._samples.get(variant_name, ()))


class PerfModel:
    """History-first, regression-fallback performance model.

    Observations carry a *provenance*: ``"analytical"`` samples come
    from the simulated timeline (analytic cost model + noise) and are
    what schedulers consult; ``"measured"`` samples are wall-clock
    timings of kernels actually executed by a real backend (see
    :mod:`repro.exec`).  The two populations live in parallel tables of
    the same model — never mixed, because their time bases differ — so
    one persisted file carries both and the analytical-vs-measured
    differential (``repro.experiments.backends``) can compare them.
    """

    #: accepted values for the ``provenance`` argument
    PROVENANCES = ("analytical", "measured")

    def __init__(
        self,
        history_min_samples: int = 1,
        regression_min_samples: int = 4,
    ) -> None:
        self.history = HistoryModel(min_samples=history_min_samples)
        self.regression = RegressionModel(min_samples=regression_min_samples)
        # wall-clock observations from real execution backends; same
        # model kinds, separate population (never consulted by the
        # simulated scheduling path)
        self.measured_history = HistoryModel(min_samples=history_min_samples)
        self.measured_regression = RegressionModel(
            min_samples=regression_min_samples
        )
        #: variant name -> codelet name, learned from footprints at record
        #: time (footprints lead with the codelet name); lets the
        #: per-machine model store group entries per codelet
        self._variant_codelet: dict[str, str] = {}

    def _tables(self, provenance: str) -> tuple[HistoryModel, RegressionModel]:
        if provenance == "analytical":
            return self.history, self.regression
        if provenance == "measured":
            return self.measured_history, self.measured_regression
        raise RuntimeSystemError(
            f"unknown provenance {provenance!r}; "
            f"expected one of {self.PROVENANCES}"
        )

    def record(
        self,
        footprint: tuple,
        variant_name: str,
        size: float,
        duration: float,
        provenance: str = "analytical",
    ) -> None:
        """Feed one observation (called by the engine at task completion)."""
        if (
            variant_name not in self._variant_codelet
            and footprint
            and isinstance(footprint[0], str)
        ):
            self._variant_codelet[variant_name] = footprint[0]
        if provenance == "analytical":
            hist, reg = self.history, self.regression
        else:
            hist, reg = self._tables(provenance)
        hist.record(footprint, variant_name, duration)
        reg.record(variant_name, size, duration)

    def predict(
        self,
        footprint: tuple,
        variant_name: str,
        size: float,
        provenance: str = "analytical",
    ) -> float | None:
        """Best available estimate, or None while uncalibrated."""
        hist, reg = self._tables(provenance)
        est = hist.predict(footprint, variant_name)
        if est is not None:
            return est
        return reg.predict(variant_name, size)

    def n_samples(
        self, footprint: tuple, variant_name: str, provenance: str = "analytical"
    ) -> int:
        return self._tables(provenance)[0].n_samples(footprint, variant_name)

    def measured_variants(self) -> set[str]:
        """Variants with at least one wall-clock (measured) observation."""
        out = {var for _, var in self.measured_history._table}
        out |= set(self.measured_regression._samples)
        return out

    def calibrated(
        self,
        footprint: tuple,
        variant_name: str,
        size: float,
        min_history: int = 1,
    ) -> bool:
        """Whether the model can be *trusted* for this (footprint, size).

        Calibrated means either enough exact history for the footprint
        bucket, or a usable regression fit covering the size — StarPU's
        regression models likewise serve sizes never observed directly
        once the fit exists.  Schedulers explore while this is False.
        """
        if self.history.n_samples(footprint, variant_name) >= min_history:
            return True
        return self.regression.predict(variant_name, size) is not None

    def codelet_of(self, variant_name: str) -> str:
        """Codelet a variant's observations belong to ('' if unknown)."""
        return self._variant_codelet.get(variant_name, "")

    def codelets(self) -> set[str]:
        """All codelet names with at least one recorded observation."""
        return set(self._variant_codelet.values())

    def unmapped_variants(self) -> set[str]:
        """Variants observed without a codelet-naming footprint."""
        out = {var for _, var in self.history._table}
        out |= set(self.regression._samples)
        out |= {var for _, var in self.measured_history._table}
        out |= set(self.measured_regression._samples)
        return out - set(self._variant_codelet)

    # -- persistence (StarPU stores per-machine perfmodel files) -----------

    def to_dict(self) -> dict:
        out = {
            "history": [
                {
                    "footprint": fp,
                    "variant": var,
                    "n": st.n,
                    "mean": st.mean,
                    "m2": st.m2,
                }
                for (fp, var), st in self.history._table.items()
            ],
            "regression": {
                var: samples for var, samples in self.regression._samples.items()
            },
            "codelets": dict(self._variant_codelet),
        }
        # measured tables are emitted only when non-empty, so files from
        # purely-simulated sessions are unchanged byte for byte
        if self.measured_history._table:
            out["measured_history"] = [
                {
                    "footprint": fp,
                    "variant": var,
                    "n": st.n,
                    "mean": st.mean,
                    "m2": st.m2,
                }
                for (fp, var), st in self.measured_history._table.items()
            ]
        if self.measured_regression._samples:
            out["measured_regression"] = {
                var: samples
                for var, samples in self.measured_regression._samples.items()
            }
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "PerfModel":
        model = cls()
        for entry in raw.get("history", []):
            st = RunningStats(n=entry["n"], mean=entry["mean"], m2=entry["m2"])
            model.history._table[(entry["footprint"], entry["variant"])] = st
        for var, samples in raw.get("regression", {}).items():
            model.regression._samples[var] = [tuple(s) for s in samples]
        for entry in raw.get("measured_history", []):
            st = RunningStats(n=entry["n"], mean=entry["mean"], m2=entry["m2"])
            model.measured_history._table[
                (entry["footprint"], entry["variant"])
            ] = st
        for var, samples in raw.get("measured_regression", {}).items():
            model.measured_regression._samples[var] = [tuple(s) for s in samples]
        model._variant_codelet = dict(raw.get("codelets", {}))
        return model

    def save(self, path: str | Path) -> None:
        """Atomically persist the model as JSON.

        A plain ``write_text`` interrupted mid-write leaves truncated
        JSON behind that poisons every later session; writing to a
        sibling temp file and ``os.replace``-ing guarantees readers see
        either the old or the new model, never a torn one.
        """
        path = Path(path)
        payload = json.dumps(self.to_dict(), indent=1)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | Path) -> "PerfModel":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- merging (the model store combines concurrent sessions) ------------

    def merge_from(self, other: "PerfModel") -> None:
        """Fold ``other``'s observations into this model, key by key.

        Sessions warm-started from the same store hold overlapping
        sample sets, so summing statistics would double-count the shared
        baseline.  Per key the *larger* sample set wins (it is a
        superset of the shared baseline in the common sequential case);
        keys only one side knows are always kept.  Concurrent
        experiments therefore never clobber each other's keys, at worst
        one side's extra samples for a shared key are dropped.
        """
        for mine_h, theirs_h in (
            (self.history, other.history),
            (self.measured_history, other.measured_history),
        ):
            for key, theirs in theirs_h._table.items():
                ours = mine_h._table.get(key)
                if ours is None or theirs.n > ours.n:
                    mine_h._table[key] = RunningStats(
                        n=theirs.n, mean=theirs.mean, m2=theirs.m2
                    )
        for mine_r, theirs_r in (
            (self.regression, other.regression),
            (self.measured_regression, other.measured_regression),
        ):
            for var, samples in theirs_r._samples.items():
                ours_s = mine_r._samples.get(var)
                if ours_s is None or len(samples) > len(ours_s):
                    mine_r._samples[var] = [tuple(s) for s in samples]
                    mine_r._fits.pop(var, None)
        for var, codelet in other._variant_codelet.items():
            self._variant_codelet.setdefault(var, codelet)

    def subset_for_codelets(self, codelets: "set[str]") -> "PerfModel":
        """A new model holding only entries belonging to ``codelets``.

        The empty string selects observations whose footprint named no
        codelet (hand-fed models; production footprints always do).
        """
        out = PerfModel(
            history_min_samples=self.history.min_samples,
            regression_min_samples=self.regression.min_samples,
        )
        keep = {
            var
            for var, cl in self._variant_codelet.items()
            if cl in codelets
        }
        if "" in codelets:
            keep |= self.unmapped_variants()
        for mine_h, theirs_h in (
            (out.history, self.history),
            (out.measured_history, self.measured_history),
        ):
            for (fp, var), st in theirs_h._table.items():
                if var in keep:
                    mine_h._table[(fp, var)] = RunningStats(
                        n=st.n, mean=st.mean, m2=st.m2
                    )
        for mine_r, theirs_r in (
            (out.regression, self.regression),
            (out.measured_regression, self.measured_regression),
        ):
            for var, samples in theirs_r._samples.items():
                if var in keep:
                    mine_r._samples[var] = [tuple(s) for s in samples]
        out._variant_codelet = {
            var: cl for var, cl in self._variant_codelet.items() if var in keep
        }
        return out
