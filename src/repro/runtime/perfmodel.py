"""Performance models: what the runtime *learns* about variant timings.

The paper's runtime (StarPU) selects variants using performance history
recorded per codelet, per architecture and per data-size bucket.  We
reproduce both model kinds StarPU offers:

- :class:`HistoryModel` — per-(footprint, variant) running mean of observed
  execution times; exact but only valid for sizes already seen.
- :class:`RegressionModel` — per-variant power-law fit ``t = a * s^b + c``
  (we fit ``log t = log a + b log s``, StarPU's ``NL_REGRESSION_BASED``
  without the constant term) over (total operand bytes, time) samples;
  extrapolates to unseen sizes once enough samples span a size range.

:class:`PerfModel` combines them: exact history when available, regression
as fallback, ``None`` when the variant is still uncalibrated (schedulers
then explore, mirroring StarPU's calibration phase).

Observations come from the *simulated* execution times (analytic cost
model + lognormal noise), so the learning problem is faithful: the
scheduler never sees the ground-truth cost model, only noisy samples.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import RuntimeSystemError


@dataclass
class RunningStats:
    """Welford running mean/variance of a stream of durations."""

    n: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, x: float) -> None:
        if x < 0:
            raise RuntimeSystemError(f"negative duration observed: {x}")
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        return self.m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class HistoryModel:
    """Exact per-(footprint, variant) history of observed times."""

    def __init__(self, min_samples: int = 1) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.min_samples = min_samples
        self._table: dict[tuple, RunningStats] = {}

    @staticmethod
    def _key(footprint: tuple, variant_name: str) -> tuple:
        # Footprints are keyed by their repr so that persisted models
        # (JSON) round-trip exactly: Task.footprint() is stable across runs.
        return (repr(footprint), variant_name)

    def record(self, footprint: tuple, variant_name: str, duration: float) -> None:
        key = self._key(footprint, variant_name)
        stats = self._table.get(key)
        if stats is None:
            stats = self._table[key] = RunningStats()
        stats.add(duration)

    def predict(self, footprint: tuple, variant_name: str) -> float | None:
        stats = self._table.get(self._key(footprint, variant_name))
        if stats is None or stats.n < self.min_samples:
            return None
        return stats.mean

    def n_samples(self, footprint: tuple, variant_name: str) -> int:
        stats = self._table.get(self._key(footprint, variant_name))
        return 0 if stats is None else stats.n

    def __len__(self) -> int:
        return len(self._table)


class RegressionModel:
    """Power-law fit of time vs. total operand size, per variant."""

    def __init__(self, min_samples: int = 4, min_size_ratio: float = 2.0) -> None:
        self.min_samples = min_samples
        #: largest/smallest sampled size must exceed this for extrapolation
        self.min_size_ratio = min_size_ratio
        self._samples: dict[str, list[tuple[float, float]]] = {}
        self._fits: dict[str, tuple[float, float] | None] = {}

    def record(self, variant_name: str, size: float, duration: float) -> None:
        if size <= 0 or duration <= 0:
            return  # log-log fit cannot use non-positive samples
        self._samples.setdefault(variant_name, []).append((size, duration))
        self._fits.pop(variant_name, None)  # invalidate cached fit

    def _fit(self, variant_name: str) -> tuple[float, float] | None:
        """Return (log_a, b) of ``t = a * s^b``, or None if unfit-able."""
        if variant_name in self._fits:
            return self._fits[variant_name]
        samples = self._samples.get(variant_name, ())
        fit: tuple[float, float] | None = None
        if len(samples) >= self.min_samples:
            sizes = [s for s, _ in samples]
            # a single footprint size cannot anchor a slope, whatever
            # min_size_ratio allows; without the explicit spread check a
            # rounding-noise sxx (~1e-31) would fabricate one
            if (
                max(sizes) > min(sizes)
                and max(sizes) / min(sizes) >= self.min_size_ratio
            ):
                xs = [math.log(s) for s, _ in samples]
                ys = [math.log(t) for _, t in samples]
                n = len(xs)
                mx = sum(xs) / n
                my = sum(ys) / n
                sxx = sum((x - mx) ** 2 for x in xs)
                # noise floor: legitimate fits (size ratio >= 2) give
                # sxx of order n*(ln 2 / 2)^2 ~ 0.1; float rounding of
                # equal log-sizes gives ~1e-30
                if sxx > 1e-12:
                    b = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sxx
                    log_a = my - b * mx
                    fit = (log_a, b)
        self._fits[variant_name] = fit
        return fit

    def predict(self, variant_name: str, size: float) -> float | None:
        if size <= 0:
            return None
        fit = self._fit(variant_name)
        if fit is None:
            return None
        log_a, b = fit
        return math.exp(log_a + b * math.log(size))

    def n_samples(self, variant_name: str) -> int:
        return len(self._samples.get(variant_name, ()))


class PerfModel:
    """History-first, regression-fallback performance model."""

    def __init__(
        self,
        history_min_samples: int = 1,
        regression_min_samples: int = 4,
    ) -> None:
        self.history = HistoryModel(min_samples=history_min_samples)
        self.regression = RegressionModel(min_samples=regression_min_samples)

    def record(
        self, footprint: tuple, variant_name: str, size: float, duration: float
    ) -> None:
        """Feed one observation (called by the engine at task completion)."""
        self.history.record(footprint, variant_name, duration)
        self.regression.record(variant_name, size, duration)

    def predict(
        self, footprint: tuple, variant_name: str, size: float
    ) -> float | None:
        """Best available estimate, or None while uncalibrated."""
        est = self.history.predict(footprint, variant_name)
        if est is not None:
            return est
        return self.regression.predict(variant_name, size)

    def n_samples(self, footprint: tuple, variant_name: str) -> int:
        return self.history.n_samples(footprint, variant_name)

    # -- persistence (StarPU stores per-machine perfmodel files) -----------

    def to_dict(self) -> dict:
        return {
            "history": [
                {
                    "footprint": fp,
                    "variant": var,
                    "n": st.n,
                    "mean": st.mean,
                    "m2": st.m2,
                }
                for (fp, var), st in self.history._table.items()
            ],
            "regression": {
                var: samples for var, samples in self.regression._samples.items()
            },
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path: str | Path) -> "PerfModel":
        raw = json.loads(Path(path).read_text())
        model = cls()
        for entry in raw.get("history", []):
            st = RunningStats(n=entry["n"], mean=entry["mean"], m2=entry["m2"])
            model.history._table[(entry["footprint"], entry["variant"])] = st
        for var, samples in raw.get("regression", {}).items():
            model.regression._samples[var] = [tuple(s) for s in samples]
        return model
