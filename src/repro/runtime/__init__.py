"""Task-based heterogeneous runtime system (StarPU analog).

Implements the substrate the PEPPHER composition tool targets: codelets
with per-architecture implementation variants, registered data handles
with MSI coherence across memory nodes, implicit dependency inference
from declared access modes, asynchronous task submission, history- and
regression-based performance models and performance-aware scheduling
policies — all driven by a deterministic discrete-event engine over the
simulated machine of :mod:`repro.hw`.
"""

from repro.runtime.access import AccessMode
from repro.runtime.archs import Arch
from repro.runtime.codelet import Codelet, ImplVariant
from repro.runtime.data import CopyState, DataHandle
from repro.runtime.engine import Engine, RecoveryPolicy
from repro.runtime.perfmodel import HistoryModel, PerfModel, RegressionModel
from repro.runtime.runtime import Runtime
from repro.runtime.schedulers import Scheduler, make_scheduler, policy_names
from repro.runtime.stats import (
    EvictionRecord,
    ExecutionTrace,
    FaultRecord,
    TaskRecord,
    TransferRecord,
)
from repro.runtime.task import Operand, Task, TaskState
from repro.runtime.trace_export import gantt_text, save_chrome_trace, to_chrome_trace

__all__ = [
    "AccessMode",
    "Arch",
    "Codelet",
    "CopyState",
    "DataHandle",
    "Engine",
    "EvictionRecord",
    "ExecutionTrace",
    "FaultRecord",
    "HistoryModel",
    "ImplVariant",
    "Operand",
    "PerfModel",
    "RecoveryPolicy",
    "RegressionModel",
    "Runtime",
    "Scheduler",
    "Task",
    "TaskRecord",
    "TaskState",
    "TransferRecord",
    "gantt_text",
    "make_scheduler",
    "policy_names",
    "save_chrome_trace",
    "to_chrome_trace",
]
