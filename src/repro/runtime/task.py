"""Tasks: scheduled invocations of a codelet on registered operands.

Component invocations are translated (by generated entry-wrappers) into
tasks, which are executed non-preemptively by the runtime.  Tasks are
stateless — all state travels through their operand data handles — and
may be synchronous (the caller blocks) or asynchronous (control returns
immediately; ordering is inferred from data accesses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from itertools import count
from typing import TYPE_CHECKING, Mapping

from repro.errors import RuntimeSystemError
from repro.runtime.access import AccessMode
from repro.runtime.codelet import Codelet, ImplVariant
from repro.runtime.data import DataHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.description import ProcessingUnit


class TaskState(Enum):
    """Lifecycle of a task inside the runtime."""

    SUBMITTED = "submitted"  # waiting on dependencies
    READY = "ready"  # dependencies satisfied, not yet assigned
    SCHEDULED = "scheduled"  # assigned to worker(s), timeline computed
    DONE = "done"


@dataclass(slots=True)
class Operand:
    """One (handle, access-mode) pair of a task."""

    handle: DataHandle
    mode: AccessMode


class Task:
    """One runtime task.

    Parameters
    ----------
    codelet:
        The functionality to execute; the scheduler picks the variant.
    operands:
        Registered data the task touches, with access modes.
    ctx:
        Call-context properties (problem sizes etc.) passed to kernels,
        cost models, guards and performance models.
    scalar_args:
        Plain (non-registered) values forwarded to the kernel unchanged.
    priority:
        Larger runs earlier among simultaneously-ready tasks.
    parent:
        Set for sub-tasks created by partitioning a single component
        invocation (intra-component parallelism, paper section IV-F).
    """

    __slots__ = (
        "task_id",
        "codelet",
        "operands",
        "ctx",
        "scalar_args",
        "priority",
        "parent",
        "name",
        "state",
        "n_pending_deps",
        "dependents",
        "earliest_start",
        "submit_time",
        "ready_time",
        "start_time",
        "end_time",
        "chosen_variant",
        "workers",
        "submit_seq",
        "dep_ids",
        "n_faults",
        "failed_on",
        "first_fault_arch",
    )

    _ids = count()

    def __init__(
        self,
        codelet: Codelet,
        operands: list[Operand],
        ctx: Mapping[str, object] | None = None,
        scalar_args: tuple = (),
        priority: int = 0,
        parent: "Task | None" = None,
        name: str = "",
    ) -> None:
        if not codelet.variants:
            raise RuntimeSystemError(f"codelet {codelet.name!r} has no variants")
        self.task_id: int = next(Task._ids)
        self.codelet = codelet
        self.operands = operands
        self.ctx: dict[str, object] = dict(ctx) if ctx else {}
        self.scalar_args = scalar_args
        self.priority = priority
        self.parent = parent
        self.name = name or f"{codelet.name}#{self.task_id}"
        self.state = TaskState.SUBMITTED
        # dependency bookkeeping
        self.n_pending_deps = 0
        self.dependents: list[Task] = []
        #: lower bound on the start time imposed by already-completed
        #: dependencies (their effects are virtual-future even when the
        #: engine has processed them eagerly)
        self.earliest_start = 0.0
        # timeline, filled by the engine
        self.submit_time: float = float("nan")
        self.ready_time: float = float("nan")
        self.start_time: float = float("nan")
        self.end_time: float = float("nan")
        self.chosen_variant: ImplVariant | None = None
        self.workers: tuple["ProcessingUnit", ...] = ()
        # fault-recovery bookkeeping, maintained by the engine
        #: per-engine submission index (stable fault-draw key; the global
        #: ``task_id`` counter differs between runs in one process)
        self.submit_seq: int = -1
        #: ids of the tasks this one was made to depend on at submission
        #: (recorded in the trace for the dependency invariant check)
        self.dep_ids: tuple[int, ...] = ()
        #: number of execution attempts that faulted
        self.n_faults: int = 0
        #: (variant name, anchor unit id) placements that already faulted;
        #: retries prefer placements not in this set.  Lazily allocated
        #: on the first fault (None means "none failed") so the
        #: no-fault hot path skips one set allocation per task.
        self.failed_on: set[tuple[str, int]] | None = None
        #: backend architecture of the first failed attempt (fallback
        #: accounting: recovery on a different arch counts as a fallback)
        self.first_fault_arch: str | None = None

    # -- dependency graph ---------------------------------------------------

    def add_dependency(self, dep: "Task") -> None:
        """Make this task wait for ``dep``.

        The engine schedules eagerly, so ``dep`` may already be DONE in
        bookkeeping terms while its completion still lies in the virtual
        future; in that case the dependency degenerates to a start-time
        lower bound instead of a pending-counter entry.
        """
        if dep.state is TaskState.DONE or dep.state is TaskState.SCHEDULED:
            self.earliest_start = max(self.earliest_start, dep.end_time)
            return
        dep.dependents.append(self)
        self.n_pending_deps += 1

    def dep_satisfied(self) -> bool:
        """Notify one dependency completed; True when the task turns ready."""
        if self.n_pending_deps <= 0:
            raise RuntimeSystemError(
                f"task {self.name}: dependency release underflow"
            )
        self.n_pending_deps -= 1
        return self.n_pending_deps == 0

    # -- introspection --------------------------------------------------------

    @property
    def handles(self) -> list[DataHandle]:
        return [op.handle for op in self.operands]

    def footprint(self) -> tuple:
        """Size signature used to bucket performance-model history.

        Like StarPU, the footprint hashes the operand sizes
        (log2-bucketed so near-identical sizes share history).  It also
        folds in the *integer* context properties — the declared PEPPHER
        context parameters (problem sizes/counts) that may influence
        cost without changing operand bytes (e.g. a particle count
        driving work over fixed-size buffers).  Float context values
        (coefficients, time points) are payload, not size, and are
        excluded so history is reused across them.  The context may
        override everything with an explicit ``footprint`` entry.
        """
        ctx = self.ctx
        if ctx:
            override = ctx.get("footprint")
            if override is not None:
                return (self.codelet.name, override)
            ctx_sizes = tuple(
                (key, _bucket(abs(value)))
                for key, value in sorted(ctx.items())
                if isinstance(value, int)
                and not isinstance(value, bool)
                and key != "ncores"
            )
        else:  # empty-context fast path (common in tight submit loops)
            ctx_sizes = ()
        sizes = tuple(op.handle.nbytes.bit_length() for op in self.operands)
        return (self.codelet.name, sizes, ctx_sizes)

    def run_kernel(self) -> None:
        """Execute the real computation of the chosen variant."""
        if self.chosen_variant is None:
            raise RuntimeSystemError(f"task {self.name}: no variant chosen")
        arrays = tuple(op.handle.array for op in self.operands)
        self.chosen_variant.fn(self.ctx, *arrays, *self.scalar_args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name} {self.state.value}>"


def _bucket(nbytes: int) -> int:
    """Log2 size bucket (0 for empty operands)."""
    return int(nbytes).bit_length()
