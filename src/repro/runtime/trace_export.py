"""Execution-trace export for visualisation.

StarPU generates Paje traces viewable in ViTE; the modern equivalent is
the Chrome trace-event format (load ``chrome://tracing`` or Perfetto).
This module exports an :class:`~repro.runtime.stats.ExecutionTrace` as:

- **Chrome trace-event JSON** — one row per worker plus one per DMA
  direction, tasks and transfers as duration events with variant /
  operand metadata, queue-depth and per-worker utilization counter
  tracks, and (for serving runs) one row per tenant with request
  lifecycle spans and shed/failure instants;
- **text Gantt** — a quick terminal rendering for examples and debugging.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import RuntimeSystemError
from repro.hw.description import HOST_NODE, Machine
from repro.runtime.stats import (
    AccessRecord,
    EvictionRecord,
    ExecutionTrace,
    FaultRecord,
    RequestRecord,
    TaskRecord,
    TransferRecord,
)

#: microseconds per virtual second in the exported timestamps
_US = 1e6

#: format version of the lossless trace JSON (bumped on schema changes)
TRACE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class UnitInfo:
    """One processing unit, as much as trace checking needs to know."""

    unit_id: int
    memory_node: int
    name: str


@dataclass(frozen=True)
class MachineInfo:
    """Minimal machine description embedded in saved traces.

    The invariant checker accepts either a live
    :class:`~repro.hw.description.Machine` or this summary, so
    ``python -m repro.check trace.json`` needs nothing but the file.
    """

    name: str
    units: tuple[UnitInfo, ...]
    n_memory_nodes: int
    #: per link node: True when h2d/d2h have independent DMA engines
    duplex: dict[int, bool]

    @classmethod
    def of(cls, machine: "Machine | MachineInfo") -> "MachineInfo":
        if isinstance(machine, MachineInfo):
            return machine
        return cls(
            name=machine.name,
            units=tuple(
                UnitInfo(
                    unit_id=u.unit_id,
                    memory_node=u.memory_node,
                    name=u.device.name,
                )
                for u in machine.units
            ),
            n_memory_nodes=machine.n_memory_nodes,
            duplex={
                node: bool(link.duplex) for node, link in machine.links.items()
            },
        )


# ---------------------------------------------------------------------------
# lossless trace JSON (the ``python -m repro.check`` input format)
# ---------------------------------------------------------------------------

_RECORD_TYPES = {
    "tasks": TaskRecord,
    "transfers": TransferRecord,
    "evictions": EvictionRecord,
    "faults": FaultRecord,
    "requests": RequestRecord,
    "accesses": AccessRecord,
}

_COUNTER_FIELDS = (
    "n_submitted",
    "n_tasks_aborted",
    "next_seq",
    "n_task_retries",
    "n_tasks_recovered",
    "n_tasks_lost",
    "n_fallbacks",
    "n_exploration_decisions",
)


def trace_to_dict(trace: ExecutionTrace, machine: Machine | MachineInfo) -> dict:
    """Lossless JSON-able form of the trace plus the machine summary."""
    info = MachineInfo.of(machine)
    doc: dict = {
        "format": "repro-trace",
        "version": TRACE_FORMAT_VERSION,
        "machine": {
            "name": info.name,
            "units": [asdict(u) for u in info.units],
            "n_memory_nodes": info.n_memory_nodes,
            "duplex": {str(k): v for k, v in info.duplex.items()},
        },
    }
    for key, _cls in _RECORD_TYPES.items():
        doc[key] = [rec.as_dict() for rec in getattr(trace, key)]
    for key in _COUNTER_FIELDS:
        doc[key] = getattr(trace, key)
    doc["blacklisted_workers"] = sorted(trace.blacklisted_workers)
    doc["lost_workers"] = sorted(trace.lost_workers)
    return doc


def trace_from_dict(doc: dict) -> tuple[ExecutionTrace, MachineInfo]:
    """Rebuild (trace, machine summary) from :func:`trace_to_dict` output."""
    if doc.get("format") != "repro-trace":
        raise RuntimeSystemError(
            "not a repro trace document (missing format marker); expected "
            "the output of save_trace_json, not a Chrome trace"
        )
    if doc.get("version") != TRACE_FORMAT_VERSION:
        raise RuntimeSystemError(
            f"trace format version {doc.get('version')!r} not supported "
            f"(this build reads version {TRACE_FORMAT_VERSION})"
        )
    m = doc["machine"]
    info = MachineInfo(
        name=m["name"],
        units=tuple(UnitInfo(**u) for u in m["units"]),
        n_memory_nodes=int(m["n_memory_nodes"]),
        duplex={int(k): bool(v) for k, v in m.get("duplex", {}).items()},
    )
    trace = ExecutionTrace()
    for key, cls in _RECORD_TYPES.items():
        names = set(cls._fields)
        for raw in doc.get(key, []):
            kwargs = {k: v for k, v in raw.items() if k in names}
            for tup in ("worker_ids", "reads", "writes", "deps", "related"):
                if tup in kwargs and kwargs[tup] is not None:
                    kwargs[tup] = tuple(kwargs[tup])
            getattr(trace, key).append(cls.make(**kwargs))
    for key in _COUNTER_FIELDS:
        setattr(trace, key, int(doc.get(key, 0)))
    trace.blacklisted_workers = set(doc.get("blacklisted_workers", []))
    trace.lost_workers = set(doc.get("lost_workers", []))
    return trace, info


def save_trace_json(
    trace: ExecutionTrace, machine: Machine | MachineInfo, path: str | Path
) -> Path:
    """Write the lossless trace JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_to_dict(trace, machine), indent=1))
    return path


def load_trace_json(path: str | Path) -> tuple[ExecutionTrace, MachineInfo]:
    """Read a lossless trace JSON back into (trace, machine summary)."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def canonical_chrome_json(trace: ExecutionTrace, machine: Machine) -> str:
    """Chrome trace JSON of the *canonicalized* trace, byte-stable.

    Two runs that made identical decisions produce identical strings
    even though task/handle ids come from process-global counters: the
    trace is renumbered (:meth:`ExecutionTrace.canonicalized`) and the
    JSON is dumped with sorted keys and no incidental whitespace.
    """
    doc = to_chrome_trace(trace.canonicalized(), machine)
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def to_chrome_trace(trace: ExecutionTrace, machine: Machine) -> dict:
    """Build the Chrome trace-event JSON object."""
    events: list[dict] = []
    # process/thread naming metadata
    for unit in machine.units:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": unit.unit_id,
                "args": {"name": f"{unit.device.name} #{unit.unit_id}"},
            }
        )
    dma_tid_base = len(machine.units)
    for i, node in enumerate(sorted(machine.links)):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": dma_tid_base + i,
                "args": {"name": f"DMA node {node}"},
            }
        )
    dma_tid = {node: dma_tid_base + i for i, node in enumerate(sorted(machine.links))}

    for rec in trace.tasks:
        for tid in rec.worker_ids:
            events.append(
                {
                    "name": rec.variant,
                    "cat": "task," + rec.arch,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": rec.start_time * _US,
                    "dur": rec.duration * _US,
                    "args": {
                        "codelet": rec.codelet,
                        "task": rec.name,
                        "energy_j": rec.energy_j,
                    },
                }
            )
    for rec in trace.transfers:
        link_node = rec.src_node if rec.dst_node == HOST_NODE else rec.dst_node
        direction = "d2h" if rec.is_d2h else "h2d"
        events.append(
            {
                "name": f"{direction}:{rec.handle_name}",
                "cat": "transfer",
                "ph": "X",
                "pid": 0,
                "tid": dma_tid.get(link_node, dma_tid_base),
                "ts": rec.start_time * _US,
                "dur": (rec.end_time - rec.start_time) * _US,
                "args": {"bytes": rec.nbytes, "src": rec.src_node, "dst": rec.dst_node},
            }
        )
    for ev in trace.evictions:
        events.append(
            {
                "name": f"evict:{ev.handle_name}",
                "cat": "eviction",
                "ph": "i",
                "s": "g",
                "pid": 0,
                "tid": dma_tid.get(ev.node, dma_tid_base),
                "ts": ev.time * _US,
                "args": {"bytes": ev.nbytes, "flushed": ev.flushed},
            }
        )
    # faults: instant events where they struck (worker row for execution
    # faults, DMA row for transfer corruption), plus flow arrows chaining
    # each task's failed attempts to the execution that finally succeeded
    final_start = {rec.task_id: rec for rec in trace.tasks}
    flow_open: dict[int, bool] = {}
    for fl in trace.faults:
        if fl.worker_ids:
            tid = fl.worker_ids[0]
        else:
            tid = dma_tid.get(fl.node, dma_tid_base) if fl.node else dma_tid_base
        events.append(
            {
                "name": f"fault:{fl.kind}",
                "cat": "fault",
                "ph": "i",
                "s": "t" if fl.worker_ids else "g",
                "pid": 0,
                "tid": tid,
                "ts": fl.time * _US,
                "args": {
                    "kind": fl.kind,
                    "task": fl.task_name,
                    "handle": fl.handle_name,
                    "attempt": fl.attempt,
                    "detail": fl.detail,
                },
            }
        )
        if fl.task_id is None or fl.task_id not in final_start:
            continue
        events.append(
            {
                "name": "retry",
                "cat": "fault",
                "ph": "t" if flow_open.get(fl.task_id) else "s",
                "pid": 0,
                "tid": tid,
                "ts": fl.time * _US,
                "id": fl.task_id,
            }
        )
        flow_open[fl.task_id] = True
    for task_id in flow_open:
        rec = final_start[task_id]
        events.append(
            {
                "name": "retry",
                "cat": "fault",
                "ph": "f",
                "bp": "e",
                "pid": 0,
                "tid": rec.worker_ids[0],
                "ts": rec.start_time * _US,
                "id": task_id,
            }
        )
    events.extend(_counter_events(trace, machine))
    if trace.requests:
        events.extend(_request_events(trace))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _counter_events(trace: ExecutionTrace, machine: Machine) -> list[dict]:
    """Queue-depth and per-worker utilization counter tracks.

    Derived from the task records: at every task boundary we emit the
    number of submitted-but-not-started (pending) and running tasks, the
    count of busy workers, and each worker's own 0/1 busy state.
    """
    deltas: dict[float, dict] = {}

    def at(t: float) -> dict:
        return deltas.setdefault(
            t, {"pending": 0, "running": 0, "busy": 0, "workers": {}}
        )

    for rec in trace.tasks:
        at(rec.submit_time)["pending"] += 1
        start = at(rec.start_time)
        start["pending"] -= 1
        start["running"] += 1
        end = at(rec.end_time)
        end["running"] -= 1
        for wid in rec.worker_ids:
            start["busy"] += 1
            start["workers"][wid] = start["workers"].get(wid, 0) + 1
            end["busy"] -= 1
            end["workers"][wid] = end["workers"].get(wid, 0) - 1

    events: list[dict] = []
    pending = running = busy = 0
    worker_busy = {u.unit_id: 0 for u in machine.units}
    for t in sorted(deltas):
        d = deltas[t]
        pending += d["pending"]
        running += d["running"]
        busy += d["busy"]
        events.append(
            {
                "name": "queue depth",
                "cat": "counter",
                "ph": "C",
                "pid": 0,
                "tid": 0,
                "ts": t * _US,
                "args": {"pending": pending, "running": running},
            }
        )
        events.append(
            {
                "name": "workers busy",
                "cat": "counter",
                "ph": "C",
                "pid": 0,
                "tid": 0,
                "ts": t * _US,
                "args": {"busy": busy},
            }
        )
        for wid, delta in d["workers"].items():
            worker_busy[wid] = worker_busy.get(wid, 0) + delta
            events.append(
                {
                    "name": f"util u{wid}",
                    "cat": "counter",
                    "ph": "C",
                    "pid": 0,
                    "tid": wid,
                    "ts": t * _US,
                    "args": {"busy": worker_busy[wid]},
                }
            )
    return events


#: serving rows live in their own trace process, below the engine's
_SERVE_PID = 1


def _request_events(trace: ExecutionTrace) -> list[dict]:
    """Per-tenant request rows for serving runs.

    Each tenant gets one thread row: completed requests are duration
    spans from arrival to completion (latency decomposition in args),
    shed and failed requests are instant markers.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _SERVE_PID,
            "tid": 0,
            "args": {"name": "serving"},
        }
    ]
    tenant_tid = {name: i for i, name in enumerate(trace.tenants())}
    for name, tid in tenant_tid.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _SERVE_PID,
                "tid": tid,
                "args": {"name": f"tenant {name}"},
            }
        )
    for rec in trace.requests:
        tid = tenant_tid[rec.tenant]
        if rec.completed:
            events.append(
                {
                    "name": rec.codelet,
                    "cat": "request",
                    "ph": "X",
                    "pid": _SERVE_PID,
                    "tid": tid,
                    "ts": rec.arrival_time * _US,
                    "dur": rec.latency * _US,
                    "args": {
                        "req": rec.req_id,
                        "batch": rec.batch_size,
                        "queue_wait_ms": rec.queue_wait * 1e3,
                        "pending_wait_ms": rec.pending_wait * 1e3,
                        "exec_ms": rec.exec_s * 1e3,
                        "transfer_ms": rec.transfer_s * 1e3,
                        "delayed": rec.delayed,
                    },
                }
            )
        else:
            kind = "shed" if rec.shed else "failed"
            events.append(
                {
                    "name": f"{kind}:{rec.codelet}",
                    "cat": "request",
                    "ph": "i",
                    "s": "t",
                    "pid": _SERVE_PID,
                    "tid": tid,
                    "ts": rec.arrival_time * _US,
                    "args": {"req": rec.req_id, "delayed": rec.delayed},
                }
            )
    return events


def save_chrome_trace(
    trace: ExecutionTrace, machine: Machine, path: str | Path
) -> Path:
    """Write the Chrome trace JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(trace, machine), indent=1))
    return path


def gantt_text(
    trace: ExecutionTrace, machine: Machine, width: int = 72
) -> str:
    """Quick terminal Gantt chart of the worker timelines."""
    span = trace.makespan
    if span <= 0:
        return "(empty trace)"
    lines = [f"Gantt over {span * 1e3:.3f} ms (each column ~ {span / width * 1e3:.3f} ms)"]
    for unit in machine.units:
        row = [" "] * width
        for rec in trace.tasks:
            if unit.unit_id not in rec.worker_ids:
                continue
            lo = int(rec.start_time / span * (width - 1))
            hi = max(int(rec.end_time / span * (width - 1)), lo)
            mark = {"cpu": "#", "openmp": "=", "cuda": "@", "opencl": "%"}.get(
                rec.arch, "*"
            )
            for i in range(lo, min(hi + 1, width)):
                row[i] = mark
        label = f"{unit.device.name[:14]:<14s} u{unit.unit_id}"
        lines.append(f"{label:<18s}|{''.join(row)}|")
    if trace.transfers:
        row = [" "] * width
        for rec in trace.transfers:
            lo = int(rec.start_time / span * (width - 1))
            hi = max(int(rec.end_time / span * (width - 1)), lo)
            mark = "v" if rec.is_d2h else "^"
            for i in range(lo, min(hi + 1, width)):
                row[i] = mark
        lines.append(f"{'PCIe DMA':<18s}|{''.join(row)}|")
    lines.append(
        "legend: # cpu, = openmp gang, @ cuda, % opencl, ^ h2d, v d2h"
    )
    return "\n".join(lines)
