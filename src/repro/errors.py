"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`PeppherError`,
so callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class PeppherError(Exception):
    """Base class for all errors raised by this package."""


class DescriptorError(PeppherError):
    """A descriptor (interface/implementation/platform/main) is malformed."""


class RepositoryError(PeppherError):
    """Lookup in a component repository failed."""


class CompositionError(PeppherError):
    """The composition tool could not compose the application."""


class ExpansionError(CompositionError):
    """Generic component expansion failed (unbound or mismatched type args)."""


class CodegenError(CompositionError):
    """Stub / header / makefile generation failed."""


class RuntimeSystemError(PeppherError):
    """The task runtime was used incorrectly or reached an invalid state."""


class DataConsistencyError(RuntimeSystemError):
    """A coherence invariant on a data handle was violated."""


class SchedulingError(RuntimeSystemError):
    """No worker can execute a task (e.g. no variant for any device)."""


class KernelExecutionError(RuntimeSystemError):
    """A component implementation raised while executing its kernel."""


class HardwareFault(PeppherError):
    """An injected hardware fault (see :mod:`repro.hw.faults`).

    Instances carry the virtual ``time`` at which the fault surfaced so
    the engine's recovery layer can charge the lost time and schedule
    the retry after it.
    """

    def __init__(self, message: str, time: float = 0.0) -> None:
        super().__init__(message)
        self.time = float(time)


class TransientKernelFault(HardwareFault):
    """A kernel execution attempt failed transiently (ECC error, launch
    failure, ...); retrying — possibly on another variant/worker — may
    succeed."""


class TransferFault(HardwareFault):
    """A data transfer was corrupted or aborted and its retransmissions
    were exhausted."""


class DeviceLostError(HardwareFault):
    """A device dropped off the bus permanently; its workers are dead
    and its memory content is gone."""


class UnrecoverableTaskError(RuntimeSystemError):
    """A task kept faulting after exhausting the recovery policy's
    retry budget."""


class ExecBackendError(RuntimeSystemError):
    """An execution backend (see :mod:`repro.exec`) was misused or
    failed structurally (pool broken, backend closed, ...)."""


class VariantNotPicklableError(ExecBackendError):
    """A codelet variant's kernel function cannot be shipped to a
    process pool: it is not importable/picklable (e.g. a lambda or a
    closure).  Raised at registration/submission time — naming the
    codelet and variant — instead of surfacing as an opaque
    ``PicklingError`` mid-run."""

    def __init__(self, codelet: str, variant: str, reason: str) -> None:
        super().__init__(
            f"codelet {codelet!r}, variant {variant!r}: kernel is not "
            f"usable with a process pool ({reason}); define the kernel "
            "as a module-level function so worker processes can import it"
        )
        self.codelet = codelet
        self.variant = variant
        self.reason = reason


class StaleModelError(RuntimeSystemError):
    """A persisted performance model does not match the current machine
    description or model-format version; it must be recalibrated, never
    silently reused (see :mod:`repro.tuning.store`)."""


class InvariantViolation(PeppherError):
    """A finished execution trace breaks a physical or causal invariant
    (see :mod:`repro.check.invariants`).

    Instances carry the name of the violated ``rule`` and the ids of the
    trace events involved (task ids, handle ids, transfer indices, ...)
    so a violation pinpoints the exact records to look at.
    """

    def __init__(
        self,
        rule: str,
        detail: str,
        events: tuple = (),
    ) -> None:
        ev = f" [events: {', '.join(map(str, events))}]" if events else ""
        super().__init__(f"{rule}: {detail}{ev}")
        self.rule = rule
        self.detail = detail
        self.events = tuple(events)


class ReplayDivergence(InvariantViolation):
    """A replayed run did not reproduce the recorded run bit-for-bit
    (see :mod:`repro.check.replay`)."""


class ContainerError(PeppherError):
    """Smart container misuse (e.g. access after shutdown)."""


class CDeclError(PeppherError):
    """A C function declaration could not be parsed (utility mode input)."""


class ConstraintError(PeppherError):
    """A selectability constraint is malformed or unsatisfiable."""
