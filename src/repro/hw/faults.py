"""Deterministic fault injection for the simulated hardware.

Real StarPU-class runtimes must survive transient kernel failures (ECC
errors, launch timeouts), PCIe transfer corruption, and outright device
loss.  This module decides *when* such faults happen; the recovery policy
in :mod:`repro.runtime.engine` decides what to do about them.  Keeping
the two separate means fault schedules are a property of the (simulated)
hardware while retries, fallbacks and blacklisting stay runtime policy —
the same split StarPU draws between drivers and scheduling.

Determinism: every draw is keyed by a stable event identity (the task's
per-engine submission index and attempt number, a per-engine transfer
sequence number, a unit id) and hashed together with the model seed into
a private :class:`numpy.random.Generator`.  Two runs of the same
workload under the same seed therefore see the *identical* fault
schedule, and a draw for one event never shifts the draws for another.
A model with all rates zero and no loss schedule never consumes
randomness at all, so enabling the subsystem with zero rates is
bit-identical to running without it.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

# stream tags keep the hashed draw streams for different fault classes
# disjoint even when their event keys collide
_KERNEL = 1
_KERNEL_WHEN = 2
_TRANSFER = 3
_LOSS = 4
_LOSS_WHEN = 5


class FaultModel:
    """Seeded, deterministic fault schedule for one simulated machine.

    Parameters
    ----------
    kernel_fault_rate:
        Probability that one kernel execution attempt fails transiently
        (the failure surfaces partway through the modeled execution, and
        the time spent until then is lost).
    transfer_fault_rate:
        Probability that one PCIe transfer attempt is corrupted or
        aborted; the wire time is spent and the copy must be resent.
    device_loss_rate:
        Probability, per execution attempt on a GPU, that the device is
        permanently lost during that attempt.
    device_loss_at:
        Explicit loss schedule: ``{unit_id: virtual_time_s}``.  The named
        units die at the given virtual times regardless of the rates —
        the deterministic way to script "GPU dies mid-run" scenarios.
    seed:
        Non-negative seed for the hashed draw streams.
    """

    def __init__(
        self,
        kernel_fault_rate: float = 0.0,
        transfer_fault_rate: float = 0.0,
        device_loss_rate: float = 0.0,
        device_loss_at: Mapping[int, float] | None = None,
        seed: int = 0,
    ) -> None:
        for name, rate in (
            ("kernel_fault_rate", kernel_fault_rate),
            ("transfer_fault_rate", transfer_fault_rate),
            ("device_loss_rate", device_loss_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.kernel_fault_rate = float(kernel_fault_rate)
        self.transfer_fault_rate = float(transfer_fault_rate)
        self.device_loss_rate = float(device_loss_rate)
        self.device_loss_at = dict(device_loss_at or {})
        for unit_id, t in self.device_loss_at.items():
            if t < 0:
                raise ValueError(
                    f"device_loss_at[{unit_id}] must be non-negative, got {t}"
                )
        self.seed = int(seed)

    def validate_for(self, machine, now: float = 0.0) -> None:
        """Check the scripted loss schedule against the attach context.

        Called by the engine when the model is attached.  A
        ``device_loss_at`` entry naming a unit the machine does not have,
        or a loss time already in the past of the engine clock, would
        silently never fire — surface both as clear errors instead.
        """
        known = {u.unit_id for u in machine.units}
        for unit_id, t in sorted(self.device_loss_at.items()):
            if unit_id not in known:
                raise ValueError(
                    f"device_loss_at names unit {unit_id}, but the machine "
                    f"{machine.name!r} only has units {sorted(known)}"
                )
            if t < now:
                raise ValueError(
                    f"device_loss_at[{unit_id}] = {t} is in the past of the "
                    f"clock at attach time (now = {now}); the loss would "
                    f"silently never fire"
                )

    @property
    def enabled(self) -> bool:
        """True when any fault can ever be injected."""
        return bool(
            self.kernel_fault_rate
            or self.transfer_fault_rate
            or self.device_loss_rate
            or self.device_loss_at
        )

    # -- hashed draw streams -------------------------------------------------

    def _uniform(self, stream: int, *key: int) -> float:
        """One uniform [0, 1) sample keyed by (seed, stream, *key)."""
        rng = np.random.default_rng((self.seed, stream) + key)
        return float(rng.random())

    # -- draws (called by the engine at commit points) -----------------------

    def kernel_fault(self, task_seq: int, attempt: int) -> float | None:
        """Does execution attempt ``attempt`` of task ``task_seq`` fault?

        Returns the fraction of the modeled execution time at which the
        failure surfaces (in [0.05, 0.95]), or ``None`` for no fault.
        """
        if self.kernel_fault_rate <= 0.0:
            return None
        if self._uniform(_KERNEL, task_seq, attempt) >= self.kernel_fault_rate:
            return None
        return 0.05 + 0.9 * self._uniform(_KERNEL_WHEN, task_seq, attempt)

    def transfer_fault(self, transfer_seq: int) -> bool:
        """Is the ``transfer_seq``-th committed transfer attempt corrupted?"""
        if self.transfer_fault_rate <= 0.0:
            return False
        return self._uniform(_TRANSFER, transfer_seq) < self.transfer_fault_rate

    def device_lost_at(self, unit_id: int) -> float | None:
        """Scripted loss time for ``unit_id`` (None = not scheduled)."""
        return self.device_loss_at.get(unit_id)

    def device_loss(
        self, unit_id: int, task_seq: int, attempt: int
    ) -> float | None:
        """Does the device die during this execution attempt?

        Returns the fraction of the attempt's execution time at which
        the device drops off the bus, or ``None``.
        """
        if self.device_loss_rate <= 0.0:
            return None
        if (
            self._uniform(_LOSS, unit_id, task_seq, attempt)
            >= self.device_loss_rate
        ):
            return None
        return 0.05 + 0.9 * self._uniform(_LOSS_WHEN, unit_id, task_seq, attempt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultModel(kernel={self.kernel_fault_rate}, "
            f"transfer={self.transfer_fault_rate}, "
            f"loss={self.device_loss_rate}, "
            f"loss_at={self.device_loss_at}, seed={self.seed})"
        )
