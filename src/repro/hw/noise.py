"""Deterministic execution-time jitter.

Real machines never produce identical timings twice; history-based
performance models (and the dmda scheduler built on them) only make sense
if measurements vary.  We perturb every modeled duration with lognormal
multiplicative noise drawn from a seeded generator, so experiments stay
bit-reproducible under a fixed seed.
"""

from __future__ import annotations

import numpy as np


class NoiseModel:
    """Multiplicative lognormal jitter around 1.0.

    Parameters
    ----------
    sigma:
        Standard deviation of the underlying normal distribution.  The
        default 3% matches typical run-to-run variation of GPU kernels.
    seed:
        Seed for the private :class:`numpy.random.Generator`.
    """

    def __init__(self, sigma: float = 0.03, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)
        self._rng = np.random.default_rng(seed)

    def perturb(self, duration: float) -> float:
        """Return ``duration`` scaled by one lognormal sample.

        The mean of the lognormal is corrected to 1.0 so that the noise is
        unbiased (``E[perturb(d)] == d``).  This is the single validation
        path for all noise models: negative durations are rejected here,
        and ``sigma == 0`` (including :class:`NullNoise`) short-circuits
        to the identity without consuming randomness.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if self.sigma == 0.0 or duration == 0.0:
            return duration
        factor = self._rng.lognormal(mean=-0.5 * self.sigma**2, sigma=self.sigma)
        return duration * factor


class NullNoise(NoiseModel):
    """No-op noise model for fully analytic experiments.

    A plain ``sigma=0`` alias of :class:`NoiseModel`: ``isinstance``
    checks and subclass overrides see one consistent class hierarchy and
    one ``perturb`` implementation.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(sigma=0.0, seed=seed)
