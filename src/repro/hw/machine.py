"""The simulated machine: execution units plus memory nodes.

Mirrors StarPU's machine abstraction: memory node 0 is host RAM, shared by
all CPU workers; each GPU contributes one additional memory node reached
through a PCIe link.  The runtime engine asks the machine which node a
worker computes from and what a transfer between two nodes costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RuntimeSystemError
from repro.hw.devices import DeviceKind, DeviceSpec
from repro.hw.interconnect import LinkSpec, pcie2_x16

HOST_NODE = 0


@dataclass(frozen=True)
class ProcessingUnit:
    """One schedulable execution unit (a CPU core or a whole GPU).

    Attributes
    ----------
    unit_id:
        Dense index, unique within the machine.
    device:
        The static device model.
    memory_node:
        Index of the memory node this unit computes from.
    link:
        The host link for GPU units (``None`` for CPU units, which sit on
        the host node).
    """

    unit_id: int
    device: DeviceSpec
    memory_node: int
    link: LinkSpec | None = None

    @property
    def is_gpu(self) -> bool:
        return self.device.kind is DeviceKind.GPU

    @property
    def is_cpu(self) -> bool:
        return self.device.kind is DeviceKind.CPU


@dataclass
class Machine:
    """A heterogeneous node: ``n`` CPU cores + zero or more GPUs.

    Build one with :func:`make_machine` or a preset from
    :mod:`repro.hw.presets`.
    """

    name: str
    units: list[ProcessingUnit] = field(default_factory=list)
    #: link used to reach each non-host memory node, indexed by node id
    links: dict[int, LinkSpec] = field(default_factory=dict)

    @property
    def n_memory_nodes(self) -> int:
        return 1 + len(self.links)

    @property
    def cpu_units(self) -> list[ProcessingUnit]:
        return [u for u in self.units if u.is_cpu]

    @property
    def gpu_units(self) -> list[ProcessingUnit]:
        return [u for u in self.units if u.is_gpu]

    def unit(self, unit_id: int) -> ProcessingUnit:
        try:
            u = self.units[unit_id]
        except IndexError:
            raise RuntimeSystemError(
                f"machine {self.name!r} has no unit {unit_id}"
            ) from None
        if u.unit_id != unit_id:  # defensive: units must be densely indexed
            raise RuntimeSystemError(
                f"unit table corrupt: slot {unit_id} holds unit {u.unit_id}"
            )
        return u

    def transfer_time(self, src_node: int, dst_node: int, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` from ``src_node`` to ``dst_node``.

        Device-to-device copies are modeled as staging through the host
        (the paper's PCIe 2.0 platforms have no peer-to-peer DMA).
        """
        self._check_node(src_node)
        self._check_node(dst_node)
        if src_node == dst_node or nbytes == 0:
            return 0.0
        if src_node == HOST_NODE:
            return self.links[dst_node].transfer_time(nbytes)
        if dst_node == HOST_NODE:
            return self.links[src_node].transfer_time(nbytes)
        # GPU -> host -> other GPU
        return self.links[src_node].transfer_time(nbytes) + self.links[
            dst_node
        ].transfer_time(nbytes)

    def node_capacity(self, node: int) -> int | None:
        """Memory capacity of a node in bytes (None = unlimited host RAM)."""
        self._check_node(node)
        if node == HOST_NODE:
            return None
        for unit in self.gpu_units:
            if unit.memory_node == node:
                return unit.device.memory_bytes
        return None

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.n_memory_nodes):
            raise RuntimeSystemError(
                f"memory node {node} out of range for machine {self.name!r} "
                f"with {self.n_memory_nodes} nodes"
            )

    def describe(self) -> str:
        """Multi-line human-readable summary (used by the CLI)."""
        lines = [f"machine {self.name!r}: {len(self.units)} units, "
                 f"{self.n_memory_nodes} memory nodes"]
        for u in self.units:
            where = f"node {u.memory_node}"
            lines.append(
                f"  unit {u.unit_id}: {u.device.name} ({u.device.kind.value}, "
                f"{where}, {u.device.peak_gflops:g} GF/s peak)"
            )
        return "\n".join(lines)


def make_machine(
    name: str,
    cpu: DeviceSpec,
    n_cpu_cores: int,
    gpus: list[DeviceSpec] | None = None,
    link: LinkSpec | None = None,
    reserve_core_per_gpu: bool = True,
) -> Machine:
    """Assemble a :class:`Machine`.

    Parameters
    ----------
    cpu:
        Device model for *one* CPU core; replicated ``n_cpu_cores`` times.
    gpus:
        One device model per GPU.  Each GPU gets its own memory node.
    link:
        Host link model shared by all GPUs (default PCIe 2.0 x16).
    reserve_core_per_gpu:
        StarPU dedicates one CPU core to drive each CUDA device; when
        true, one CPU worker is removed per GPU (so a 4-core + 1-GPU
        platform exposes 3 CPU workers + 1 GPU worker, and "all four
        CPUs" in the paper's hybrid plots means 3 compute cores + the
        driver core).  Set to ``False`` to expose every core.
    """
    gpus = gpus or []
    if n_cpu_cores < 1:
        raise ValueError("a machine needs at least one CPU core")
    n_workers = n_cpu_cores - (len(gpus) if reserve_core_per_gpu else 0)
    if n_workers < 0:
        raise ValueError(
            f"{len(gpus)} GPUs need {len(gpus)} driver cores but only "
            f"{n_cpu_cores} cores exist"
        )
    link = link or pcie2_x16()
    units: list[ProcessingUnit] = []
    for _ in range(n_workers):
        units.append(
            ProcessingUnit(unit_id=len(units), device=cpu, memory_node=HOST_NODE)
        )
    links: dict[int, LinkSpec] = {}
    for i, gpu in enumerate(gpus):
        node = 1 + i
        links[node] = link
        units.append(
            ProcessingUnit(
                unit_id=len(units), device=gpu, memory_node=node, link=link
            )
        )
    return Machine(name=name, units=units, links=links)
