"""Virtual time source for the discrete-event simulation.

All runtime activity (task execution, data transfers, scheduling overhead)
advances a :class:`VirtualClock` rather than wall-clock time, which makes
every experiment deterministic and lets us model devices we do not have
(the paper's NVIDIA C2050/C1060 GPUs).
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically non-decreasing virtual clock, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time."""
        if dt < 0.0:
            raise ValueError(f"cannot advance clock by negative dt: {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` (no-op if in the past)."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used when re-initialising the runtime)."""
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.9f})"
