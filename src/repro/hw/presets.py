"""Ready-made machines: the paper's platforms plus the device zoo.

Both of the paper's platforms use Intel Xeon E5520 CPUs; the main
platform carries a Tesla C2050 (Fermi, cached), the second a lower-end
Tesla C1060 (GT200, uncached).  The paper's hybrid experiments use four
CPU cores plus the GPU.  The zoo presets (:mod:`repro.hw.zoo`) extend
the catalogue across GPU generations and both model-fidelity tiers.

:func:`machine` is the blessed public entry point::

    from repro import machine
    m = machine("c2050")                      # paper platform, coarse
    m = machine("volta", fidelity="detailed")  # zoo preset, PPT-GPU tier
"""

from __future__ import annotations

from repro.hw.description import Machine, make_machine
from repro.hw.devices import tesla_c1060, tesla_c2050, xeon_e5520_core
from repro.hw.interconnect import pcie2_x16
from repro.hw.zoo import ZOO_PRESETS


def platform_c2050(n_cpu_cores: int = 4) -> Machine:
    """Xeon E5520 (``n_cpu_cores`` cores) + one Tesla C2050.

    The C2050 is Fermi-class: two DMA engines, so host<->device copies in
    both directions may overlap (``duplex=True``).
    """
    return make_machine(
        name="xeon-e5520+c2050",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[tesla_c2050()],
        link=pcie2_x16(duplex=True),
    )


def platform_c1060(n_cpu_cores: int = 4) -> Machine:
    """Xeon E5520 (``n_cpu_cores`` cores) + one Tesla C1060 (single DMA)."""
    return make_machine(
        name="xeon-e5520+c1060",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[tesla_c1060()],
        link=pcie2_x16(duplex=False),
    )


def platform_dual_c2050(n_cpu_cores: int = 6) -> Machine:
    """Two Tesla C2050s (multi-GPU systems are first-class in the
    PEPPHER component model; each GPU reserves one driver core)."""
    return make_machine(
        name="xeon-e5520+2xc2050",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[tesla_c2050(), tesla_c2050()],
        link=pcie2_x16(duplex=True),
    )


def cpu_only(n_cpu_cores: int = 4) -> Machine:
    """A homogeneous multicore machine (no accelerator)."""
    return make_machine(
        name=f"xeon-e5520-{n_cpu_cores}c",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[],
    )


#: the paper's platforms — coarse tier only (their traces are the
#: golden-digest oracle and must stay byte-identical)
PRESETS = {
    "c2050": platform_c2050,
    "c1060": platform_c1060,
    "2xc2050": platform_dual_c2050,
    "cpu": cpu_only,
}


def machine(name: str, *, fidelity: str = "coarse", **kwargs) -> Machine:
    """Build a preset machine by name — the blessed registry.

    Parameters
    ----------
    name:
        A paper platform (``c2050``/``c1060``/``2xc2050``/``cpu``) or a
        zoo generation (``fermi``/``kepler``/``pascal``/``volta``).
    fidelity:
        Device-model tier: ``"coarse"`` (default; the analytical
        roofline fit every existing preset uses) or ``"detailed"``
        (PPT-GPU-grade SM/memory/latency model; zoo presets only).
    **kwargs:
        Forwarded to the preset factory (e.g. ``n_cpu_cores=8``).

    Raises
    ------
    KeyError
        Unknown preset name.
    ValueError
        ``fidelity="detailed"`` requested for a paper platform (they
        are pinned coarse so golden traces stay byte-identical).
    """
    if fidelity not in ("coarse", "detailed"):
        raise ValueError(
            f"unknown fidelity {fidelity!r}; use 'coarse' or 'detailed'"
        )
    if name in PRESETS:
        if fidelity != "coarse":
            raise ValueError(
                f"paper platform {name!r} exists only at the coarse tier; "
                f"use a zoo preset ({sorted(ZOO_PRESETS)}) for "
                f"fidelity='detailed'"
            )
        return PRESETS[name](**kwargs)
    if name in ZOO_PRESETS:
        return ZOO_PRESETS[name](fidelity=fidelity, **kwargs)
    raise KeyError(
        f"unknown platform preset {name!r}; "
        f"known: {sorted(PRESETS) + sorted(ZOO_PRESETS)}"
    )


def by_name(name: str, **kwargs) -> Machine:
    """Look up a coarse-tier preset by short name.

    Predates :func:`machine`, which supersedes it; kept as a thin alias
    so existing call sites and serialized configs stay valid.
    """
    return machine(name, **kwargs)
