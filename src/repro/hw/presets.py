"""Ready-made machines matching the paper's two evaluation platforms.

Both platforms use Intel Xeon E5520 CPUs; the main platform carries a
Tesla C2050 (Fermi, cached), the second a lower-end Tesla C1060 (GT200,
uncached).  The paper's hybrid experiments use four CPU cores plus the GPU.
"""

from __future__ import annotations

from repro.hw.devices import tesla_c1060, tesla_c2050, xeon_e5520_core
from repro.hw.interconnect import pcie2_x16
from repro.hw.machine import Machine, make_machine


def platform_c2050(n_cpu_cores: int = 4) -> Machine:
    """Xeon E5520 (``n_cpu_cores`` cores) + one Tesla C2050.

    The C2050 is Fermi-class: two DMA engines, so host<->device copies in
    both directions may overlap (``duplex=True``).
    """
    return make_machine(
        name="xeon-e5520+c2050",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[tesla_c2050()],
        link=pcie2_x16(duplex=True),
    )


def platform_c1060(n_cpu_cores: int = 4) -> Machine:
    """Xeon E5520 (``n_cpu_cores`` cores) + one Tesla C1060 (single DMA)."""
    return make_machine(
        name="xeon-e5520+c1060",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[tesla_c1060()],
        link=pcie2_x16(duplex=False),
    )


def platform_dual_c2050(n_cpu_cores: int = 6) -> Machine:
    """Two Tesla C2050s (multi-GPU systems are first-class in the
    PEPPHER component model; each GPU reserves one driver core)."""
    return make_machine(
        name="xeon-e5520+2xc2050",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[tesla_c2050(), tesla_c2050()],
        link=pcie2_x16(duplex=True),
    )


def cpu_only(n_cpu_cores: int = 4) -> Machine:
    """A homogeneous multicore machine (no accelerator)."""
    return make_machine(
        name=f"xeon-e5520-{n_cpu_cores}c",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[],
    )


PRESETS = {
    "c2050": platform_c2050,
    "c1060": platform_c1060,
    "2xc2050": platform_dual_c2050,
    "cpu": cpu_only,
}


def by_name(name: str, **kwargs) -> Machine:
    """Look up a preset machine by short name (``c2050``/``c1060``/``cpu``)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform preset {name!r}; known: {sorted(PRESETS)}"
        ) from None
    return factory(**kwargs)
