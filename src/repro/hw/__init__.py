"""Simulated heterogeneous hardware substrate.

Substitutes for the paper's physical testbed (Xeon E5520 + Tesla
C2050/C1060): analytical device models, a PCIe transfer model, a virtual
clock and deterministic timing noise.  See DESIGN.md section 2 for why the
substitution preserves the behaviour the paper measures.

The blessed machine-description API is :func:`machine` (preset registry
over the paper platforms and the device zoo, at either model-fidelity
tier) plus :meth:`MachineDescription.describe` for structured
introspection; see ``docs/API.md`` and ``docs/DEVICES.md``.
"""

from repro.hw.clock import VirtualClock
from repro.hw.faults import FaultModel
from repro.hw.devices import (
    AccessPattern,
    DeviceKind,
    DeviceSpec,
    tesla_c1060,
    tesla_c2050,
    xeon_e5520_core,
)
from repro.hw.interconnect import LinkSpec, pcie2_x16, pcie3_x16
from repro.hw.description import (
    HOST_NODE,
    Machine,
    MachineDescription,
    ProcessingUnit,
    make_machine,
)
from repro.hw.model import (
    CoarseDeviceModel,
    DetailedDeviceModel,
    DeviceModel,
    KernelProfile,
    LatencyTable,
    MemoryHierarchy,
    SMConfig,
)
from repro.hw.noise import NoiseModel, NullNoise
from repro.hw.presets import (
    by_name,
    cpu_only,
    machine,
    platform_c1060,
    platform_c2050,
    platform_dual_c2050,
)
from repro.hw.zoo import (
    ZOO_DEVICES,
    ZOO_PRESETS,
    fermi_c2050,
    kepler_k40,
    pascal_p100,
    volta_v100,
)

__all__ = [
    "AccessPattern",
    "CoarseDeviceModel",
    "DetailedDeviceModel",
    "DeviceKind",
    "DeviceModel",
    "DeviceSpec",
    "FaultModel",
    "HOST_NODE",
    "KernelProfile",
    "LatencyTable",
    "LinkSpec",
    "Machine",
    "MachineDescription",
    "MemoryHierarchy",
    "NoiseModel",
    "NullNoise",
    "ProcessingUnit",
    "SMConfig",
    "VirtualClock",
    "ZOO_DEVICES",
    "ZOO_PRESETS",
    "by_name",
    "cpu_only",
    "fermi_c2050",
    "kepler_k40",
    "machine",
    "make_machine",
    "pascal_p100",
    "pcie2_x16",
    "pcie3_x16",
    "platform_c1060",
    "platform_c2050",
    "platform_dual_c2050",
    "tesla_c1060",
    "tesla_c2050",
    "volta_v100",
    "xeon_e5520_core",
]
