"""Simulated heterogeneous hardware substrate.

Substitutes for the paper's physical testbed (Xeon E5520 + Tesla
C2050/C1060): analytical device models, a PCIe transfer model, a virtual
clock and deterministic timing noise.  See DESIGN.md section 2 for why the
substitution preserves the behaviour the paper measures.
"""

from repro.hw.clock import VirtualClock
from repro.hw.faults import FaultModel
from repro.hw.devices import (
    AccessPattern,
    DeviceKind,
    DeviceSpec,
    tesla_c1060,
    tesla_c2050,
    xeon_e5520_core,
)
from repro.hw.interconnect import LinkSpec, pcie2_x16
from repro.hw.machine import HOST_NODE, Machine, ProcessingUnit, make_machine
from repro.hw.noise import NoiseModel, NullNoise
from repro.hw.presets import (
    by_name,
    cpu_only,
    platform_c1060,
    platform_c2050,
    platform_dual_c2050,
)

__all__ = [
    "AccessPattern",
    "DeviceKind",
    "DeviceSpec",
    "FaultModel",
    "HOST_NODE",
    "LinkSpec",
    "Machine",
    "NoiseModel",
    "NullNoise",
    "ProcessingUnit",
    "VirtualClock",
    "by_name",
    "cpu_only",
    "make_machine",
    "pcie2_x16",
    "platform_c1060",
    "platform_c2050",
    "platform_dual_c2050",
    "tesla_c1060",
    "tesla_c2050",
    "xeon_e5520_core",
]
