"""The machine description: execution units plus memory nodes.

Mirrors StarPU's machine abstraction: memory node 0 is host RAM, shared by
all CPU workers; each GPU contributes one additional memory node reached
through a PCIe link.  The runtime engine asks the machine which node a
worker computes from and what a transfer between two nodes costs.

The blessed public spellings (see ``docs/API.md``) are::

    from repro import machine            # or: from repro.hw import machine
    m = machine("volta")                 # preset registry, either tier
    m = machine("volta", fidelity="detailed")
    m.describe()                         # structured (JSON-able) view

plus :func:`make_machine` for assembling custom machines from device
specs.  Constructing a :class:`MachineDescription` with *positional*
arguments is deprecated (one-shot :class:`DeprecationWarning`, escalated
to an error under pytest); use the registry, the factory, or keyword
arguments.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.errors import RuntimeSystemError
from repro.hw.devices import DeviceKind, DeviceSpec
from repro.hw.interconnect import LinkSpec, pcie2_x16

HOST_NODE = 0

_positional_warned = False


def warn_machine_positional(stacklevel: int = 3) -> None:
    """Emit the positional-construction `DeprecationWarning` at most once.

    Mirrors :func:`repro.runtime.schedulers.warn_scheduler_instance`:
    module-level one-shot flag, message anchored for the pyproject
    ``filterwarnings`` escalation, attributed to the caller via
    ``stacklevel``.
    """
    global _positional_warned
    if _positional_warned:
        return
    _positional_warned = True
    warnings.warn(
        "positional construction of MachineDescription is deprecated; "
        "use repro.hw.machine(name) for presets, make_machine(...) for "
        "custom machines, or keyword arguments "
        "(MachineDescription(name=..., units=..., links=...))",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_positional_warning() -> None:
    """Re-arm the one-shot warning (test helper)."""
    global _positional_warned
    _positional_warned = False


@dataclass(frozen=True)
class ProcessingUnit:
    """One schedulable execution unit (a CPU core or a whole GPU).

    Attributes
    ----------
    unit_id:
        Dense index, unique within the machine.
    device:
        The static device model.
    memory_node:
        Index of the memory node this unit computes from.
    link:
        The host link for GPU units (``None`` for CPU units, which sit on
        the host node).
    """

    unit_id: int
    device: DeviceSpec
    memory_node: int
    link: LinkSpec | None = None

    @property
    def is_gpu(self) -> bool:
        return self.device.kind is DeviceKind.GPU

    @property
    def is_cpu(self) -> bool:
        return self.device.kind is DeviceKind.CPU


@dataclass
class MachineDescription:
    """A heterogeneous node: ``n`` CPU cores + zero or more GPUs.

    Build one with :func:`repro.hw.presets.machine` (preset registry),
    :func:`make_machine` (custom assembly), or — for advanced callers —
    keyword construction.  Positional construction is deprecated.
    """

    name: str
    units: list[ProcessingUnit] = field(default_factory=list)
    #: link used to reach each non-host memory node, indexed by node id
    links: dict[int, LinkSpec] = field(default_factory=dict)

    def __init__(
        self,
        *args,
        name: str | None = None,
        units: list[ProcessingUnit] | None = None,
        links: dict[int, LinkSpec] | None = None,
    ) -> None:
        if args:
            warn_machine_positional()
            if len(args) > 3:
                raise TypeError(
                    f"MachineDescription takes at most 3 arguments "
                    f"(name, units, links), got {len(args)}"
                )
            values = {"name": name, "units": units, "links": links}
            for value, fld in zip(args, ("name", "units", "links")):
                if values[fld] is not None:
                    raise TypeError(
                        f"MachineDescription got multiple values for {fld!r}"
                    )
                values[fld] = value
            name, units, links = values["name"], values["units"], values["links"]
        if name is None:
            raise TypeError("MachineDescription requires a name")
        self.name = name
        self.units = [] if units is None else units
        self.links = {} if links is None else links

    @property
    def n_memory_nodes(self) -> int:
        return 1 + len(self.links)

    @property
    def cpu_units(self) -> list[ProcessingUnit]:
        return [u for u in self.units if u.is_cpu]

    @property
    def gpu_units(self) -> list[ProcessingUnit]:
        return [u for u in self.units if u.is_gpu]

    @property
    def fidelity(self) -> str:
        """Cost-model tier of the machine: ``"detailed"`` when any unit
        carries a detailed device model, else ``"coarse"``."""
        if any(u.device.fidelity == "detailed" for u in self.units):
            return "detailed"
        return "coarse"

    def unit(self, unit_id: int) -> ProcessingUnit:
        try:
            u = self.units[unit_id]
        except IndexError:
            raise RuntimeSystemError(
                f"machine {self.name!r} has no unit {unit_id}"
            ) from None
        if u.unit_id != unit_id:  # defensive: units must be densely indexed
            raise RuntimeSystemError(
                f"unit table corrupt: slot {unit_id} holds unit {u.unit_id}"
            )
        return u

    def transfer_time(self, src_node: int, dst_node: int, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` from ``src_node`` to ``dst_node``.

        Device-to-device copies are modeled as staging through the host
        (the paper's PCIe 2.0 platforms have no peer-to-peer DMA).
        """
        self._check_node(src_node)
        self._check_node(dst_node)
        if src_node == dst_node or nbytes == 0:
            return 0.0
        if src_node == HOST_NODE:
            return self.links[dst_node].transfer_time(nbytes)
        if dst_node == HOST_NODE:
            return self.links[src_node].transfer_time(nbytes)
        # GPU -> host -> other GPU
        return self.links[src_node].transfer_time(nbytes) + self.links[
            dst_node
        ].transfer_time(nbytes)

    def node_capacity(self, node: int) -> int | None:
        """Memory capacity of a node in bytes (None = unlimited host RAM)."""
        self._check_node(node)
        if node == HOST_NODE:
            return None
        for unit in self.gpu_units:
            if unit.memory_node == node:
                return unit.device.memory_bytes
        return None

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.n_memory_nodes):
            raise RuntimeSystemError(
                f"memory node {node} out of range for machine {self.name!r} "
                f"with {self.n_memory_nodes} nodes"
            )

    def describe(self) -> dict:
        """Structured (JSON-able) view of the machine description.

        This is the blessed introspection surface: one dict covering the
        name, fidelity tier, every unit's device figures (including the
        attached device model's knobs for detailed-tier devices) and
        the link table — the same facts the tuning store fingerprints.
        Use :meth:`summary` for the human-readable text form.
        """
        return {
            "name": self.name,
            "fidelity": self.fidelity,
            "n_memory_nodes": self.n_memory_nodes,
            "units": [
                {
                    "unit_id": u.unit_id,
                    "memory_node": u.memory_node,
                    "device": {
                        "name": u.device.name,
                        "kind": u.device.kind.value,
                        "fidelity": u.device.fidelity,
                        "peak_gflops": u.device.peak_gflops,
                        "mem_bandwidth_gbs": u.device.mem_bandwidth_gbs,
                        "launch_overhead_s": u.device.launch_overhead_s,
                        "cores": u.device.cores,
                        "busy_watts": u.device.busy_watts,
                        "memory_bytes": u.device.memory_bytes,
                        **(
                            {"model": u.device.model.describe()}
                            if u.device.model is not None
                            else {}
                        ),
                    },
                }
                for u in self.units
            ],
            "links": {
                node: {
                    "bandwidth_gbs": link.bandwidth_gbs,
                    "latency_s": link.latency_s,
                    "duplex": link.duplex,
                }
                for node, link in sorted(self.links.items())
            },
        }

    def summary(self) -> str:
        """Multi-line human-readable summary (used by the CLI)."""
        lines = [
            f"machine {self.name!r} [{self.fidelity}]: {len(self.units)} "
            f"units, {self.n_memory_nodes} memory nodes"
        ]
        for u in self.units:
            where = f"node {u.memory_node}"
            lines.append(
                f"  unit {u.unit_id}: {u.device.name} ({u.device.kind.value}, "
                f"{where}, {u.device.peak_gflops:g} GF/s peak)"
            )
        return "\n".join(lines)


#: compatibility alias — the class was called ``Machine`` before the
#: machine-description API was blessed; internal code and annotations
#: keep working under the short name
Machine = MachineDescription


def make_machine(
    name: str,
    cpu: DeviceSpec,
    n_cpu_cores: int,
    gpus: list[DeviceSpec] | None = None,
    link: LinkSpec | None = None,
    reserve_core_per_gpu: bool = True,
) -> MachineDescription:
    """Assemble a :class:`MachineDescription`.

    Parameters
    ----------
    cpu:
        Device model for *one* CPU core; replicated ``n_cpu_cores`` times.
    gpus:
        One device model per GPU.  Each GPU gets its own memory node.
    link:
        Host link model shared by all GPUs (default PCIe 2.0 x16).
    reserve_core_per_gpu:
        StarPU dedicates one CPU core to drive each CUDA device; when
        true, one CPU worker is removed per GPU (so a 4-core + 1-GPU
        platform exposes 3 CPU workers + 1 GPU worker, and "all four
        CPUs" in the paper's hybrid plots means 3 compute cores + the
        driver core).  Set to ``False`` to expose every core.
    """
    gpus = gpus or []
    if n_cpu_cores < 1:
        raise ValueError("a machine needs at least one CPU core")
    n_workers = n_cpu_cores - (len(gpus) if reserve_core_per_gpu else 0)
    if n_workers < 0:
        raise ValueError(
            f"{len(gpus)} GPUs need {len(gpus)} driver cores but only "
            f"{n_cpu_cores} cores exist"
        )
    link = link or pcie2_x16()
    units: list[ProcessingUnit] = []
    for _ in range(n_workers):
        units.append(
            ProcessingUnit(unit_id=len(units), device=cpu, memory_node=HOST_NODE)
        )
    links: dict[int, LinkSpec] = {}
    for i, gpu in enumerate(gpus):
        node = 1 + i
        links[node] = link
        units.append(
            ProcessingUnit(
                unit_id=len(units), device=gpu, memory_node=node, link=link
            )
        )
    return MachineDescription(name=name, units=units, links=links)
