"""The device zoo: machine presets spanning four GPU generations.

The paper's two platforms are both Fermi-era; the zoo extends the
catalogue with one representative device per later generation so that
model-fidelity questions (does a finer device model change what the
scheduler picks?) can be asked across genuinely different hardware:

========  =============  =====================================
preset    GPU            what distinguishes the generation
========  =============  =====================================
fermi     Tesla C2050    32-core SMs, tiny register file, long
                         global-memory latency, PCIe 2.0
kepler    Tesla K40      192-core SMs (wide issue, hard to
                         fill), big register file, PCIe 3.0
pascal    Tesla P100     HBM2 (~5x Fermi's bandwidth), 64-core
                         SMs at high clocks
volta     Tesla V100     most SMs, largest caches, shortest
                         instruction latencies
========  =============  =====================================

Every preset exists at both fidelity tiers.  ``fidelity="coarse"``
yields plain headline-figure :class:`~repro.hw.devices.DeviceSpec` specs
(``model=None`` — priced exactly like the paper-era presets);
``fidelity="detailed"`` attaches a
:class:`~repro.hw.model.DetailedDeviceModel` whose SM, memory-hierarchy
and latency knobs are taken from the generation's published
microarchitecture.  Core counts and clocks are chosen so the detailed
tier's issue ceiling reproduces each device's headline peak:
``n_sms * cores_per_sm * 2 * clock_ghz`` GFLOP/s.

Access through the blessed registry::

    from repro import machine
    m = machine("pascal", fidelity="detailed")
"""

from __future__ import annotations

from repro.hw.devices import DeviceKind, DeviceSpec, xeon_e5520_core
from repro.hw.description import Machine, make_machine
from repro.hw.interconnect import pcie2_x16, pcie3_x16
from repro.hw.model import DetailedDeviceModel, LatencyTable, MemoryHierarchy, SMConfig


def _check_fidelity(fidelity: str) -> None:
    if fidelity not in ("coarse", "detailed"):
        raise ValueError(
            f"unknown fidelity {fidelity!r}; use 'coarse' or 'detailed'"
        )


# ---------------------------------------------------------------------------
# Host CPUs.  The Fermi/Kepler hosts keep the paper's Nehalem; the
# Pascal/Volta hosts get a Broadwell-era core (AVX2: 8 lanes x FMA).
# ---------------------------------------------------------------------------

def xeon_e5_2690v4_core() -> DeviceSpec:
    """One core of the Intel Xeon E5-2690 v4 (2.6 GHz Broadwell).

    Peak SP per core: 8 (AVX2 width) x 2 (FMA) x 2 (ports) x 2.6 GHz
    ~= 83 GFLOP/s; per-core sustainable bandwidth roughly 12 GB/s.
    """
    return DeviceSpec(
        name="Xeon E5-2690v4 core",
        kind=DeviceKind.CPU,
        peak_gflops=83.0,
        mem_bandwidth_gbs=12.0,
        launch_overhead_s=2e-6,
        regular_efficiency=0.55,
        irregular_efficiency=0.30,
        branchy_efficiency=0.45,
        has_cache=True,
        cores=1,
        busy_watts=10.0,  # one core's share of the 135 W socket
    )


# ---------------------------------------------------------------------------
# GPU generations.  One factory per device; the detailed model's knobs
# follow the generation's occupancy-calculator limits and the PPT-GPU
# observation that instruction latency depends only on (class, family).
# ---------------------------------------------------------------------------

def fermi_c2050(fidelity: str = "coarse") -> DeviceSpec:
    """Tesla C2050 (Fermi): 14 SMs x 32 cores @ 1.15 GHz, 144 GB/s."""
    _check_fidelity(fidelity)
    model = None
    if fidelity == "detailed":
        model = DetailedDeviceModel(
            sm=SMConfig(
                n_sms=14,
                cores_per_sm=32,
                clock_ghz=1.15,
                max_threads_per_sm=1536,
                max_blocks_per_sm=8,
                registers_per_sm=32 * 1024,
                shared_mem_per_sm=48 * 1024,
            ),
            memory=MemoryHierarchy(
                l1_hit_rate=0.25,
                l2_hit_rate=0.50,
                l1_bandwidth_gbs=1030.0,
                l2_bandwidth_gbs=230.0,
                dram_bandwidth_gbs=144.0,
            ),
            latency=LatencyTable(
                fma=18.0,
                alu=18.0,
                sfu=30.0,
                ldst_shared=30.0,
                ldst_global=600.0,
                branch=20.0,
            ),
        )
    return DeviceSpec(
        name="Tesla C2050",
        kind=DeviceKind.GPU,
        peak_gflops=1030.0,
        mem_bandwidth_gbs=144.0,
        launch_overhead_s=7e-6,
        regular_efficiency=0.60,
        irregular_efficiency=0.28,
        branchy_efficiency=0.15,
        has_cache=True,
        cores=448,
        busy_watts=238.0,
        memory_bytes=3 * 1024**3,
        model=model,
    )


def kepler_k40(fidelity: str = "coarse") -> DeviceSpec:
    """Tesla K40 (Kepler): 15 SMXs x 192 cores @ 745 MHz, 288 GB/s.

    Kepler's defining quirk is the 192-core SMX: issue width 6
    warps/cycle, which real kernels rarely fill — the detailed tier
    shows it, the coarse efficiency scalar merely asserts it.
    """
    _check_fidelity(fidelity)
    model = None
    if fidelity == "detailed":
        model = DetailedDeviceModel(
            sm=SMConfig(
                n_sms=15,
                cores_per_sm=192,
                clock_ghz=0.745,
                max_threads_per_sm=2048,
                max_blocks_per_sm=16,
                registers_per_sm=64 * 1024,
                shared_mem_per_sm=48 * 1024,
            ),
            memory=MemoryHierarchy(
                l1_hit_rate=0.20,  # Kepler L1 is opt-in for globals
                l2_hit_rate=0.55,
                l1_bandwidth_gbs=2000.0,
                l2_bandwidth_gbs=500.0,
                dram_bandwidth_gbs=288.0,
            ),
            latency=LatencyTable(
                fma=9.0,
                alu=9.0,
                sfu=18.0,
                ldst_shared=26.0,
                ldst_global=300.0,
                branch=12.0,
            ),
        )
    return DeviceSpec(
        name="Tesla K40",
        kind=DeviceKind.GPU,
        peak_gflops=4290.0,
        mem_bandwidth_gbs=288.0,
        launch_overhead_s=6e-6,
        regular_efficiency=0.45,  # wide SMX issue is hard to sustain
        irregular_efficiency=0.22,
        branchy_efficiency=0.14,
        has_cache=True,
        cores=2880,
        busy_watts=235.0,
        memory_bytes=12 * 1024**3,
        model=model,
    )


def pascal_p100(fidelity: str = "coarse") -> DeviceSpec:
    """Tesla P100 (Pascal): 56 SMs x 64 cores @ 1.3 GHz, 732 GB/s HBM2."""
    _check_fidelity(fidelity)
    model = None
    if fidelity == "detailed":
        model = DetailedDeviceModel(
            sm=SMConfig(
                n_sms=56,
                cores_per_sm=64,
                clock_ghz=1.30,
                max_threads_per_sm=2048,
                max_blocks_per_sm=32,
                registers_per_sm=64 * 1024,
                shared_mem_per_sm=64 * 1024,
            ),
            memory=MemoryHierarchy(
                l1_hit_rate=0.30,
                l2_hit_rate=0.55,
                l1_bandwidth_gbs=4000.0,
                l2_bandwidth_gbs=1600.0,
                dram_bandwidth_gbs=732.0,
            ),
            latency=LatencyTable(
                fma=6.0,
                alu=6.0,
                sfu=14.0,
                ldst_shared=24.0,
                ldst_global=230.0,
                branch=8.0,
            ),
        )
    return DeviceSpec(
        name="Tesla P100",
        kind=DeviceKind.GPU,
        peak_gflops=9300.0,
        mem_bandwidth_gbs=732.0,
        launch_overhead_s=5e-6,
        regular_efficiency=0.60,
        irregular_efficiency=0.30,
        branchy_efficiency=0.18,
        has_cache=True,
        cores=3584,
        busy_watts=300.0,
        memory_bytes=16 * 1024**3,
        model=model,
    )


def volta_v100(fidelity: str = "coarse") -> DeviceSpec:
    """Tesla V100 (Volta): 80 SMs x 64 cores @ 1.38 GHz, 900 GB/s HBM2."""
    _check_fidelity(fidelity)
    model = None
    if fidelity == "detailed":
        model = DetailedDeviceModel(
            sm=SMConfig(
                n_sms=80,
                cores_per_sm=64,
                clock_ghz=1.38,
                max_threads_per_sm=2048,
                max_blocks_per_sm=32,
                registers_per_sm=64 * 1024,
                shared_mem_per_sm=96 * 1024,
            ),
            memory=MemoryHierarchy(
                l1_hit_rate=0.40,  # unified 128 KB L1/smem, write-through
                l2_hit_rate=0.60,
                l1_bandwidth_gbs=12000.0,
                l2_bandwidth_gbs=2500.0,
                dram_bandwidth_gbs=900.0,
            ),
            latency=LatencyTable(
                fma=4.0,
                alu=4.0,
                sfu=12.0,
                ldst_shared=19.0,
                ldst_global=220.0,
                branch=6.0,
            ),
        )
    return DeviceSpec(
        name="Tesla V100",
        kind=DeviceKind.GPU,
        peak_gflops=14130.0,
        mem_bandwidth_gbs=900.0,
        launch_overhead_s=4e-6,
        regular_efficiency=0.65,
        irregular_efficiency=0.35,
        branchy_efficiency=0.22,
        has_cache=True,
        cores=5120,
        busy_watts=300.0,
        memory_bytes=16 * 1024**3,
        model=model,
    )


# ---------------------------------------------------------------------------
# Machine presets: host + one GPU per generation.
# ---------------------------------------------------------------------------

def machine_fermi(fidelity: str = "coarse", n_cpu_cores: int = 4) -> Machine:
    """Xeon E5520 + Tesla C2050 over PCIe 2.0 (the paper's platform)."""
    return make_machine(
        name="zoo-fermi",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[fermi_c2050(fidelity)],
        link=pcie2_x16(duplex=True),
    )


def machine_kepler(fidelity: str = "coarse", n_cpu_cores: int = 4) -> Machine:
    """Xeon E5520 + Tesla K40 over PCIe 3.0."""
    return make_machine(
        name="zoo-kepler",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[kepler_k40(fidelity)],
        link=pcie3_x16(),
    )


def machine_pascal(fidelity: str = "coarse", n_cpu_cores: int = 4) -> Machine:
    """Xeon E5-2690v4 + Tesla P100 over PCIe 3.0."""
    return make_machine(
        name="zoo-pascal",
        cpu=xeon_e5_2690v4_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[pascal_p100(fidelity)],
        link=pcie3_x16(),
    )


def machine_volta(fidelity: str = "coarse", n_cpu_cores: int = 4) -> Machine:
    """Xeon E5-2690v4 + Tesla V100 over PCIe 3.0."""
    return make_machine(
        name="zoo-volta",
        cpu=xeon_e5_2690v4_core(),
        n_cpu_cores=n_cpu_cores,
        gpus=[volta_v100(fidelity)],
        link=pcie3_x16(),
    )


#: zoo registry consumed by :func:`repro.hw.presets.machine`; every
#: factory takes ``(fidelity=..., n_cpu_cores=...)``
ZOO_PRESETS = {
    "fermi": machine_fermi,
    "kepler": machine_kepler,
    "pascal": machine_pascal,
    "volta": machine_volta,
}

#: device factories by generation, for tests and custom machines
ZOO_DEVICES = {
    "fermi": fermi_c2050,
    "kepler": kepler_k40,
    "pascal": pascal_p100,
    "volta": volta_v100,
}
