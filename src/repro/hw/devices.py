"""Analytical device models for the simulated heterogeneous machine.

The paper evaluates on two platforms, both with Intel Xeon E5520 CPUs, one
with an NVIDIA Tesla C2050 (Fermi, with L1/L2 caches) and one with a Tesla
C1060 (GT200, no general-purpose cache).  We model each execution unit with
a small set of published headline figures (peak single-precision
throughput, memory bandwidth, kernel launch overhead) plus *efficiency
factors* that capture how well regular vs. irregular kernels exploit the
unit.  Implementation-variant cost models (see :mod:`repro.apps`) combine
these with per-call flop and byte counts using a roofline-style estimate::

    time = launch_overhead + max(flops / effective_flops,
                                 bytes / effective_bandwidth)

where the effective rates are the peak rates scaled by the relevant
efficiency factor.  The absolute values do not need to match the authors'
testbed; what matters for reproducing the paper's figures is the *relative*
cost structure (GPUs win big regular data-parallel problems, CPUs win small
or latency-bound ones, the C1060 suffers on irregular access, and PCIe
transfers are expensive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.model import DeviceModel


class DeviceKind(Enum):
    """Execution unit category."""

    CPU = "cpu"
    GPU = "gpu"


class AccessPattern(Enum):
    """Memory access regularity of a kernel, used to pick efficiency."""

    REGULAR = "regular"  # streaming / coalesced (sgemm, stencils, axpy)
    IRREGULAR = "irregular"  # indexed gather/scatter (spmv, bfs)
    BRANCHY = "branchy"  # divergent control flow (particle filter resample)


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one execution unit.

    Attributes
    ----------
    name:
        Human-readable device name (e.g. ``"Tesla C2050"``).
    kind:
        CPU or GPU.
    peak_gflops:
        Peak single-precision throughput in GFLOP/s for this unit as a
        whole (for a CPU unit this is *one core*).
    mem_bandwidth_gbs:
        Sustainable local memory bandwidth in GB/s.
    launch_overhead_s:
        Fixed cost of starting one kernel/task on the unit, in seconds.
        GPU kernel launches cost several microseconds; CPU function calls
        are effectively free but we charge a small constant for the
        runtime's task dispatch.
    regular_efficiency / irregular_efficiency / branchy_efficiency:
        Fraction of peak achieved for each access-pattern class.
    has_cache:
        Whether the device has a general-purpose cache hierarchy (the
        C2050 does, the C1060 does not) — used by cost models to decide
        how much locality irregular kernels can recover.
    cores:
        Number of physical cores represented by this unit (informational
        for CPUs used via OpenMP-style variants).
    busy_watts:
        Power draw while executing a task, in watts — the basis of the
        energy accounting behind the ``min_energy`` optimization goal
        that PEPPHER main descriptors may declare.
    memory_bytes:
        Capacity of the device's local memory, or ``None`` for
        unlimited (host RAM).  When device memory runs short, the
        runtime evicts least-recently-used copies — re-allocating later
        costs fresh transfers, as the paper notes for Figure 3.
    model:
        Optional :class:`~repro.hw.model.DeviceModel` governing this
        device's kernel-cost arithmetic.  ``None`` (the default, and
        every pre-existing preset) means the coarse analytical tier,
        computed inline exactly as it always was — attaching an
        explicit :class:`~repro.hw.model.CoarseDeviceModel` is
        numerically identical.  A
        :class:`~repro.hw.model.DetailedDeviceModel` switches this
        device to the PPT-GPU-grade tier (SM occupancy, L1/L2 hit-rate
        knobs, instruction-class latencies); see ``docs/DEVICES.md``.
    """

    name: str
    kind: DeviceKind
    peak_gflops: float
    mem_bandwidth_gbs: float
    launch_overhead_s: float
    regular_efficiency: float = 0.75
    irregular_efficiency: float = 0.25
    branchy_efficiency: float = 0.35
    has_cache: bool = True
    cores: int = 1
    busy_watts: float = 50.0
    memory_bytes: int | None = None
    model: "DeviceModel | None" = None

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.mem_bandwidth_gbs <= 0:
            raise ValueError(f"device {self.name}: rates must be positive")
        if self.launch_overhead_s < 0:
            raise ValueError(f"device {self.name}: negative launch overhead")
        if self.busy_watts <= 0:
            raise ValueError(f"device {self.name}: busy_watts must be positive")
        if self.memory_bytes is not None and self.memory_bytes <= 0:
            raise ValueError(f"device {self.name}: memory_bytes must be positive")
        for eff in (
            self.regular_efficiency,
            self.irregular_efficiency,
            self.branchy_efficiency,
        ):
            if not 0.0 < eff <= 1.0:
                raise ValueError(
                    f"device {self.name}: efficiency {eff} outside (0, 1]"
                )

    def efficiency(self, pattern: AccessPattern) -> float:
        """Fraction of peak achieved for the given access pattern."""
        if pattern is AccessPattern.REGULAR:
            return self.regular_efficiency
        if pattern is AccessPattern.IRREGULAR:
            return self.irregular_efficiency
        return self.branchy_efficiency

    def effective_gflops(self, pattern: AccessPattern) -> float:
        """Achievable GFLOP/s for a kernel with the given access pattern."""
        return self.peak_gflops * self.efficiency(pattern)

    def effective_bandwidth_gbs(self, pattern: AccessPattern) -> float:
        """Achievable GB/s for a kernel with the given access pattern."""
        return self.mem_bandwidth_gbs * self.efficiency(pattern)

    @property
    def fidelity(self) -> str:
        """Cost-model tier of this device (``"coarse"``/``"detailed"``)."""
        return "coarse" if self.model is None else self.model.fidelity

    def roofline_time(
        self,
        flops: float,
        bytes_moved: float,
        pattern: AccessPattern = AccessPattern.REGULAR,
        profile=None,
    ) -> float:
        """Modeled execution-time estimate in seconds.

        Dispatches to the attached :class:`~repro.hw.model.DeviceModel`
        when one exists; otherwise (and numerically identically under an
        explicit coarse model) the legacy roofline: ``max`` of the
        compute-bound and memory-bound times, plus the fixed launch
        overhead.  Either ``flops`` or ``bytes_moved`` may be zero.
        ``profile`` optionally names the kernel's launch shape and
        instruction mix (:class:`~repro.hw.model.KernelProfile`); only
        the detailed tier consumes it.
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be non-negative")
        if self.model is not None:
            return self.model.kernel_time(
                self, flops, bytes_moved, pattern, profile
            )
        t_compute = flops / (self.effective_gflops(pattern) * 1e9)
        t_memory = bytes_moved / (self.effective_bandwidth_gbs(pattern) * 1e9)
        return self.launch_overhead_s + max(t_compute, t_memory)


# ---------------------------------------------------------------------------
# Catalogue of the devices used in the paper's evaluation.
# ---------------------------------------------------------------------------

def xeon_e5520_core() -> DeviceSpec:
    """One core of the Intel Xeon E5520 (2.27 GHz Nehalem).

    Peak SP per core: 4 (SSE width) x 2 (mul+add) x 2.27 GHz ~= 18 GFLOP/s;
    realistic tuned-code efficiency is folded into the efficiency factors.
    Per-core sustainable bandwidth on Nehalem is roughly 6 GB/s.
    """
    return DeviceSpec(
        name="Xeon E5520 core",
        kind=DeviceKind.CPU,
        peak_gflops=18.0,
        mem_bandwidth_gbs=6.0,
        launch_overhead_s=2e-6,  # runtime task dispatch (paper: < 2 us)
        regular_efficiency=0.55,
        irregular_efficiency=0.30,  # caches help irregular access on CPUs
        branchy_efficiency=0.45,
        has_cache=True,
        cores=1,
        busy_watts=20.0,  # one Nehalem core's share of the 80 W socket
    )


def tesla_c2050() -> DeviceSpec:
    """NVIDIA Tesla C2050 (Fermi): 1.03 TFLOP/s SP, 144 GB/s, L1/L2 caches."""
    return DeviceSpec(
        name="Tesla C2050",
        kind=DeviceKind.GPU,
        peak_gflops=1030.0,
        mem_bandwidth_gbs=144.0,
        launch_overhead_s=7e-6,
        regular_efficiency=0.60,
        irregular_efficiency=0.28,  # caches recover some locality
        branchy_efficiency=0.15,
        has_cache=True,
        cores=448,
        busy_watts=238.0,  # the C2050's TDP
        memory_bytes=3 * 1024**3,  # 3 GB GDDR5
    )


def tesla_c1060() -> DeviceSpec:
    """NVIDIA Tesla C1060 (GT200): 933 GFLOP/s SP, 102 GB/s, no cache."""
    return DeviceSpec(
        name="Tesla C1060",
        kind=DeviceKind.GPU,
        peak_gflops=933.0,
        mem_bandwidth_gbs=102.0,
        launch_overhead_s=10e-6,
        regular_efficiency=0.45,
        irregular_efficiency=0.10,  # uncoalesced access is very costly
        branchy_efficiency=0.08,
        has_cache=False,
        cores=240,
        busy_watts=188.0,  # the C1060's TDP
        memory_bytes=4 * 1024**3,  # 4 GB GDDR3
    )
