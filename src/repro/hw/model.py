"""Hierarchical device models: coarse analytical fits vs. PPT-GPU-grade detail.

The original ``repro.hw`` cost models are coarse roofline fits — a peak
rate, a bandwidth and three efficiency scalars per device.  They
reproduce the paper's *relative* cost structure but cannot distinguish
GPU generations that share headline figures, and they have no knobs for
the microarchitectural effects the PPT-GPU line of work (see PAPERS.md)
shows matter: how many thread blocks an SM can actually host, how much
of the traffic the L1/L2 hierarchy absorbs, and how instruction-class
latencies bound issue throughput.

This module makes the fidelity an explicit, swappable layer:

:class:`DeviceModel`
    The abstraction every kernel-time estimate goes through.  A
    :class:`~repro.hw.devices.DeviceSpec` optionally carries one; specs
    without a model (the default, and every pre-existing preset) price
    kernels through the legacy coarse arithmetic, byte for byte.

:class:`CoarseDeviceModel`
    The explicit spelling of that legacy tier: launch overhead plus the
    roofline max of compute and memory time under pattern efficiencies.
    Attaching it changes nothing numerically — it exists so the tier is
    a first-class, fingerprintable object rather than an absence.

:class:`DetailedDeviceModel`
    The PPT-GPU-grade tier.  Kernel time is assembled from

    - **SM occupancy** — a CUDA-occupancy-calculator style limit over
      threads, blocks, registers and shared memory per SM
      (:meth:`DetailedDeviceModel.occupancy`), which scales how well
      instruction latency is hidden;
    - **a two-level memory hierarchy** — L1/L2 hit-rate knobs blend the
      per-level bandwidths into an effective rate
      (:meth:`MemoryHierarchy.effective_bandwidth_gbs`), with an
      access-pattern coalescing factor on top;
    - **per-instruction-class latency tables** — the kernel's
      instruction mix (from its :class:`KernelProfile`) and the
      device's :class:`LatencyTable` give a mean issue latency, and a
      Little's-law argument turns (active warps, latency) into achieved
      issue rate.

Both tiers answer the same question with the same signature, so the
engine, dmda and the lookahead planner price kernels identically at
either fidelity — what changes is the ground truth their performance
models learn from.  See ``docs/DEVICES.md``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.hw.devices import AccessPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.devices import DeviceSpec

#: instruction classes the latency tables know about; profiles give a
#: mix over these (fractions summing to ~1)
INSTRUCTION_CLASSES = ("fma", "alu", "sfu", "ldst_shared", "ldst_global", "branch")


@dataclass(frozen=True)
class SMConfig:
    """Streaming-multiprocessor limits of one GPU generation.

    The four ``max_*``/``*_per_sm`` limits are exactly the inputs of
    NVIDIA's occupancy calculator; ``cores_per_sm`` and ``clock_ghz``
    set the issue-rate ceiling (one warp-FMA per ``warp_size`` cores
    per cycle).
    """

    n_sms: int
    cores_per_sm: int
    clock_ghz: float
    max_threads_per_sm: int
    max_blocks_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm: int
    warp_size: int = 32

    def __post_init__(self) -> None:
        for name in (
            "n_sms",
            "cores_per_sm",
            "max_threads_per_sm",
            "max_blocks_per_sm",
            "registers_per_sm",
            "shared_mem_per_sm",
            "warp_size",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"SMConfig.{name} must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("SMConfig.clock_ghz must be positive")
        if self.max_threads_per_sm % self.warp_size:
            raise ValueError(
                "SMConfig.max_threads_per_sm must be a multiple of warp_size"
            )

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def issue_width(self) -> float:
        """Warp-instructions issued per SM per cycle at full tilt."""
        return self.cores_per_sm / self.warp_size

    def knobs(self) -> dict:
        """JSON-able knob dict (fingerprinted by the tuning store)."""
        return {
            "n_sms": self.n_sms,
            "cores_per_sm": self.cores_per_sm,
            "clock_ghz": self.clock_ghz,
            "max_threads_per_sm": self.max_threads_per_sm,
            "max_blocks_per_sm": self.max_blocks_per_sm,
            "registers_per_sm": self.registers_per_sm,
            "shared_mem_per_sm": self.shared_mem_per_sm,
            "warp_size": self.warp_size,
        }


@dataclass(frozen=True)
class MemoryHierarchy:
    """Two-level cache hierarchy feeding an effective bandwidth.

    ``l1_hit_rate`` is the fraction of accesses served by L1;
    ``l2_hit_rate`` the fraction of L1 *misses* served by L2.  The
    blended cost per byte is the hit-rate-weighted harmonic mix of the
    three level bandwidths, which is monotonically non-increasing in
    both hit rates as long as ``l1 >= l2 >= dram`` bandwidth — enforced
    here so the property holds by construction (cache-less GT200-class
    devices simply set both hit rates to zero).
    """

    l1_hit_rate: float
    l2_hit_rate: float
    l1_bandwidth_gbs: float
    l2_bandwidth_gbs: float
    dram_bandwidth_gbs: float

    def __post_init__(self) -> None:
        for name in ("l1_hit_rate", "l2_hit_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"MemoryHierarchy.{name} {v} outside [0, 1]")
        if self.dram_bandwidth_gbs <= 0:
            raise ValueError("MemoryHierarchy.dram_bandwidth_gbs must be positive")
        if not (
            self.l1_bandwidth_gbs >= self.l2_bandwidth_gbs >= self.dram_bandwidth_gbs
        ):
            raise ValueError(
                "MemoryHierarchy bandwidths must satisfy l1 >= l2 >= dram "
                f"(got {self.l1_bandwidth_gbs}/{self.l2_bandwidth_gbs}/"
                f"{self.dram_bandwidth_gbs})"
            )

    def effective_bandwidth_gbs(self) -> float:
        """Hit-rate-blended achievable bandwidth in GB/s."""
        f_l1 = self.l1_hit_rate
        f_l2 = (1.0 - self.l1_hit_rate) * self.l2_hit_rate
        f_dram = (1.0 - self.l1_hit_rate) * (1.0 - self.l2_hit_rate)
        cost_per_byte = (
            f_l1 / self.l1_bandwidth_gbs
            + f_l2 / self.l2_bandwidth_gbs
            + f_dram / self.dram_bandwidth_gbs
        )
        return 1.0 / cost_per_byte

    def dram_fraction(self) -> float:
        """Fraction of traffic that reaches DRAM (misses both caches)."""
        return (1.0 - self.l1_hit_rate) * (1.0 - self.l2_hit_rate)

    def knobs(self) -> dict:
        return {
            "l1_hit_rate": self.l1_hit_rate,
            "l2_hit_rate": self.l2_hit_rate,
            "l1_bandwidth_gbs": self.l1_bandwidth_gbs,
            "l2_bandwidth_gbs": self.l2_bandwidth_gbs,
            "dram_bandwidth_gbs": self.dram_bandwidth_gbs,
        }


@dataclass(frozen=True)
class LatencyTable:
    """Issue-to-result latency, in cycles, per instruction class.

    The PPT-GPU observation this encodes: instruction latencies depend
    only on the instruction and the GPU family, so one table per device
    generation suffices.  ``ldst_global`` is the *miss* latency —
    cache hits are already priced by the memory hierarchy's bandwidth
    blend, so the table carries the latency a warp actually stalls on.
    """

    fma: float = 18.0
    alu: float = 18.0
    sfu: float = 30.0
    ldst_shared: float = 30.0
    ldst_global: float = 400.0
    branch: float = 20.0

    def __post_init__(self) -> None:
        for name in INSTRUCTION_CLASSES:
            if getattr(self, name) <= 0:
                raise ValueError(f"LatencyTable.{name} must be positive")

    def mean_latency(self, mix: Mapping[str, float]) -> float:
        """Mix-weighted mean issue latency in cycles."""
        total = 0.0
        weight = 0.0
        for cls, frac in mix.items():
            if cls not in INSTRUCTION_CLASSES:
                raise ValueError(
                    f"unknown instruction class {cls!r}; "
                    f"known: {INSTRUCTION_CLASSES}"
                )
            total += frac * getattr(self, cls)
            weight += frac
        if weight <= 0:
            raise ValueError("instruction mix must have positive total weight")
        return total / weight

    def knobs(self) -> dict:
        return {name: getattr(self, name) for name in INSTRUCTION_CLASSES}


@dataclass(frozen=True)
class KernelProfile:
    """Per-kernel launch shape and instruction mix the detailed tier prices.

    Apps may attach one to an :class:`~repro.runtime.codelet.ImplVariant`
    (``kernel_profile=``); kernels without one are priced with the
    pattern-default profiles below, so the detailed tier works out of
    the box for every existing application.
    """

    threads_per_block: int = 256
    regs_per_thread: int = 32
    shared_mem_per_block: int = 0
    #: fraction of dynamic warp instructions per class (needn't sum to 1;
    #: mean latency is weight-normalised)
    mix: Mapping[str, float] = field(
        default_factory=lambda: {"fma": 0.6, "alu": 0.2, "ldst_global": 0.15, "branch": 0.05}
    )

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0:
            raise ValueError("KernelProfile.threads_per_block must be positive")
        if self.regs_per_thread <= 0:
            raise ValueError("KernelProfile.regs_per_thread must be positive")
        if self.shared_mem_per_block < 0:
            raise ValueError("KernelProfile.shared_mem_per_block must be >= 0")
        for cls, frac in self.mix.items():
            if cls not in INSTRUCTION_CLASSES:
                raise ValueError(f"unknown instruction class {cls!r}")
            if frac < 0:
                raise ValueError(f"negative mix fraction for {cls!r}")
        # freeze the mix so profiles stay hashable value objects
        object.__setattr__(self, "mix", dict(self.mix))

    def __hash__(self) -> int:  # mix is a dict; hash the sorted items
        return hash(
            (
                self.threads_per_block,
                self.regs_per_thread,
                self.shared_mem_per_block,
                tuple(sorted(self.mix.items())),
            )
        )


#: pattern-default kernel profiles: what the detailed tier assumes when a
#: variant declares no profile of its own.  REGULAR kernels are
#: FMA-heavy with coalesced loads; IRREGULAR kernels are load-dominated
#: gather/scatter; BRANCHY kernels spend their issue slots on divergent
#: control flow.
DEFAULT_PROFILES: dict[AccessPattern, KernelProfile] = {
    AccessPattern.REGULAR: KernelProfile(
        threads_per_block=256,
        regs_per_thread=32,
        shared_mem_per_block=8 * 1024,
        mix={"fma": 0.62, "alu": 0.18, "ldst_global": 0.12, "ldst_shared": 0.05, "branch": 0.03},
    ),
    AccessPattern.IRREGULAR: KernelProfile(
        threads_per_block=128,
        regs_per_thread=28,
        shared_mem_per_block=0,
        mix={"fma": 0.18, "alu": 0.27, "ldst_global": 0.45, "branch": 0.10},
    ),
    AccessPattern.BRANCHY: KernelProfile(
        threads_per_block=128,
        regs_per_thread=40,
        shared_mem_per_block=4 * 1024,
        mix={"fma": 0.20, "alu": 0.30, "ldst_global": 0.15, "sfu": 0.05, "branch": 0.30},
    ),
}

#: fraction of a coalesced transaction actually used per pattern: the
#: detailed tier's analogue of the coarse efficiency scalars, applied to
#: the hierarchy's blended bandwidth
COALESCING = {
    AccessPattern.REGULAR: 1.0,
    AccessPattern.IRREGULAR: 0.25,
    AccessPattern.BRANCHY: 0.5,
}

#: warp-divergence throughput factor per pattern (serialised branch paths)
DIVERGENCE = {
    AccessPattern.REGULAR: 1.0,
    AccessPattern.IRREGULAR: 0.85,
    AccessPattern.BRANCHY: 0.55,
}


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one (device, profile)."""

    active_blocks: int
    active_warps: int
    max_warps: int
    limiter: str  # "threads" | "blocks" | "registers" | "shared_mem"

    @property
    def fraction(self) -> float:
        return self.active_warps / self.max_warps


class DeviceModel(ABC):
    """One fidelity tier of a device's kernel-cost arithmetic.

    Subclasses are value objects: equality and the :meth:`knobs` dict
    must describe the full parameterisation, because the tuning store
    fingerprints them — two machines whose device models differ in any
    knob must not share calibrated performance models.
    """

    #: tier name ("coarse" / "detailed"), part of the store fingerprint
    fidelity: str = "coarse"

    @abstractmethod
    def kernel_time(
        self,
        spec: "DeviceSpec",
        flops: float,
        bytes_moved: float,
        pattern: AccessPattern = AccessPattern.REGULAR,
        profile: KernelProfile | None = None,
    ) -> float:
        """Modeled seconds for one kernel on ``spec`` (incl. launch)."""

    @abstractmethod
    def knobs(self) -> dict:
        """JSON-able parameterisation, fingerprinted by the store."""

    def describe(self) -> dict:
        """Structured view used by ``MachineDescription.describe()``."""
        return {"fidelity": self.fidelity, **self.knobs()}


class CoarseDeviceModel(DeviceModel):
    """The legacy roofline fit as an explicit, fingerprintable tier.

    Numerically identical to a spec with no model attached: same
    operations in the same order, so same-seed traces stay
    byte-identical whichever spelling a machine uses.
    """

    fidelity = "coarse"

    def kernel_time(
        self,
        spec: "DeviceSpec",
        flops: float,
        bytes_moved: float,
        pattern: AccessPattern = AccessPattern.REGULAR,
        profile: KernelProfile | None = None,
    ) -> float:
        # mirror the legacy branch of DeviceSpec.roofline_time exactly
        # (see devices.py); `profile` is accepted and ignored — the
        # coarse tier has no use for launch shapes
        t_compute = flops / (spec.effective_gflops(pattern) * 1e9)
        t_memory = bytes_moved / (spec.effective_bandwidth_gbs(pattern) * 1e9)
        return spec.launch_overhead_s + max(t_compute, t_memory)

    def knobs(self) -> dict:
        return {}

    def __eq__(self, other: object) -> bool:
        return type(other) is CoarseDeviceModel

    def __hash__(self) -> int:
        return hash(CoarseDeviceModel)


@dataclass(frozen=True)
class DetailedDeviceModel(DeviceModel):
    """PPT-GPU-grade kernel pricing from SM, memory and latency knobs.

    The estimate keeps the roofline's ``launch + max(compute, memory)``
    skeleton — that is what makes the two tiers comparable — but both
    legs are microarchitectural:

    compute leg
        The kernel's flops become warp-FMA instructions
        (``warp_size * 2`` flops each); its instruction mix inflates
        that count to total dynamic warp instructions and gives, with
        the latency table, the mean issue latency ``L``.  With ``W``
        active warps per SM (from occupancy), each SM sustains
        ``min(issue_width, W / L)`` instructions per cycle — Little's
        law with the issue ceiling — degraded by the pattern's
        divergence factor.

    memory leg
        Traffic moves at the L1/L2 hit-rate-blended bandwidth times the
        pattern's coalescing factor, scaled by the same latency-hiding
        ratio (a single resident warp cannot saturate DRAM either).
    """

    sm: SMConfig
    memory: MemoryHierarchy
    latency: LatencyTable = field(default_factory=LatencyTable)
    fidelity: str = field(default="detailed", init=False)

    def occupancy(self, profile: KernelProfile) -> Occupancy:
        """Occupancy-calculator limits for one launch shape.

        Raises :class:`ValueError` when the block shape cannot run at
        all (more threads, registers or shared memory per block than an
        SM owns) — schedulers treat that variant as infeasible on this
        device.
        """
        sm = self.sm
        warps_per_block = math.ceil(profile.threads_per_block / sm.warp_size)
        regs_per_block = profile.regs_per_thread * profile.threads_per_block
        limits = {
            "threads": sm.max_threads_per_sm // profile.threads_per_block,
            "blocks": sm.max_blocks_per_sm,
            "registers": sm.registers_per_sm // regs_per_block,
        }
        if profile.shared_mem_per_block:
            limits["shared_mem"] = (
                sm.shared_mem_per_sm // profile.shared_mem_per_block
            )
        limiter = min(limits, key=lambda k: (limits[k], k))
        active_blocks = limits[limiter]
        if active_blocks < 1:
            raise ValueError(
                f"kernel profile cannot launch on this device: 0 blocks fit "
                f"(limited by {limiter}: {profile.threads_per_block} threads, "
                f"{regs_per_block} regs, {profile.shared_mem_per_block} B smem "
                f"per block)"
            )
        active_warps = min(active_blocks * warps_per_block, sm.max_warps_per_sm)
        return Occupancy(
            active_blocks=active_blocks,
            active_warps=active_warps,
            max_warps=sm.max_warps_per_sm,
            limiter=limiter,
        )

    def _hiding(self, occ: Occupancy, mean_latency: float) -> float:
        """Achieved fraction of the issue ceiling (Little's law)."""
        per_cycle = occ.active_warps / mean_latency
        return min(1.0, per_cycle / self.sm.issue_width)

    def kernel_time(
        self,
        spec: "DeviceSpec",
        flops: float,
        bytes_moved: float,
        pattern: AccessPattern = AccessPattern.REGULAR,
        profile: KernelProfile | None = None,
    ) -> float:
        if profile is None:
            profile = DEFAULT_PROFILES[pattern]
        occ = self.occupancy(profile)
        mean_lat = self.latency.mean_latency(profile.mix)
        hiding = self._hiding(occ, mean_lat)
        divergence = DIVERGENCE[pattern]

        # compute leg: flops -> warp instructions -> issue-limited time
        sm = self.sm
        fma_frac = max(profile.mix.get("fma", 0.0), 1e-3)
        warp_fmas = flops / (sm.warp_size * 2.0)
        total_insts = warp_fmas / fma_frac  # inflate by the non-FMA mix
        issue_rate = (
            sm.n_sms * sm.issue_width * hiding * divergence * sm.clock_ghz * 1e9
        )
        t_compute = total_insts / issue_rate if total_insts else 0.0

        # memory leg: hierarchy-blended bandwidth under coalescing and
        # the same latency-hiding ratio
        bw = (
            self.memory.effective_bandwidth_gbs()
            * COALESCING[pattern]
            * max(hiding, 0.05)  # even one warp makes some progress
            * 1e9
        )
        t_memory = bytes_moved / bw if bytes_moved else 0.0

        return spec.launch_overhead_s + max(t_compute, t_memory)

    def feasible(self, profile: KernelProfile) -> bool:
        """Whether the launch shape fits this device at all."""
        try:
            self.occupancy(profile)
        except ValueError:
            return False
        return True

    def knobs(self) -> dict:
        return {
            "sm": self.sm.knobs(),
            "memory": self.memory.knobs(),
            "latency": self.latency.knobs(),
        }

    def with_hit_rates(
        self, l1_hit_rate: float | None = None, l2_hit_rate: float | None = None
    ) -> "DetailedDeviceModel":
        """A copy with adjusted cache hit rates (ablation knob)."""
        mem = self.memory
        return DetailedDeviceModel(
            sm=self.sm,
            memory=MemoryHierarchy(
                l1_hit_rate=mem.l1_hit_rate if l1_hit_rate is None else l1_hit_rate,
                l2_hit_rate=mem.l2_hit_rate if l2_hit_rate is None else l2_hit_rate,
                l1_bandwidth_gbs=mem.l1_bandwidth_gbs,
                l2_bandwidth_gbs=mem.l2_bandwidth_gbs,
                dram_bandwidth_gbs=mem.dram_bandwidth_gbs,
            ),
            latency=self.latency,
        )
