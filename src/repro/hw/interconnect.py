"""PCI-Express transfer model.

Host <-> device copies in the paper run over PCIe 2.0 x16.  We model a
transfer of ``n`` bytes as ``latency + n / bandwidth``.  Each GPU has its
own DMA engine, so transfers to different GPUs can overlap, but transfers
to the *same* GPU serialize — the :class:`repro.runtime.engine.Engine`
enforces that by tracking per-link availability; this module only supplies
the cost function.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """One host<->device interconnect link.

    Attributes
    ----------
    bandwidth_gbs:
        Effective unidirectional bandwidth in GB/s (PCIe 2.0 x16 sustains
        roughly 5.5 GB/s of its 8 GB/s theoretical rate).
    latency_s:
        Fixed per-transfer cost (driver + DMA setup), in seconds.
    duplex:
        Whether host-to-device and device-to-host transfers may overlap
        (Fermi-class devices have two DMA engines; GT200 has one).
    """

    bandwidth_gbs: float = 5.5
    latency_s: float = 15e-6
    duplex: bool = False

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("link latency must be non-negative")

    def transfer_time(self, nbytes: int | float) -> float:
        """Seconds to move ``nbytes`` over this link (one direction)."""
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + float(nbytes) / (self.bandwidth_gbs * 1e9)


def pcie2_x16(duplex: bool = False) -> LinkSpec:
    """The PCIe 2.0 x16 link used by both of the paper's platforms."""
    return LinkSpec(bandwidth_gbs=5.5, latency_s=15e-6, duplex=duplex)


def pcie3_x16(duplex: bool = True) -> LinkSpec:
    """PCIe 3.0 x16 (Kepler-class and newer zoo machines).

    Sustains roughly 12 GB/s of the 16 GB/s theoretical rate; all
    generations that ship it have dual DMA engines, hence duplex by
    default.
    """
    return LinkSpec(bandwidth_gbs=12.0, latency_s=10e-6, duplex=duplex)
