"""Asyncio-native client surface over a :class:`~repro.session.Session`.

The serving layer's tenant clients are simulation-driven (virtual-time
load generators); this module is the *application-facing* counterpart
for programs that are themselves asyncio: an :class:`AsyncClient` turns
component invocations into awaitables backed by
:meth:`Session.submit_async`, so request handlers can ``await`` a
composition call exactly like any other coroutine — and with a real
execution backend (``Session(..., exec_backend="thread")``) concurrent
requests' kernels genuinely overlap.

Typical use::

    from repro import Session
    from repro.serve.aio import AsyncClient

    async def handler(client, h_in, h_out):
        await client.call(conv_codelet, [(h_in, "r"), (h_out, "w")],
                          ctx={"n": 4096})

    with Session("c2050", exec_backend="thread") as session:
        client = AsyncClient(session, max_inflight=8)
        asyncio.run(serve_requests(client))
"""

from __future__ import annotations

import asyncio
from typing import Mapping, Sequence

from repro.errors import PeppherError


class AsyncClient:
    """Awaitable component invocations with optional admission.

    Parameters
    ----------
    session:
        The :class:`~repro.session.Session` to submit through.
    max_inflight:
        Upper bound on concurrently awaited invocations (a semaphore);
        ``None`` admits everything immediately.  This is client-side
        backpressure — the engine-side admission controller of
        :class:`~repro.serve.server.CompositionServer` is separate.
    """

    def __init__(self, session, max_inflight: int | None = None) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise PeppherError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.session = session
        self._sem = (
            asyncio.Semaphore(max_inflight) if max_inflight is not None else None
        )
        #: completed invocations issued through this client
        self.n_completed = 0

    async def call(
        self,
        codelet,
        operands: Sequence,
        ctx: Mapping[str, object] | None = None,
        scalar_args: tuple = (),
        priority: int = 0,
        name: str = "",
    ):
        """Invoke one component and await its completed task."""
        if self._sem is not None:
            async with self._sem:
                task = await self.session.submit_async(
                    codelet,
                    operands,
                    ctx=ctx,
                    scalar_args=scalar_args,
                    priority=priority,
                    name=name,
                )
        else:
            task = await self.session.submit_async(
                codelet,
                operands,
                ctx=ctx,
                scalar_args=scalar_args,
                priority=priority,
                name=name,
            )
        self.n_completed += 1
        return task

    async def map(
        self,
        codelet,
        operand_sets: Sequence[Sequence],
        ctx: Mapping[str, object] | None = None,
        scalar_args: tuple = (),
    ):
        """Invoke one codelet over many operand sets concurrently.

        Returns completed tasks in input order; ``max_inflight`` (when
        set) bounds how many run at once.
        """
        return await asyncio.gather(
            *(
                self.call(codelet, ops, ctx=ctx, scalar_args=scalar_args)
                for ops in operand_sets
            )
        )
