"""Client generators: tenant sessions producing component invocations.

Each tenant owns a *session* against the composition server.  A session
pins the tenant's workload (one of the :mod:`repro.apps` registry
components at a fixed problem size), pre-registers the read-only inputs
once (clients resend the same model/graph/wall on every call, so the
runtime's coherence layer may cache device copies across requests) and
mints one fresh output buffer per request so requests of one tenant do
not serialize on write-write dependencies.

Two load shapes, both with seeded determinism:

- **open loop** (:class:`OpenLoopClient`): requests arrive by a Poisson
  process at ``rate_hz``, independent of completions — the load shape
  that exposes queueing collapse and motivates admission control;
- **closed loop** (:class:`ClosedLoopClient`): ``concurrency`` logical
  users each issue the next request ``think_time_s`` after the previous
  one completes — load self-limits, the classic benchmark-client shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.composer.glue import lower_component
from repro.errors import PeppherError
from repro.runtime.codelet import Codelet
from repro.workloads import gemm_inputs, pathfinder_wall, random_graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime
    from repro.runtime.task import Task


@dataclass(frozen=True)
class TenantSpec:
    """Configuration of one tenant of the composition service."""

    name: str
    #: workload key (see :data:`WORKLOADS`)
    workload: str = "sgemm"
    #: problem size forwarded to the workload builder
    size: int = 96
    #: weighted-fair-queueing share (only the ratio between tenants matters)
    weight: float = 1.0
    #: open-loop Poisson arrival rate; ``None`` selects the closed loop
    rate_hz: float | None = 200.0
    #: total requests the tenant offers over the run
    n_requests: int = 100
    #: closed-loop concurrent logical users
    concurrency: int = 1
    #: closed-loop think time between completion and the next request
    think_time_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise PeppherError("tenant name must be non-empty")
        if self.size < 1:
            raise PeppherError(f"tenant {self.name!r}: size must be >= 1")
        if self.workload not in WORKLOADS:
            raise PeppherError(
                f"tenant {self.name!r}: unknown workload {self.workload!r}; "
                f"known: {sorted(WORKLOADS)}"
            )
        if self.n_requests < 1:
            raise PeppherError(
                f"tenant {self.name!r}: n_requests must be >= 1"
            )
        if self.rate_hz is not None and self.rate_hz <= 0:
            raise PeppherError(f"tenant {self.name!r}: rate_hz must be > 0")
        if self.weight <= 0:
            raise PeppherError(f"tenant {self.name!r}: weight must be > 0")
        if self.concurrency < 1:
            raise PeppherError(
                f"tenant {self.name!r}: concurrency must be >= 1"
            )


@dataclass
class Request:
    """One component invocation traveling through the serving pipeline."""

    tenant: str
    req_id: int
    arrival_s: float
    codelet_name: str
    #: coalescing key: requests sharing it may be fused into one batch
    shape_key: tuple
    #: submits the invocation's task; called at dispatch time
    submit: Callable[["Runtime"], "Task"]
    #: filled by the server
    delayed: bool = False


# ---------------------------------------------------------------------------
# workload sessions (shared read-only inputs, fresh output per request)
# ---------------------------------------------------------------------------

class _Session:
    """Base session: lazily registers shared inputs on first request."""

    def __init__(self, runtime: "Runtime", spec: TenantSpec) -> None:
        self.runtime = runtime
        self.spec = spec
        self.codelet = self._make_codelet()
        self._inputs = None

    def _make_codelet(self) -> Codelet:
        raise NotImplementedError

    def _register_inputs(self):
        raise NotImplementedError

    @property
    def inputs(self):
        if self._inputs is None:
            self._inputs = self._register_inputs()
        return self._inputs

    def make_request(self, req_id: int, arrival_s: float) -> Request:
        raise NotImplementedError


class SgemmSession(_Session):
    """``C = A @ B`` at a fixed square size; A and B shared read-only."""

    def _make_codelet(self) -> Codelet:
        from repro.apps import sgemm

        return lower_component(sgemm.INTERFACE, sgemm.IMPLEMENTATIONS)

    def _register_inputs(self):
        s = self.spec.size
        a, b, _ = gemm_inputs(s, s, s, seed=self.spec.seed)
        rt = self.runtime
        return (
            rt.register(a, f"{self.spec.name}:A"),
            rt.register(b, f"{self.spec.name}:B"),
        )

    def make_request(self, req_id: int, arrival_s: float) -> Request:
        s = self.spec.size
        h_a, h_b = self.inputs
        tenant = self.spec.name

        def submit(rt: "Runtime") -> "Task":
            c = np.zeros((s, s), dtype=np.float32)
            h_c = rt.register(c, f"{tenant}:C{req_id}")
            return rt.submit(
                self.codelet,
                [(h_a, "r"), (h_b, "r"), (h_c, "rw")],
                ctx={"m": s, "n": s, "k": s, "tenant": tenant},
                scalar_args=(s, s, s, 1.0, 0.0),
                name=f"{tenant}/sgemm#{req_id}",
            )

        return Request(
            tenant=tenant,
            req_id=req_id,
            arrival_s=arrival_s,
            codelet_name=self.codelet.name,
            shape_key=("sgemm", s),
            submit=submit,
        )


class PathfinderSession(_Session):
    """Grid DP over a shared wall; fresh result row per request."""

    ROWS = 50

    def _make_codelet(self) -> Codelet:
        from repro.apps import pathfinder

        return lower_component(pathfinder.INTERFACE, pathfinder.IMPLEMENTATIONS)

    def _register_inputs(self):
        wall = pathfinder_wall(self.ROWS, self.spec.size, seed=self.spec.seed)
        return (self.runtime.register(wall, f"{self.spec.name}:wall"),)

    def make_request(self, req_id: int, arrival_s: float) -> Request:
        cols = self.spec.size
        (h_wall,) = self.inputs
        tenant = self.spec.name

        def submit(rt: "Runtime") -> "Task":
            result = np.zeros(cols, dtype=np.int32)
            h_res = rt.register(result, f"{tenant}:res{req_id}")
            return rt.submit(
                self.codelet,
                [(h_wall, "r"), (h_res, "w")],
                ctx={"rows": self.ROWS, "cols": cols, "tenant": tenant},
                scalar_args=(self.ROWS, cols),
                name=f"{tenant}/pathfinder#{req_id}",
            )

        return Request(
            tenant=tenant,
            req_id=req_id,
            arrival_s=arrival_s,
            codelet_name=self.codelet.name,
            shape_key=("pathfinder", self.ROWS, cols),
            submit=submit,
        )


class BfsSession(_Session):
    """BFS over a shared random graph; fresh cost vector per request."""

    DEGREE = 8

    def _make_codelet(self) -> Codelet:
        from repro.apps import bfs

        return lower_component(bfs.INTERFACE, bfs.IMPLEMENTATIONS)

    def _register_inputs(self):
        nodes, edges = random_graph(
            self.spec.size, self.DEGREE, seed=self.spec.seed
        )
        rt = self.runtime
        return (
            rt.register(nodes, f"{self.spec.name}:nodes"),
            rt.register(edges, f"{self.spec.name}:edges"),
            len(edges),
        )

    def make_request(self, req_id: int, arrival_s: float) -> Request:
        n = self.spec.size
        h_nodes, h_edges, n_edges = self.inputs
        tenant = self.spec.name

        def submit(rt: "Runtime") -> "Task":
            costs = np.zeros(n, dtype=np.int32)
            h_costs = rt.register(costs, f"{tenant}:costs{req_id}")
            return rt.submit(
                self.codelet,
                [(h_nodes, "r"), (h_edges, "r"), (h_costs, "w")],
                ctx={"n_nodes": n, "n_edges": n_edges, "tenant": tenant},
                scalar_args=(n, n_edges, 0),
                name=f"{tenant}/bfs#{req_id}",
            )

        return Request(
            tenant=tenant,
            req_id=req_id,
            arrival_s=arrival_s,
            codelet_name=self.codelet.name,
            shape_key=("bfs", n),
            submit=submit,
        )


#: workload name -> session class (all reuse repro.apps registry kernels)
WORKLOADS: dict[str, type[_Session]] = {
    "sgemm": SgemmSession,
    "pathfinder": PathfinderSession,
    "bfs": BfsSession,
}


# ---------------------------------------------------------------------------
# load generators
# ---------------------------------------------------------------------------

class OpenLoopClient:
    """Poisson arrivals at ``spec.rate_hz``, independent of completions."""

    def __init__(self, runtime: "Runtime", spec: TenantSpec) -> None:
        if spec.rate_hz is None:
            raise PeppherError(
                f"tenant {spec.name!r}: open-loop client needs rate_hz"
            )
        self.spec = spec
        self.session = WORKLOADS[spec.workload](runtime, spec)
        self._rng = np.random.default_rng(spec.seed + 0xC11E)

    def arrivals(self) -> list[Request]:
        """The full seeded arrival schedule (exponential interarrivals)."""
        gaps = self._rng.exponential(
            1.0 / self.spec.rate_hz, size=self.spec.n_requests
        )
        times = np.cumsum(gaps)
        return [
            self.session.make_request(i, float(t)) for i, t in enumerate(times)
        ]

    def on_complete(self, request: Request, end_s: float) -> Request | None:
        return None  # open loop: completions do not generate load


class ClosedLoopClient:
    """``concurrency`` users; each reissues ``think_time_s`` after completion."""

    def __init__(self, runtime: "Runtime", spec: TenantSpec) -> None:
        self.spec = spec
        self.session = WORKLOADS[spec.workload](runtime, spec)
        self._rng = np.random.default_rng(spec.seed + 0xC105ED)
        self._issued = 0

    def arrivals(self) -> list[Request]:
        """Initial wave: one request per logical user, with seeded jitter
        so users do not arrive in lockstep."""
        n = min(self.spec.concurrency, self.spec.n_requests)
        out = []
        for _ in range(n):
            jitter = float(self._rng.exponential(1e-4))
            out.append(self.session.make_request(self._issued, jitter))
            self._issued += 1
        return out

    def on_complete(self, request: Request, end_s: float) -> Request | None:
        """The finishing user's next request, or None when spent."""
        if self._issued >= self.spec.n_requests:
            return None
        req = self.session.make_request(
            self._issued, end_s + self.spec.think_time_s
        )
        self._issued += 1
        return req


def make_client(runtime: "Runtime", spec: TenantSpec):
    """Open-loop when the spec carries a rate, closed-loop otherwise."""
    if spec.rate_hz is not None:
        return OpenLoopClient(runtime, spec)
    return ClosedLoopClient(runtime, spec)
