"""Per-tenant SLO accounting: latency percentiles, goodput, shed rate.

Aggregates the :class:`~repro.runtime.stats.RequestRecord` stream of a
serving run into the report operators actually look at: per tenant, the
p50/p95/p99 of end-to-end latency with its decomposition into queue
wait, pending (staging/worker) wait and execution time, plus goodput
(completed requests per offered second) and the shed/failure rates that
admission control and fault recovery trade latency against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.runtime.stats import ExecutionTrace, RequestRecord


def percentile(values: list[float], q: float) -> float:
    """Deterministic linear-interpolation percentile (q in [0, 100])."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not values:
        return float("nan")
    xs = sorted(values)
    if len(xs) == 1:
        return xs[0]
    pos = (len(xs) - 1) * q / 100.0
    lo = math.floor(pos)
    frac = pos - lo
    if lo + 1 >= len(xs):
        return xs[-1]
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac


@dataclass(frozen=True)
class TenantSlo:
    """One tenant's service-level summary over a run."""

    tenant: str
    n_offered: int
    n_completed: int
    n_shed: int
    n_failed: int
    #: completed requests per second of the offered-load window
    goodput_rps: float
    p50_s: float
    p95_s: float
    p99_s: float
    mean_queue_wait_s: float
    mean_pending_wait_s: float
    mean_exec_s: float
    mean_transfer_s: float
    mean_batch_size: float

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_offered if self.n_offered else 0.0


@dataclass
class SloReport:
    """Per-tenant SLO summaries plus run-level aggregates."""

    window_s: float
    tenants: list[TenantSlo] = field(default_factory=list)

    def for_tenant(self, name: str) -> TenantSlo:
        for t in self.tenants:
            if t.tenant == name:
                return t
        raise KeyError(name)

    @property
    def total_offered(self) -> int:
        return sum(t.n_offered for t in self.tenants)

    @property
    def total_completed(self) -> int:
        return sum(t.n_completed for t in self.tenants)

    @property
    def total_shed(self) -> int:
        return sum(t.n_shed for t in self.tenants)

    @property
    def goodput_rps(self) -> float:
        return self.total_completed / self.window_s if self.window_s > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        return self.total_shed / self.total_offered if self.total_offered else 0.0

    def p99_spread(self) -> float:
        """max/min per-tenant p99 — the fairness headline (1.0 = equal)."""
        p99s = [t.p99_s for t in self.tenants if not math.isnan(t.p99_s)]
        if len(p99s) < 2 or min(p99s) <= 0:
            return float("nan")
        return max(p99s) / min(p99s)

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "goodput_rps": self.goodput_rps,
            "shed_rate": self.shed_rate,
            "p99_spread": self.p99_spread(),
            "tenants": [
                {
                    "tenant": t.tenant,
                    "offered": t.n_offered,
                    "completed": t.n_completed,
                    "shed": t.n_shed,
                    "failed": t.n_failed,
                    "goodput_rps": t.goodput_rps,
                    "p50_ms": t.p50_s * 1e3,
                    "p95_ms": t.p95_s * 1e3,
                    "p99_ms": t.p99_s * 1e3,
                    "mean_queue_wait_ms": t.mean_queue_wait_s * 1e3,
                    "mean_pending_wait_ms": t.mean_pending_wait_s * 1e3,
                    "mean_exec_ms": t.mean_exec_s * 1e3,
                    "mean_transfer_ms": t.mean_transfer_s * 1e3,
                    "mean_batch_size": t.mean_batch_size,
                }
                for t in self.tenants
            ],
        }


def _mean(xs: list[float]) -> float:
    return sum(xs) / len(xs) if xs else float("nan")


def tenant_slo(
    tenant: str, records: list[RequestRecord], window_s: float
) -> TenantSlo:
    done = [r for r in records if r.completed]
    latencies = [r.latency for r in done]
    return TenantSlo(
        tenant=tenant,
        n_offered=len(records),
        n_completed=len(done),
        n_shed=sum(1 for r in records if r.shed),
        n_failed=sum(1 for r in records if r.failed),
        goodput_rps=len(done) / window_s if window_s > 0 else 0.0,
        p50_s=percentile(latencies, 50),
        p95_s=percentile(latencies, 95),
        p99_s=percentile(latencies, 99),
        mean_queue_wait_s=_mean([r.queue_wait for r in done]),
        mean_pending_wait_s=_mean([r.pending_wait for r in done]),
        mean_exec_s=_mean([r.exec_s for r in done]),
        mean_transfer_s=_mean([r.transfer_s for r in done]),
        mean_batch_size=_mean([float(r.batch_size) for r in done]),
    )


def slo_report(trace: ExecutionTrace, window_s: float | None = None) -> SloReport:
    """Build the per-tenant report from a serving run's trace.

    ``window_s`` defaults to the offered-load window: first arrival to
    the later of last arrival and last completion.
    """
    if window_s is None:
        if trace.requests:
            t0 = min(r.arrival_time for r in trace.requests)
            t1 = max(
                [r.arrival_time for r in trace.requests]
                + [r.end_time for r in trace.requests if r.completed]
            )
            window_s = max(t1 - t0, 0.0)
        else:
            window_s = 0.0
    report = SloReport(window_s=window_s)
    for tenant in trace.tenants():
        report.tenants.append(
            tenant_slo(tenant, trace.requests_for(tenant), window_s)
        )
    return report


def format_slo_report(report: SloReport, title: str = "SLO report") -> str:
    lines = [
        f"{title}: window {report.window_s * 1e3:.1f} ms, "
        f"goodput {report.goodput_rps:.1f} req/s, "
        f"shed {report.shed_rate:.1%}, p99 spread "
        + (
            "n/a"
            if math.isnan(report.p99_spread())
            else f"{report.p99_spread():.2f}x"
        ),
        f"{'tenant':<12s} {'offered':>8s} {'done':>6s} {'shed':>6s} "
        f"{'fail':>5s} {'p50':>9s} {'p95':>9s} {'p99':>9s} "
        f"{'queue':>9s} {'pend':>9s} {'exec':>9s} {'batch':>6s}",
    ]
    for t in report.tenants:
        lines.append(
            f"{t.tenant:<12s} {t.n_offered:8d} {t.n_completed:6d} "
            f"{t.n_shed:6d} {t.n_failed:5d} "
            f"{t.p50_s * 1e3:7.2f}ms {t.p95_s * 1e3:7.2f}ms "
            f"{t.p99_s * 1e3:7.2f}ms {t.mean_queue_wait_s * 1e3:7.2f}ms "
            f"{t.mean_pending_wait_s * 1e3:7.2f}ms "
            f"{t.mean_exec_s * 1e3:7.2f}ms {t.mean_batch_size:6.2f}"
        )
    return "\n".join(lines)
