"""repro.serve: multi-tenant composition serving.

Wraps the single-application :class:`~repro.runtime.runtime.Runtime` in
a serving layer: tenant client sessions generate open- or closed-loop
load, an admission controller sheds or delays arrivals beyond the
configured queue/backlog bounds, a coalescer fuses same-shape
invocations across tenants into batched dispatches, and a weighted
fair queue (the ``fair`` scheduling policy) shares machine time between
tenants.  Every request's latency decomposition lands in the execution
trace and rolls up into the per-tenant :class:`~repro.serve.slo.SloReport`.

Typical use::

    from repro.hw.presets import platform_c2050
    from repro.serve import AdmissionPolicy, CompositionServer, TenantSpec

    server = CompositionServer(
        platform_c2050(),
        tenants=[
            TenantSpec("heavy", workload="sgemm", size=96, rate_hz=400.0),
            TenantSpec("light", workload="pathfinder", size=64, rate_hz=40.0),
        ],
        scheduler="fair",
        admission=AdmissionPolicy(max_queue_per_tenant=12),
    )
    report = server.run()
    print(report.for_tenant("light").p99_s)
"""

from repro.serve.aio import AsyncClient
from repro.serve.admission import (
    AdmissionController,
    AdmissionOutcome,
    AdmissionPolicy,
)
from repro.serve.batching import BatchPolicy, Coalescer
from repro.serve.client import (
    ClosedLoopClient,
    OpenLoopClient,
    Request,
    TenantSpec,
    WORKLOADS,
    make_client,
)
from repro.serve.fairness import WeightedFairQueue
from repro.serve.metrics import ServingMetrics
from repro.serve.server import CompositionServer
from repro.serve.slo import (
    SloReport,
    TenantSlo,
    format_slo_report,
    percentile,
    slo_report,
    tenant_slo,
)

__all__ = [
    "AdmissionController",
    "AdmissionOutcome",
    "AdmissionPolicy",
    "AsyncClient",
    "BatchPolicy",
    "ClosedLoopClient",
    "Coalescer",
    "CompositionServer",
    "OpenLoopClient",
    "Request",
    "ServingMetrics",
    "SloReport",
    "TenantSlo",
    "TenantSpec",
    "WORKLOADS",
    "WeightedFairQueue",
    "format_slo_report",
    "make_client",
    "percentile",
    "slo_report",
    "tenant_slo",
]
