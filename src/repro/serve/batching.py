"""Request coalescing: fuse same-codelet/same-shape invocations.

The paper's Figure 7 worries about per-task runtime overhead; at serving
scale that overhead is paid once per *request* unless the front-end
coalesces.  The :class:`Coalescer` buckets queued requests by their
``shape_key`` (codelet plus problem shape); a dispatch drains up to
``max_batch`` requests of one bucket — possibly from different tenants —
as one batched submission, so the server charges its per-dispatch
overhead once per batch instead of once per request.

Bucket selection is the throughput/fairness knob.  ``take_greedy``
drains the deepest bucket first — maximal fusion, but a tenant keeping
one bucket full can starve minority shapes indefinitely.  ``take_for``
drains the bucket holding a chosen tenant's oldest request, which is how
the weighted-fair dispatch path batches without starving (the fair
policy picks the tenant, the coalescer still fuses other tenants'
compatible requests into the same batch).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.client import Request


@dataclass(frozen=True)
class BatchPolicy:
    """How aggressively the coalescer fuses compatible requests."""

    #: largest number of requests fused into one dispatch
    max_batch: int = 8

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")


class Coalescer:
    """FIFO-per-bucket queue of admitted, not-yet-dispatched requests."""

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        #: shape_key -> FIFO of requests (insertion order preserved)
        self._buckets: dict[tuple, list[Request]] = {}
        self._arrival_seq = 0
        #: dispatch statistics
        self.n_batches = 0
        self.n_fused = 0  # requests that rode along in a batch of > 1

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    @property
    def empty(self) -> bool:
        return not any(self._buckets.values())

    def push(self, request: Request) -> None:
        self._buckets.setdefault(request.shape_key, []).append(request)

    def pending_for(self, tenant: str) -> int:
        return sum(
            1
            for bucket in self._buckets.values()
            for r in bucket
            if r.tenant == tenant
        )

    def tenants_waiting(self) -> set[str]:
        return {
            r.tenant for bucket in self._buckets.values() for r in bucket
        }

    def oldest_for(self, tenant: str) -> Request | None:
        """The tenant's earliest-arrived queued request."""
        best: Request | None = None
        for bucket in self._buckets.values():
            for r in bucket:
                if r.tenant == tenant and (
                    best is None or r.arrival_s < best.arrival_s
                ):
                    best = r
        return best

    def iter_requests(self):
        for bucket in self._buckets.values():
            yield from bucket

    # -- batch extraction ---------------------------------------------------

    def _drain(self, key: tuple) -> list[Request]:
        bucket = self._buckets[key]
        take, rest = bucket[: self.policy.max_batch], bucket[self.policy.max_batch:]
        if rest:
            self._buckets[key] = rest
        else:
            del self._buckets[key]
        self.n_batches += 1
        if len(take) > 1:
            self.n_fused += len(take) - 1
        return take

    def take_greedy(self) -> list[Request]:
        """Drain the deepest bucket (ties: oldest head request first).

        Throughput-optimal fusion; under sustained load from one shape
        it starves minority shapes — the behaviour the ``fair`` policy
        exists to prevent.
        """
        if self.empty:
            return []
        key = max(
            self._buckets,
            key=lambda k: (len(self._buckets[k]), -self._buckets[k][0].arrival_s),
        )
        return self._drain(key)

    def take_for(self, tenant: str) -> list[Request]:
        """Drain the bucket holding ``tenant``'s oldest request.

        The chosen tenant's request leads the batch; compatible requests
        of *other* tenants in the same bucket still fuse in behind it
        (cross-tenant fusion keeps the overhead amortization).
        """
        head = self.oldest_for(tenant)
        if head is None:
            return []
        bucket = self._buckets[head.shape_key]
        # lead with the chosen request, preserve FIFO for the rest
        bucket.remove(head)
        bucket.insert(0, head)
        return self._drain(head.shape_key)

    @property
    def mean_batch_size(self) -> float:
        dispatched = self.n_fused + self.n_batches
        return dispatched / self.n_batches if self.n_batches else 0.0
