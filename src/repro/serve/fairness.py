"""Weighted fair queueing across tenants (start-time fair queueing).

The dispatch-order half of the ``fair`` policy (its placement half is
:class:`~repro.runtime.schedulers.fair.FairShareScheduler`).  Each
tenant carries a *virtual time*: its consumed service seconds divided by
its weight.  Dispatch always picks the backlogged tenant with the least
virtual time, so a tenant flooding the queue only runs ahead of others
in proportion to its weight, while a light tenant's occasional request
is served almost immediately — its virtual time trails the heavy
tenant's by construction.

Two classic subtleties are handled the standard SFQ way:

- **no banked credit**: an idle tenant's virtual time is floored when it
  next becomes active — against the minimum over currently backlogged
  tenants, or against the queue's monotone virtual clock (the largest
  virtual time ever dispatched or charged) when nobody is backlogged —
  so a tenant
  cannot hoard service by staying quiet (or by having every request
  shed at admission) and then monopolize the machine;
- **work conservation**: the queue never idles capacity to enforce
  shares — when only one tenant is backlogged it gets everything.
"""

from __future__ import annotations

from typing import Iterable, Mapping


class WeightedFairQueue:
    """Per-tenant weighted virtual-time accounting."""

    def __init__(self, weights: Mapping[str, float] | None = None) -> None:
        self._weights = {str(k): float(v) for k, v in (weights or {}).items()}
        for tenant, w in self._weights.items():
            if w <= 0:
                raise ValueError(
                    f"tenant {tenant!r} weight must be positive, got {w}"
                )
        self._vtime: dict[str, float] = {}
        self._active: set[str] = set()
        #: monotone queue virtual clock — the largest virtual time any
        #: tenant has been dispatched at or charged to; the activation
        #: floor when nobody is backlogged, so credit cannot be banked
        #: across a fully-idle queue
        self._vclock = 0.0

    def weight_of(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def vtime_of(self, tenant: str) -> float:
        return self._vtime.get(tenant, 0.0)

    def activate(self, tenant: str) -> None:
        """Tenant has queued work again: floor its virtual time so idle
        periods do not bank credit."""
        if tenant in self._active:
            return
        if self._active:
            floor = min(self._vtime.get(t, 0.0) for t in self._active)
        else:
            floor = self._vclock
        self._vtime[tenant] = max(self._vtime.get(tenant, 0.0), floor)
        self._active.add(tenant)

    def deactivate(self, tenant: str) -> None:
        """Tenant's queue drained (its accumulated vtime is retained)."""
        self._active.discard(tenant)

    def pick(self, backlogged: Iterable[str]) -> str | None:
        """The backlogged tenant with least virtual time (tie: name)."""
        best: str | None = None
        for tenant in backlogged:
            self.activate(tenant)
            if best is None or (
                (self.vtime_of(tenant), tenant) < (self.vtime_of(best), best)
            ):
                best = tenant
        if best is not None:
            self._vclock = max(self._vclock, self.vtime_of(best))
        return best

    def charge(self, tenant: str, service_s: float) -> None:
        """Debit ``service_s`` seconds of machine time to ``tenant``."""
        if service_s < 0:
            raise ValueError(f"service_s must be >= 0, got {service_s}")
        self._vtime[tenant] = (
            self._vtime.get(tenant, 0.0) + service_s / self.weight_of(tenant)
        )
        # charges land after the pick, so the clock must follow them too:
        # otherwise a queue that drains right after a long dispatch would
        # let the next arrival restart from the stale pre-charge clock
        self._vclock = max(self._vclock, self._vtime[tenant])
