"""Admission control: bounded queues, backpressure and load shedding.

An open-loop tenant can offer load beyond machine capacity indefinitely;
without admission control the dispatch queue, and with it every
admitted request's waiting time, grows without bound (queueing collapse).
The controller bounds two quantities at arrival time:

- **queue depth** — requests admitted but not yet finished (dispatch
  queue plus the engine's in-flight tasks, via the engine's
  ``n_inflight`` introspection), optionally also per tenant so one
  flooding tenant exhausts only its own quota;
- **predicted backlog seconds** — the committed work ahead of the
  busiest worker (``backlog_seconds``) plus a
  :class:`~repro.runtime.perfmodel.PerfModel` estimate of the queued,
  not-yet-dispatched requests.  This is the performance-aware half: the
  same learned model that drives ``dmda`` placement prices the queue.

Over-threshold arrivals are **shed** (rejected immediately — the client
sees a fast failure) or **delayed** (held in a backpressure buffer and
re-examined when load drains; a bounded patience turns stale delayed
requests into sheds).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class AdmissionOutcome(Enum):
    ADMIT = "admit"
    SHED = "shed"
    DELAY = "delay"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Thresholds and the over-load reaction.

    ``None`` thresholds are unlimited; the default policy admits
    everything (the unbounded baseline the experiments compare against).
    """

    #: total admitted-but-unfinished requests tolerated
    max_queue_depth: int | None = None
    #: admitted-but-unfinished requests tolerated per tenant
    max_queue_per_tenant: int | None = None
    #: predicted backlog (seconds of work) tolerated at arrival
    max_backlog_s: float | None = None
    #: "shed" rejects over-threshold arrivals; "delay" buffers them
    on_overload: str = "shed"
    #: delay mode: buffered requests older than this are shed
    max_delay_s: float = float("inf")

    def __post_init__(self) -> None:
        if self.on_overload not in ("shed", "delay"):
            raise ValueError(
                f"on_overload must be 'shed' or 'delay', got {self.on_overload!r}"
            )
        for name in ("max_queue_depth", "max_queue_per_tenant"):
            v = getattr(self, name)
            if v is not None and v < 1:
                raise ValueError(f"{name} must be >= 1, got {v}")
        if self.max_backlog_s is not None and self.max_backlog_s <= 0:
            raise ValueError("max_backlog_s must be positive")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")

    @property
    def bounded(self) -> bool:
        return (
            self.max_queue_depth is not None
            or self.max_queue_per_tenant is not None
            or self.max_backlog_s is not None
        )


class AdmissionController:
    """Applies one :class:`AdmissionPolicy` against live engine state."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy or AdmissionPolicy()
        #: admitted-but-unfinished request count, total and per tenant
        self._depth = 0
        self._tenant_depth: dict[str, int] = {}
        self.n_admitted = 0
        self.n_shed = 0
        self.n_delayed = 0

    # -- bookkeeping (the server reports request lifecycle) -----------------

    def note_admitted(self, tenant: str) -> None:
        self.n_admitted += 1
        self._depth += 1
        self._tenant_depth[tenant] = self._tenant_depth.get(tenant, 0) + 1

    def note_finished(self, tenant: str) -> None:
        self._depth -= 1
        self._tenant_depth[tenant] -= 1

    def note_shed(self) -> None:
        self.n_shed += 1

    def note_delayed(self) -> None:
        """Count a request's *first* deferral (retries do not re-count)."""
        self.n_delayed += 1

    def queue_depth(self, tenant: str | None = None) -> int:
        if tenant is None:
            return self._depth
        return self._tenant_depth.get(tenant, 0)

    # -- the decision -------------------------------------------------------

    def decide(
        self,
        tenant: str,
        now: float,
        arrival_s: float,
        predicted_backlog_s: float,
    ) -> AdmissionOutcome:
        """Admission decision for one arrival at virtual time ``now``.

        ``predicted_backlog_s`` is the server-computed estimate (engine
        committed backlog + perfmodel-priced pending queue).  In delay
        mode a request that has already waited past ``max_delay_s`` is
        shed instead of re-buffered.
        """
        p = self.policy
        over = False
        if p.max_queue_depth is not None and self._depth >= p.max_queue_depth:
            over = True
        if (
            p.max_queue_per_tenant is not None
            and self.queue_depth(tenant) >= p.max_queue_per_tenant
        ):
            over = True
        if p.max_backlog_s is not None and predicted_backlog_s > p.max_backlog_s:
            over = True
        if not over:
            return AdmissionOutcome.ADMIT
        if p.on_overload == "delay" and (now - arrival_s) < p.max_delay_s:
            return AdmissionOutcome.DELAY
        return AdmissionOutcome.SHED
