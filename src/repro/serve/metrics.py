"""Live per-tenant serving metrics (``CompositionServer(metrics=...)``).

The end-of-run :class:`~repro.serve.slo.SloReport` answers "how did the
run go"; this module answers "how is it going *right now*": every
request outcome updates counters and latency histograms in the shared
:class:`~repro.obs.metrics.MetricsRegistry`, and per-tenant latency
quantile gauges are recomputed with the *same* exact-interpolation
:func:`~repro.serve.slo.percentile` the SLO report uses — so the final
gauge snapshot agrees with ``slo_report(trace)`` to the bit, which the
integration suite asserts.

Serving metric catalogue (tenant-labelled unless noted):

===================================  =================  =================
metric                               labels             type
===================================  =================  =================
repro_requests_total                 tenant, outcome    counter
repro_request_latency_seconds        tenant             histogram
repro_request_latency_quantile_sec…  tenant, q          gauge (p50/95/99)
repro_request_queue_wait_seconds     tenant             histogram
repro_tenant_queue_depth             tenant             gauge
repro_server_queue_depth             —                  gauge
repro_server_inflight                —                  gauge
===================================  =================  =================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.serve.slo import percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.stats import RequestRecord
    from repro.serve.admission import AdmissionController

#: latency quantiles kept live per tenant (percent, SLO-report aligned)
QUANTILES = (50.0, 95.0, 99.0)


class ServingMetrics:
    """Per-tenant request accounting into a shared metrics registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._requests = registry.counter(
            "repro_requests_total",
            help="Requests by final outcome (completed/shed/failed)",
            labelnames=("tenant", "outcome"),
        )
        self._latency = registry.histogram(
            "repro_request_latency_seconds",
            help="End-to-end latency (arrival to completion)",
            unit="seconds",
            labelnames=("tenant",),
        )
        self._queue_wait = registry.histogram(
            "repro_request_queue_wait_seconds",
            help="Admission plus batch-queue wait before dispatch",
            unit="seconds",
            labelnames=("tenant",),
        )
        self._quantile = registry.gauge(
            "repro_request_latency_quantile_seconds",
            help="Exact latency quantiles over all completed requests "
            "(same interpolation as the SLO report)",
            unit="seconds",
            labelnames=("tenant", "q"),
        )
        self._tenant_depth = registry.gauge(
            "repro_tenant_queue_depth",
            help="Admitted-but-unfinished requests per tenant",
            labelnames=("tenant",),
        )
        self._depth = registry.gauge(
            "repro_server_queue_depth",
            help="Admitted-but-unfinished requests, all tenants",
        )
        self._inflight = registry.gauge(
            "repro_server_inflight",
            help="Dispatched tasks not yet completed",
        )
        #: completed-request latencies per tenant — the exact-quantile
        #: basis (histograms alone only give bucket-resolution answers)
        self._latencies: dict[str, list[float]] = {}

    # -- request outcomes ---------------------------------------------------

    def note_request(self, rec: "RequestRecord") -> None:
        """Account one finalized request record (any outcome)."""
        if rec.shed:
            outcome = "shed"
        elif rec.failed:
            outcome = "failed"
        else:
            outcome = "completed"
        self._requests.inc(tenant=rec.tenant, outcome=outcome)
        if outcome != "completed":
            return
        latency = rec.latency
        self._latency.observe(latency, tenant=rec.tenant)
        self._queue_wait.observe(rec.queue_wait, tenant=rec.tenant)
        latencies = self._latencies.setdefault(rec.tenant, [])
        latencies.append(latency)
        for q in QUANTILES:
            self._quantile.set(
                percentile(latencies, q), tenant=rec.tenant, q=int(q)
            )

    # -- load state ---------------------------------------------------------

    def sample_queues(
        self, admission: "AdmissionController", inflight: int
    ) -> None:
        """Refresh the queue-depth gauges from the admission state."""
        self._depth.set(admission.queue_depth())
        for tenant in self._latencies:
            self._tenant_depth.set(
                admission.queue_depth(tenant), tenant=tenant
            )
        self._inflight.set(inflight)

    def register_tenant(self, tenant: str) -> None:
        """Pre-create the tenant's series so gauges exist from t=0."""
        self._latencies.setdefault(tenant, [])
        self._tenant_depth.set(0, tenant=tenant)

    # -- views ---------------------------------------------------------------

    def latency_quantile(self, tenant: str, q: float) -> float:
        """Current exact latency quantile for one tenant (seconds)."""
        return percentile(self._latencies.get(tenant, []), q)

    def n_completed(self, tenant: str) -> int:
        return len(self._latencies.get(tenant, []))
