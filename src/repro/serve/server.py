"""The CompositionServer: multi-tenant serving over one Engine.

Turns the single-application :class:`~repro.runtime.runtime.Runtime`
into a composition *service*: several tenants' client sessions submit
component invocations concurrently; the server admits (or sheds) each
arrival, coalesces compatible invocations into batches, orders dispatch
either for throughput (greedy deepest-batch) or per-tenant weighted
fairness, and accounts every request's latency decomposition into the
execution trace for the SLO report.

The serving loop is itself a discrete-event simulation in the engine's
virtual time: arrivals and completions are heap events; dispatching a
request submits its task, and because the engine computes task timelines
eagerly, the task's completion time is known at dispatch and becomes the
next event.  A bounded number of in-flight tasks (``max_inflight``)
keeps the dispatch queue meaningful — that queue is where admission
depth, batching and fairness act.

Injected hardware faults (PR 1) are honored end to end: a task that
exhausts its :class:`~repro.runtime.engine.RecoveryPolicy` budget
surfaces as a *failed request* in the tenant's SLO report — the server
keeps serving other tenants instead of crashing.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import PeppherError, UnrecoverableTaskError
from repro.hw.faults import FaultModel
from repro.hw.description import Machine
from repro.obs.suite import MetricsSuite
from repro.runtime.engine import RecoveryPolicy
from repro.runtime.perfmodel import PerfModel
from repro.runtime.runtime import Runtime
from repro.runtime.schedulers import (
    FairShareScheduler,
    Scheduler,
    warn_scheduler_instance,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuning.store import PerfModelStore
from repro.runtime.stats import RequestRecord
from repro.serve.admission import (
    AdmissionController,
    AdmissionOutcome,
    AdmissionPolicy,
)
from repro.serve.batching import BatchPolicy, Coalescer
from repro.serve.client import Request, TenantSpec, make_client
from repro.serve.fairness import WeightedFairQueue
from repro.serve.metrics import ServingMetrics
from repro.serve.slo import SloReport, slo_report

#: event kinds; completions sort before arrivals at equal times so freed
#: capacity is visible to the arrival's admission decision
_COMPLETION, _ARRIVAL = 0, 1


class CompositionServer:
    """Multi-tenant composition service on one simulated machine.

    Parameters
    ----------
    machine:
        The machine to serve on (see :mod:`repro.hw.presets`).
    tenants:
        One :class:`~repro.serve.client.TenantSpec` per tenant; names
        must be unique.  Weights feed the ``fair`` dispatch path.
    scheduler:
        Placement policy name (resolved via
        :func:`~repro.runtime.schedulers.make_scheduler` together with
        ``scheduler_options``).  ``"fair"`` additionally switches
        dispatch ordering from throughput-greedy batching to per-tenant
        weighted fair queueing, and receives the tenants' weights
        automatically.  A bulk policy (``"lookahead"``) switches
        dispatch to batch-as-window planning: every coalesced
        (cross-tenant) batch is submitted whole, planned as one DAG
        window, and committed in a single flush — see
        ``docs/PLANNER.md``.  Passing a pre-built :class:`Scheduler`
        instance is deprecated (one-shot ``DeprecationWarning``).
    scheduler_options:
        Extra keyword arguments for the named policy.
    admission:
        The :class:`~repro.serve.admission.AdmissionPolicy`; the default
        admits everything (unbounded baseline).
    batching:
        The :class:`~repro.serve.batching.BatchPolicy` (coalescing cap).
    max_inflight:
        Tasks allowed in flight before dispatch pauses; defaults to
        twice the machine's worker count.
    dispatch_overhead_s:
        Host virtual time per *batch* dispatched — the per-request
        overhead batching amortizes.
    check:
        Validate the finished trace against the run invariants at
        shutdown (see :mod:`repro.check`); ``None`` defers to the
        process-wide default.
    metrics:
        Live observability (see :mod:`repro.obs`): ``True`` for a fresh
        default :class:`~repro.obs.MetricsSuite`, a suite to reuse one,
        a dict of suite keyword arguments (e.g. ``{"period_s": 1e-2}``),
        or ``False``/``None`` (default) for no metrics.  The attached
        suite (``server.metrics``) exposes engine metrics plus live
        per-tenant request counters, latency histograms, and SLO
        quantile gauges whose final values match the end-of-run
        :func:`~repro.serve.slo.slo_report`.
    """

    def __init__(
        self,
        machine: Machine,
        tenants: Sequence[TenantSpec],
        scheduler: str | Scheduler = "fair",
        admission: AdmissionPolicy | None = None,
        batching: BatchPolicy | None = None,
        seed: int = 0,
        noise_sigma: float = 0.0,
        run_kernels: bool = False,
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        max_inflight: int | None = None,
        dispatch_overhead_s: float = 5e-6,
        perfmodel: PerfModel | None = None,
        scheduler_options: Mapping[str, object] | None = None,
        store: "PerfModelStore | None" = None,
        check: bool | None = None,
        metrics: "bool | dict | MetricsSuite | None" = None,
        exec_backend: "str | object | None" = None,
    ) -> None:
        if not tenants:
            raise PeppherError("a composition server needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise PeppherError(f"tenant names must be unique, got {names}")
        self.tenants = list(tenants)
        weights = {t.name: t.weight for t in self.tenants}
        if isinstance(scheduler, str):
            # resolve by name so the hand-off to Runtime stays on the
            # unified string + options form
            opts = dict(scheduler_options or {})
            if scheduler == "fair":
                opts.setdefault("weights", weights)
            self.fair_dispatch = scheduler == "fair"
            sched_kwargs: dict = {
                "scheduler": scheduler,
                "scheduler_options": opts,
            }
        else:
            warn_scheduler_instance("CompositionServer")
            if scheduler_options:
                raise PeppherError(
                    "scheduler_options only apply when scheduler is given by name"
                )
            self.fair_dispatch = scheduler.name == "fair"
            sched_kwargs = {"scheduler": scheduler}
        self.runtime = Runtime(
            machine,
            seed=seed,
            noise_sigma=noise_sigma,
            run_kernels=run_kernels,
            faults=faults,
            recovery=recovery,
            perfmodel=perfmodel,
            store=store,
            check=check,
            exec_backend=exec_backend,
            **sched_kwargs,
        )
        self.engine = self.runtime.engine
        #: bulk (window-planning) policies defer placement until a
        #: window flush, so dispatch submits whole batches and settles
        #: request accounting after one flush per batch; per-request
        #: transfer attribution then comes from transfer events (the
        #: eager path's "transfers appended during this submit" slicing
        #: no longer applies once staging is deferred)
        self._bulk = bool(getattr(self.engine.scheduler, "is_bulk", False))
        self._task_transfer_s: dict[int, float] = {}
        if self._bulk:
            self.engine.events.subscribe("transfer", self._note_transfer)
        self.metrics = MetricsSuite.create(metrics)
        self.serving_metrics: ServingMetrics | None = None
        if self.metrics is not None:
            self.metrics.attach(self.engine)
            self.serving_metrics = ServingMetrics(self.metrics.registry)
            for spec in self.tenants:
                self.serving_metrics.register_tenant(spec.name)
        self.admission = AdmissionController(admission)
        self.coalescer = Coalescer(batching)
        self.wfq = WeightedFairQueue(weights)
        if max_inflight is None:
            max_inflight = 2 * len(machine.units)
        if max_inflight < 1:
            raise PeppherError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self.dispatch_overhead_s = float(dispatch_overhead_s)
        # serving state
        self._clients = {t.name: make_client(self.runtime, t) for t in self.tenants}
        self._events: list[tuple[float, int, int, object]] = []
        self._event_seq = count()
        self._delayed: list[Request] = []
        self._inflight = 0
        #: per shape: (footprint, variant name, size) of the last task,
        #: so queued requests are priced with the live PerfModel
        self._shape_info: dict[tuple, tuple] = {}
        #: observed-mean fallback while the perfmodel is uncalibrated
        self._shape_obs: dict[tuple, tuple[int, float]] = {}

    # -- introspection ------------------------------------------------------

    @property
    def trace(self):
        return self.runtime.trace

    @property
    def now(self) -> float:
        return self.runtime.now

    def queue_depth(self) -> int:
        """Admitted-but-unfinished requests (dispatch queue + in flight)."""
        return self.admission.queue_depth()

    # -- the serving run ----------------------------------------------------

    def run(self) -> SloReport:
        """Serve every tenant's offered load to completion; return SLOs."""
        for spec in self.tenants:
            for req in self._clients[spec.name].arrivals():
                self._push(req.arrival_s, _ARRIVAL, req)
        while self._events:
            t, _, kind, payload = heapq.heappop(self._events)
            if kind == _COMPLETION:
                self._on_completion(t, payload)
            else:
                self._on_arrival(t, payload)
            self._retry_delayed(t)
            self._dispatch(t)
            if self.serving_metrics is not None:
                self.serving_metrics.sample_queues(
                    self.admission, self._inflight
                )
        return slo_report(self.trace)

    def shutdown(self) -> float:
        return self.runtime.shutdown()

    def __enter__(self) -> "CompositionServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.shutdown()
        except PeppherError:
            if exc_type is None:
                raise

    # -- event handlers -----------------------------------------------------

    def _push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time, next(self._event_seq), kind, payload))

    def _record_request(self, rec: RequestRecord) -> RequestRecord:
        """Account one finalized request: trace plus live metrics."""
        self.trace.record_request(rec)
        if self.serving_metrics is not None:
            self.serving_metrics.note_request(rec)
        return rec

    def _on_arrival(self, t: float, req: Request) -> None:
        outcome = self.admission.decide(
            req.tenant, t, req.arrival_s, self._predicted_backlog(t)
        )
        if outcome is AdmissionOutcome.ADMIT:
            self.admission.note_admitted(req.tenant)
            self.wfq.activate(req.tenant)
            self.coalescer.push(req)
        elif outcome is AdmissionOutcome.DELAY:
            if not req.delayed:
                req.delayed = True
                self.admission.note_delayed()
            self._delayed.append(req)
        else:
            self.admission.note_shed()
            self._record_request(
                RequestRecord.make(
                    tenant=req.tenant,
                    req_id=req.req_id,
                    codelet=req.codelet_name,
                    arrival_time=req.arrival_s,
                    shed=True,
                    delayed=req.delayed,
                )
            )

    def _on_completion(self, t: float, payload) -> None:
        req, rec = payload
        self._inflight -= 1
        self.admission.note_finished(req.tenant)
        if self.coalescer.pending_for(req.tenant) == 0:
            self.wfq.deactivate(req.tenant)
        nxt = self._clients[req.tenant].on_complete(req, t)
        if nxt is not None:
            self._push(nxt.arrival_s, _ARRIVAL, nxt)

    def _retry_delayed(self, t: float) -> None:
        if not self._delayed:
            return
        still: list[Request] = []
        for req in sorted(self._delayed, key=lambda r: r.arrival_s):
            outcome = self.admission.decide(
                req.tenant, t, req.arrival_s, self._predicted_backlog(t)
            )
            if outcome is AdmissionOutcome.ADMIT:
                self.admission.note_admitted(req.tenant)
                self.wfq.activate(req.tenant)
                self.coalescer.push(req)
            elif outcome is AdmissionOutcome.DELAY:
                still.append(req)
            else:
                self.admission.note_shed()
                self._record_request(
                    RequestRecord.make(
                        tenant=req.tenant,
                        req_id=req.req_id,
                        codelet=req.codelet_name,
                        arrival_time=req.arrival_s,
                        shed=True,
                        delayed=True,
                    )
                )
        self._delayed = still

    # -- dispatch -----------------------------------------------------------

    def _dispatch(self, t: float) -> None:
        while self._inflight < self.max_inflight and not self.coalescer.empty:
            if self.fair_dispatch:
                tenant = self.wfq.pick(self.coalescer.tenants_waiting())
                batch = self.coalescer.take_for(tenant) if tenant else []
            else:
                batch = self.coalescer.take_greedy()
            if not batch:
                break
            # one dispatcher: the per-batch overhead serializes on the
            # host clock, which is exactly what coalescing amortizes
            self.engine.clock.advance_to(t)
            self.engine.clock.advance(self.dispatch_overhead_s)
            if self._bulk:
                self._submit_batch_bulk(batch)
            else:
                for req in batch:
                    self._submit_one(req, len(batch))

    def _note_transfer(self, ev) -> None:
        task = ev.task
        if task is not None:
            rec = ev.record
            tid = task.task_id
            self._task_transfer_s[tid] = self._task_transfer_s.get(tid, 0.0) + (
                rec.end_time - rec.start_time
            )

    def _submit_batch_bulk(self, batch: Sequence[Request]) -> None:
        """Plan one coalesced (cross-tenant) batch as one DAG window.

        Every request's task is submitted deferred, then a single
        :meth:`~repro.runtime.engine.Engine.flush_window` plans and
        commits the whole batch jointly, so the planner sees all
        cross-tenant work at once.  Accounting runs afterwards, when
        each task's timeline is known; a task whose recovery budget was
        exhausted during the flush surfaces as a failed request exactly
        like on the eager path.
        """
        dispatch_time = self.engine.clock.now
        staged: list[tuple[Request, object]] = []
        for req in batch:
            try:
                staged.append((req, req.submit(self.runtime)))
            except UnrecoverableTaskError:
                # the window auto-flushed mid-batch and a task exhausted
                # its recovery budget; the raising submit loses its task
                # reference, so settle this request as failed directly
                # (same attribution the eager path makes)
                staged.append((req, None))
        try:
            self.engine.flush_window()
        except UnrecoverableTaskError:
            # the flush commits every plannable task before re-raising
            # the first recovery failure; per-request failure is settled
            # below from each task's own outcome
            pass
        for req, task in staged:
            self._finalize_one(req, task, dispatch_time, len(batch))

    def _finalize_one(self, req: Request, task, dispatch_time: float,
                      batch_size: int) -> None:
        if task is None or task.chosen_variant is None:
            # fault recovery exhausted during the window flush
            self._inflight += 1
            rec = RequestRecord.make(
                tenant=req.tenant,
                req_id=req.req_id,
                codelet=req.codelet_name,
                arrival_time=req.arrival_s,
                failed=True,
                delayed=req.delayed,
                dispatch_time=dispatch_time,
                batch_size=batch_size,
            )
            self._record_request(rec)
            self._push(self.engine.clock.now, _COMPLETION, (req, rec))
            return
        transfer_s = self._task_transfer_s.pop(task.task_id, 0.0)
        service = task.end_time - task.start_time
        self.wfq.charge(req.tenant, service)
        sched = self.engine.scheduler
        if isinstance(sched, FairShareScheduler):
            sched.note_service(req.tenant, service)
        size = float(sum(h.nbytes for h in task.handles))
        self._shape_info[req.shape_key] = (
            task.footprint(),
            task.chosen_variant.name,
            size,
        )
        n, mean = self._shape_obs.get(req.shape_key, (0, 0.0))
        self._shape_obs[req.shape_key] = (n + 1, mean + (service - mean) / (n + 1))
        rec = RequestRecord.make(
            tenant=req.tenant,
            req_id=req.req_id,
            codelet=req.codelet_name,
            arrival_time=req.arrival_s,
            delayed=req.delayed,
            dispatch_time=dispatch_time,
            start_time=task.start_time,
            end_time=task.end_time,
            transfer_s=transfer_s,
            batch_size=batch_size,
            task_id=task.task_id,
        )
        self._record_request(rec)
        self._inflight += 1
        self._push(task.end_time, _COMPLETION, (req, rec))

    def _submit_one(self, req: Request, batch_size: int) -> None:
        dispatch_time = self.engine.clock.now
        n_transfers = len(self.trace.transfers)
        try:
            task = req.submit(self.runtime)
        except UnrecoverableTaskError:
            # fault recovery exhausted: a per-tenant SLO miss, not a crash
            self._inflight += 1
            rec = RequestRecord.make(
                tenant=req.tenant,
                req_id=req.req_id,
                codelet=req.codelet_name,
                arrival_time=req.arrival_s,
                failed=True,
                delayed=req.delayed,
                dispatch_time=dispatch_time,
                batch_size=batch_size,
            )
            self._record_request(rec)
            self._push(self.engine.clock.now, _COMPLETION, (req, rec))
            return
        transfer_s = sum(
            tr.end_time - tr.start_time
            for tr in self.trace.transfers[n_transfers:]
        )
        service = task.end_time - task.start_time
        self.wfq.charge(req.tenant, service)
        sched = self.engine.scheduler
        if isinstance(sched, FairShareScheduler):
            sched.note_service(req.tenant, service)
        if task.chosen_variant is not None:
            size = float(sum(h.nbytes for h in task.handles))
            self._shape_info[req.shape_key] = (
                task.footprint(),
                task.chosen_variant.name,
                size,
            )
        n, mean = self._shape_obs.get(req.shape_key, (0, 0.0))
        self._shape_obs[req.shape_key] = (n + 1, mean + (service - mean) / (n + 1))
        rec = RequestRecord.make(
            tenant=req.tenant,
            req_id=req.req_id,
            codelet=req.codelet_name,
            arrival_time=req.arrival_s,
            delayed=req.delayed,
            dispatch_time=dispatch_time,
            start_time=task.start_time,
            end_time=task.end_time,
            transfer_s=transfer_s,
            batch_size=batch_size,
            task_id=task.task_id,
        )
        self._record_request(rec)
        self._inflight += 1
        self._push(task.end_time, _COMPLETION, (req, rec))

    # -- backlog prediction -------------------------------------------------

    def _estimate_service(self, req: Request) -> float:
        """Predicted execution seconds for one queued request."""
        info = self._shape_info.get(req.shape_key)
        if info is not None:
            footprint, variant, size = info
            est = self.engine.perf.predict(footprint, variant, size)
            if est is not None:
                return est
        n, mean = self._shape_obs.get(req.shape_key, (0, 0.0))
        return mean if n else 0.0

    def _predicted_backlog(self, t: float) -> float:
        """Seconds of work ahead of a new arrival: committed engine
        backlog plus the perfmodel-priced dispatch queue, normalised by
        the usable worker count."""
        committed = self.engine.backlog_seconds(t)
        queued = sum(
            self._estimate_service(r) for r in self.coalescer.iter_requests()
        )
        workers = sum(
            1
            for u in self.engine.machine.units
            if self.engine.worker_usable(u.unit_id)
        )
        return committed + (queued / workers if workers else queued)
