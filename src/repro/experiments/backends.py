"""Analytical-vs-measured differential for the execution backends.

The simulated engine predicts variant timings from analytic device cost
models; :mod:`repro.exec` actually *runs* the kernels and wall-clocks
them.  This harness runs the same component invocations through a
:class:`~repro.exec.thread.ThreadPoolBackend` (composed-app kernels are
closures, so the process pool is out) and compares the two populations
per codelet, per variant, per size rung:

- **scale-normalized model error** — analytical and wall-clock times
  live in different time bases (a simulated Fermi GPU vs. this host's
  CPU running NumPy), so raw relative error is meaningless; we fit one
  global scale factor (geometric mean of wall/analytical ratios) per
  component and report the residual relative error after scaling.
- **variant-choice agreement** — the metric that matters for dynamic
  composition: at each rung, does the variant the *analytical* model
  would pick (the dmda choice) coincide with the wall-clock winner?
  Disagreements are expected and informative: the analytical model
  speaks for the paper's hardware, the measurement for this host.

``python -m repro.experiments.backends`` writes
``benchmarks/results/BENCH_backends.json``; ``--smoke`` shrinks the
ladder for CI and the exit code is non-zero when the differential could
not collect any measured sample (backend wiring regression).
"""

from __future__ import annotations

import argparse
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.apps import sgemm, spmv
from repro.composer.glue import lower_component
from repro.errors import SchedulingError
from repro.exec import ThreadPoolBackend
from repro.hw.presets import platform_c2050
from repro.runtime.runtime import Runtime


@dataclass
class RungRow:
    """One (size rung, variant) comparison."""

    ctx: dict
    variant: str
    analytical_s: float
    measured_s: float


@dataclass
class ComponentDiff:
    """Differential outcome for one component."""

    component: str
    rows: list[RungRow] = field(default_factory=list)
    #: per-rung (analytical winner, measured winner)
    choices: list[tuple[str, str]] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def scale(self) -> float:
        """Geometric-mean wall/analytical ratio (the time-base bridge)."""
        ratios = [
            r.measured_s / r.analytical_s
            for r in self.rows
            if r.analytical_s > 0 and r.measured_s > 0
        ]
        if not ratios:
            return float("nan")
        return math.exp(sum(math.log(x) for x in ratios) / len(ratios))

    def errors(self) -> list[float]:
        """Per-row relative error after global scaling."""
        s = self.scale
        if math.isnan(s):
            return []
        return [
            abs(r.measured_s - s * r.analytical_s) / r.measured_s
            for r in self.rows
            if r.measured_s > 0
        ]

    @property
    def agreement(self) -> float:
        """Fraction of rungs where both models pick the same variant."""
        if not self.choices:
            return float("nan")
        hits = sum(1 for a, m in self.choices if a == m)
        return hits / len(self.choices)

    def to_dict(self) -> dict:
        errs = self.errors()
        return {
            "component": self.component,
            "n_rows": len(self.rows),
            "scale_wall_over_analytical": self.scale,
            "mean_scaled_rel_error": (sum(errs) / len(errs)) if errs else None,
            "max_scaled_rel_error": max(errs) if errs else None,
            "choice_agreement": self.agreement,
            "choices": [
                {"analytical": a, "measured": m} for a, m in self.choices
            ],
            "rows": [
                {
                    "ctx": r.ctx,
                    "variant": r.variant,
                    "analytical_s": r.analytical_s,
                    "measured_s": r.measured_s,
                }
                for r in self.rows
            ],
            "skipped": self.skipped,
        }


def run_component(
    name: str,
    interface,
    implementations,
    make_operands: Callable,
    ladder: Sequence[Mapping[str, object]],
    reps: int = 2,
    seed: int = 0,
) -> ComponentDiff:
    """Run every selectable variant at every rung on the thread backend.

    Each repetition uses a fresh eager single-variant runtime (the
    calibration driver's pattern) so both populations carry identical
    footprints; durations are read straight off the completed task
    (analytical) and the joined measurement (wall-clock).
    """
    codelet = lower_component(interface, implementations)
    diff = ComponentDiff(component=name)
    run_index = 0
    with ThreadPoolBackend() as backend:
        for ctx in ladder:
            ctx = dict(ctx)
            per_variant: dict[str, tuple[float, float]] = {}
            for variant in codelet.variants:
                if not variant.selectable(ctx):
                    diff.skipped.append(f"{variant.name}@{ctx}: guard")
                    continue
                restricted = codelet.restricted([variant.name])
                ana: list[float] = []
                wall: list[float] = []
                try:
                    for _ in range(reps):
                        rt = Runtime(
                            platform_c2050(),
                            scheduler="eager",
                            seed=seed + run_index,
                            noise_sigma=0.0,
                            run_kernels=True,
                            exec_backend=backend,
                        )
                        run_index += 1
                        operands, scalar_args = make_operands(ctx, rt)
                        task = rt.submit(
                            restricted,
                            operands,
                            ctx=ctx,
                            scalar_args=scalar_args,
                            sync=True,
                            name=f"diff:{variant.name}",
                        )
                        ana.append(task.end_time - task.start_time)
                        if rt.measurements:
                            wall.append(rt.measurements[-1].wall_s)
                        rt.shutdown()
                except SchedulingError:
                    diff.skipped.append(f"{variant.name}@{ctx}: infeasible")
                    continue
                if not ana or not wall:
                    continue
                a = sum(ana) / len(ana)
                w = sum(wall) / len(wall)
                diff.rows.append(
                    RungRow(
                        ctx=ctx, variant=variant.name,
                        analytical_s=a, measured_s=w,
                    )
                )
                per_variant[variant.name] = (a, w)
            if len(per_variant) >= 2:
                ana_best = min(per_variant, key=lambda v: per_variant[v][0])
                wall_best = min(per_variant, key=lambda v: per_variant[v][1])
                diff.choices.append((ana_best, wall_best))
    return diff


def sgemm_ladder(sizes: Sequence[int]) -> list[dict]:
    return [{"m": s, "n": s, "k": s} for s in sizes]


def spmv_ladder(sizes: Sequence[int]) -> list[dict]:
    return [{"nrows": s, "nnz": 8 * s} for s in sizes]


def run(
    smoke: bool = False, reps: int | None = None, seed: int = 0
) -> list[ComponentDiff]:
    sizes = (32, 64, 128) if smoke else (32, 64, 128, 192, 256)
    reps = reps if reps is not None else (1 if smoke else 3)
    return [
        run_component(
            "sgemm",
            sgemm.INTERFACE,
            sgemm.IMPLEMENTATIONS,
            sgemm.training_operands,
            sgemm_ladder(sizes),
            reps=reps,
            seed=seed,
        ),
        run_component(
            "spmv",
            spmv.INTERFACE,
            spmv.IMPLEMENTATIONS,
            spmv.training_operands,
            spmv_ladder(tuple(16 * s for s in sizes)),
            reps=reps,
            seed=seed,
        ),
    ]


def format_diff(diffs: Sequence[ComponentDiff]) -> str:
    lines = ["analytical vs measured (thread backend) differential"]
    for d in diffs:
        errs = d.errors()
        mean_err = sum(errs) / len(errs) if errs else float("nan")
        lines.append(
            f"  {d.component:<8s} rows={len(d.rows):3d}  "
            f"scale={d.scale:9.3g}  "
            f"scaled rel err mean={mean_err:6.1%}  "
            f"variant-choice agreement={d.agreement:6.1%}"
        )
        for a, m in d.choices:
            if a != m:
                lines.append(
                    f"           disagreement: analytical picks {a!r}, "
                    f"wall-clock picks {m!r}"
                )
    return "\n".join(lines)


_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.backends",
        description="analytical-vs-measured execution backend differential",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="smaller ladder / fewer reps for CI"
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=_RESULTS_DIR,
        help=f"where BENCH_backends.json lands (default {_RESULTS_DIR})",
    )
    args = parser.parse_args(argv)

    diffs = run(smoke=args.smoke)
    print(format_diff(diffs))

    args.outdir.mkdir(parents=True, exist_ok=True)
    bench = args.outdir / "BENCH_backends.json"
    bench.write_text(
        json.dumps(
            {"smoke": args.smoke, "components": [d.to_dict() for d in diffs]},
            indent=1,
        )
        + "\n"
    )
    print(f"wrote {bench}")
    # gate on the wiring, not the agreement: disagreement with the
    # paper's modeled hardware is a finding, a missing measurement is a bug
    ok = all(d.rows for d in diffs)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
