"""Chaos study: cluster serving under node crashes, stragglers, partitions.

The serving study asked what one machine does under multi-tenant load;
this study puts O(10) simulated nodes behind the cluster router and
kills some of them mid-sweep.  One ablation, three runs:

- **baseline** — the full tenant mix on a healthy cluster: the SLO
  numbers failure handling is judged against;
- **chaos** — the *same seed and same offered load*, but a scripted
  chaos plan fires mid-sweep: one node crashes, one becomes a 6x
  straggler, one is partitioned and later heals.  The run exercises the
  whole resilience stack — phi-accrual detection, consistent-hash
  failover, retry backoff, hedging against the straggler, duplicate
  suppression when the healed partition delivers late completions, and
  brown-out shedding of the best-effort class while capacity is down;
- **chaos, again** — byte-identical trace digest required.  Chaos does
  not get to break determinism.

The headline metrics are *SLO under failure* (protected tenants' p99
with and without chaos, side by side) and *recovery time* (from the
crash instant until the protected tenants' sliding-window p99 is back
under budget and stays there).  The run fails — non-zero exit, for CI —
if recovery exceeds its budget, the post-recovery tail is over SLO, any
cluster invariant is violated (exactly-once, dead-node execution), or
the two chaos runs disagree.

Run ``python -m repro.experiments.cluster`` for the full O(100k)
request sweep, ``--smoke`` for a seconds-long CI version.  Everything
is virtual-time simulation: every number is deterministic.
"""

from __future__ import annotations

import argparse
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster import (
    BrownoutPolicy,
    Cluster,
    ClusterTenant,
    ClusterTrace,
    HashRing,
    HedgePolicy,
    NodeFaultModel,
    cluster_slo_report,
    recovery_stats,
)
from repro.cluster.slo import RecoveryStats
from repro.serve.slo import SloReport, format_slo_report

#: protected tenants' latency budget: well above the healthy tail,
#: well below the detection-plus-failover spike
PROTECTED_SLO_S = 1e-3
#: sliding window for the recovery-time p99 series
RECOVERY_WINDOW_S = 2e-2
RECOVERY_STEP_S = 5e-3
#: ceiling on acceptable recovery time (detection + backoff + drain)
RECOVERY_BUDGET_S = 0.25


def chaos_tenant_mix(n_requests: int, rate_hz: float, seed: int = 0) -> list[ClusterTenant]:
    """The study's tenant mix: two protected production tenants, one
    mid-priority service, one best-effort batch class (the brown-out
    victim).  ``n_requests`` and ``rate_hz`` are totals, split by the
    tenants' traffic shares."""
    shares = (0.3, 0.3, 0.25, 0.15)
    plan = [
        ("prod-a", "sgemm", 64, 2, PROTECTED_SLO_S * 1e3),
        ("prod-b", "sgemm", 96, 2, PROTECTED_SLO_S * 1e3),
        ("svc", "bfs", 200, 1, 20.0),
        ("batch", "pathfinder", 48, 0, float("inf")),
    ]
    return [
        ClusterTenant(
            name=name,
            workload=workload,
            size=size,
            rate_hz=rate_hz * share,
            n_requests=max(int(n_requests * share), 8),
            seed=seed * 101 + i,
            priority=priority,
            slo_ms=slo_ms,
        )
        for i, ((name, workload, size, priority, slo_ms), share) in enumerate(
            zip(plan, shares)
        )
    ]


def targeted_chaos(
    n_nodes: int,
    tenants: list[ClusterTenant],
    *,
    at: float,
    stagger_s: float = 0.02,
    slow_factor: float = 100.0,
    partition_for: float = 0.1,
    vnodes: int = 32,
) -> NodeFaultModel:
    """A chaos plan that hits nodes actually serving traffic.

    A random victim on a sparsely-keyed ring often serves nobody, which
    makes for a vacuous chaos test.  This plan aims each fault at a node
    actually serving traffic: the *crash* lands on the highest-priority
    tenant's primary (the transient the recovery-time metric measures),
    while the permanent *straggler* and the *partition* land on the
    lowest-priority tenants' primaries (their classes tolerate the
    degradation; the protected tail must recover).  Still fully
    deterministic: the ring is a pure function of the member set.
    """
    ring = HashRing(range(n_nodes), vnodes=vnodes)
    victims: list[int] = []

    def first_primary(specs) -> None:
        for spec in specs:
            for nid in ring.preference(spec.name):
                if nid not in victims:
                    victims.append(nid)
                    return
        # degenerate mixes: fall back to any untouched node
        victims.append(next(i for i in range(n_nodes) if i not in victims))

    by_prio = sorted(
        tenants, key=lambda s: (-getattr(s, "priority", 1), s.name)
    )
    first_primary(by_prio)  # crash: the protected class's primary
    first_primary(reversed(by_prio))  # straggler: best-effort primary
    first_primary(reversed(by_prio))  # partition: next best-effort primary
    crash, slow, part = victims[:3]
    return NodeFaultModel(
        crash_at={crash: at},
        slow_at={slow: (at + stagger_s, slow_factor)},
        partition_at={
            part: (at + 2 * stagger_s, at + 2 * stagger_s + partition_for)
        },
    )


def build_cluster(
    n_nodes: int,
    tenants: list[ClusterTenant],
    seed: int,
    node_faults: NodeFaultModel | None,
    check: bool,
) -> Cluster:
    return Cluster(
        n_nodes,
        tenants,
        seed=seed,
        replication=2,
        node_faults=node_faults,
        hedge=HedgePolicy(after_s=2e-3),
        brownout=BrownoutPolicy(high_water=3.0, low_water=1.0),
        check=check,
    )


@dataclass(frozen=True)
class TenantComparison:
    """One tenant's SLO with and without chaos, side by side."""

    tenant: str
    priority: int
    baseline_p99_ms: float
    chaos_p99_ms: float
    baseline_shed_rate: float
    chaos_shed_rate: float
    baseline_completed: int
    chaos_completed: int


@dataclass
class ChaosAblationResult:
    """Everything ``BENCH_cluster.json`` records for one ablation."""

    n_nodes: int
    n_requests: int
    rate_hz: float
    seed: int
    crash_time: float
    detected_at: float
    tenants: list[TenantComparison] = field(default_factory=list)
    recovery: RecoveryStats | None = None
    n_failovers: int = 0
    n_hedges: int = 0
    n_duplicates_suppressed: int = 0
    n_brownout_shed: int = 0
    chaos_failed: int = 0
    n_violations: int = 0
    digest: str = ""
    digest_repeat: str = ""

    @property
    def deterministic(self) -> bool:
        return bool(self.digest) and self.digest == self.digest_repeat

    @property
    def detection_latency_s(self) -> float:
        return self.detected_at - self.crash_time

    def protected(self) -> list[TenantComparison]:
        top = max(t.priority for t in self.tenants)
        return [t for t in self.tenants if t.priority == top]

    def passed(self, recovery_budget_s: float = RECOVERY_BUDGET_S) -> bool:
        """The CI gate: deterministic, invariant-clean, recovered in
        budget, protected tenants' post-recovery tail under SLO, and
        zero protected-tenant requests lost outright."""
        if not self.deterministic or self.n_violations:
            return False
        if self.recovery is None or not self.recovery.recovered:
            return False
        if self.recovery.recovery_s > recovery_budget_s:
            return False
        if (
            not math.isnan(self.recovery.p99_after_s)
            and self.recovery.p99_after_s > self.recovery.slo_s
        ):
            return False
        return all(
            t.chaos_completed > 0 and t.chaos_shed_rate < 1.0
            for t in self.protected()
        )

    def to_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "n_requests": self.n_requests,
            "rate_hz": self.rate_hz,
            "seed": self.seed,
            "crash_time": self.crash_time,
            "detected_at": self.detected_at,
            "detection_latency_ms": self.detection_latency_s * 1e3,
            "tenants": [vars(t) for t in self.tenants],
            "recovery": self.recovery.to_dict() if self.recovery else None,
            "n_failovers": self.n_failovers,
            "n_hedges": self.n_hedges,
            "n_duplicates_suppressed": self.n_duplicates_suppressed,
            "n_brownout_shed": self.n_brownout_shed,
            "chaos_failed": self.chaos_failed,
            "n_violations": self.n_violations,
            "deterministic": self.deterministic,
            "digest": self.digest,
            "passed": self.passed(),
        }


def _detected_at(trace: ClusterTrace, crashed_node: int, after: float) -> float:
    for ev in trace.events:
        if ev.kind == "dead" and ev.node == crashed_node and ev.time >= after:
            return ev.time
    return float("nan")


def run_chaos_ablation(
    n_nodes: int = 8,
    n_requests: int = 100_000,
    rate_hz: float = 12_000.0,
    seed: int = 3,
    check: bool = True,
) -> "tuple[ChaosAblationResult, SloReport, SloReport]":
    """The study: baseline vs chaos at the same seed, plus a repeat
    chaos run for the determinism digest."""
    tenants = chaos_tenant_mix(n_requests, rate_hz, seed=seed)
    # mid-sweep: the crash lands halfway through the offered window
    t_fault = 0.5 * n_requests / rate_hz
    plan = targeted_chaos(
        n_nodes,
        tenants,
        at=t_fault,
        partition_for=0.25 * n_requests / rate_hz,
    )
    (crashed_node,) = plan.crash_at

    baseline = build_cluster(n_nodes, tenants, seed, None, check).run()
    chaos_cluster = build_cluster(n_nodes, tenants, seed, plan, check)
    chaos = chaos_cluster.run()
    repeat = build_cluster(n_nodes, tenants, seed, plan, False).run()

    # the invariant sweep already ran inside .run() when check=True (it
    # raises on violation); re-run it explicitly so the bench records a
    # count either way
    from repro.check.cluster import check_cluster

    violations = check_cluster(chaos_cluster)

    base_report = cluster_slo_report(baseline)
    chaos_report = cluster_slo_report(chaos)
    protected = {
        t.name for t in tenants if t.priority == max(x.priority for x in tenants)
    }
    result = ChaosAblationResult(
        n_nodes=n_nodes,
        n_requests=sum(t.n_requests for t in tenants),
        rate_hz=rate_hz,
        seed=seed,
        crash_time=plan.crash_at[crashed_node],
        detected_at=_detected_at(chaos, crashed_node, t_fault),
        recovery=recovery_stats(
            chaos,
            fault_time=plan.crash_at[crashed_node],
            slo_s=PROTECTED_SLO_S,
            window_s=RECOVERY_WINDOW_S,
            step_s=RECOVERY_STEP_S,
            tenants=protected,
        ),
        n_failovers=chaos.n_failovers,
        n_hedges=chaos.n_hedges,
        n_duplicates_suppressed=chaos.n_duplicates_suppressed,
        n_brownout_shed=sum(
            1 for r in chaos.requests if r.shed_reason == "brownout"
        ),
        chaos_failed=chaos.n_failed,
        n_violations=len(violations),
        digest=chaos.digest(),
        digest_repeat=repeat.digest(),
    )
    for spec in tenants:
        b = base_report.for_tenant(spec.name)
        c = chaos_report.for_tenant(spec.name)
        result.tenants.append(
            TenantComparison(
                tenant=spec.name,
                priority=spec.priority,
                baseline_p99_ms=b.p99_s * 1e3,
                chaos_p99_ms=c.p99_s * 1e3,
                baseline_shed_rate=b.shed_rate,
                chaos_shed_rate=c.shed_rate,
                baseline_completed=b.n_completed,
                chaos_completed=c.n_completed,
            )
        )
    return result, base_report, chaos_report


def format_chaos_ablation(
    result: ChaosAblationResult,
    base_report: SloReport,
    chaos_report: SloReport,
) -> str:
    r = result.recovery
    lines = [
        f"Chaos ablation: {result.n_nodes} nodes, "
        f"{result.n_requests} requests at {result.rate_hz:.0f} req/s "
        f"(seed {result.seed})",
        f"crash at t={result.crash_time * 1e3:.1f}ms, detected "
        f"{result.detection_latency_s * 1e3:.2f}ms later; "
        f"{result.n_failovers} failovers, {result.n_hedges} hedges, "
        f"{result.n_duplicates_suppressed} duplicates suppressed, "
        f"{result.n_brownout_shed} brown-out sheds, "
        f"{result.chaos_failed} requests failed",
        f"protected p99: peak {r.p99_peak_s * 1e3:.2f}ms -> "
        f"recovered under {r.slo_s * 1e3:.1f}ms budget in "
        f"{r.recovery_s * 1e3:.1f}ms (steady state "
        f"{r.p99_after_s * 1e3:.2f}ms)"
        if r and r.recovered
        else "protected p99 never recovered under budget",
        f"invariants: {result.n_violations} violations; same-seed chaos "
        f"runs {'identical' if result.deterministic else 'DIVERGED'} "
        f"(digest {result.digest[:16]})",
        "",
        f"{'tenant':<8s} {'prio':>4s} {'base p99':>10s} {'chaos p99':>10s} "
        f"{'base shed':>10s} {'chaos shed':>11s} {'done':>12s}",
    ]
    for t in result.tenants:
        lines.append(
            f"{t.tenant:<8s} {t.priority:4d} {t.baseline_p99_ms:8.2f}ms "
            f"{t.chaos_p99_ms:8.2f}ms {t.baseline_shed_rate:9.1%} "
            f"{t.chaos_shed_rate:10.1%} "
            f"{t.baseline_completed}/{t.chaos_completed:>5d}"
        )
    lines.append("")
    lines.append(format_slo_report(base_report, title="baseline"))
    lines.append("")
    lines.append(format_slo_report(chaos_report, title="under chaos"))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------

_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cluster",
        description="cluster chaos study (virtual time, seeded)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sweep for CI: fewer nodes and requests, same gates",
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=_RESULTS_DIR,
        help=f"where the table and BENCH_cluster.json land "
        f"(default {_RESULTS_DIR})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        result, base_report, chaos_report = run_chaos_ablation(
            n_nodes=6, n_requests=6_000, rate_hz=10_000.0
        )
    else:
        result, base_report, chaos_report = run_chaos_ablation()

    table = format_chaos_ablation(result, base_report, chaos_report)
    args.outdir.mkdir(parents=True, exist_ok=True)
    (args.outdir / "cluster_chaos.txt").write_text(table + "\n")
    print(table)
    summary = {"smoke": args.smoke, "chaos": result.to_dict()}
    bench = args.outdir / "BENCH_cluster.json"
    bench.write_text(json.dumps(summary, indent=1) + "\n")
    print(f"\nwrote {bench}")
    if not result.passed():
        print(
            "FAILED: recovery/SLO budget blown, invariants violated, "
            "or chaos runs diverged"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
