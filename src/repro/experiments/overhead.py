"""Section V-E: runtime task overhead micro-benchmark.

The paper cites micro-benchmarking of the runtime system showing a
per-task overhead below ~2 microseconds, negligible against the gains of
performance-aware scheduling.  We measure both views of our runtime:

- **modeled (virtual) overhead**: the virtual host time charged per
  submitted task (submission + wrapper packing), which is what the
  simulated timelines in every figure include;
- **implementation (wall-clock) overhead**: the real Python time one
  empty-task submit/schedule/complete cycle costs, reported for
  transparency (a Python simulator is orders of magnitude slower than
  StarPU's C fast path; the *modeled* number is the one calibrated to
  the paper).

The module also benchmarks the :mod:`repro.obs` layer: engine
throughput with the default metrics suite (registry + samplers at the
default period) attached versus a bare engine.  The obs budget is 5%
overhead, measured in process CPU time over symmetric off/on run
sequences with a best-run-ratio estimator (each choice exists to
survive noisy shared CI machines; see :func:`run_obs_overhead`).  ``python -m repro.experiments.overhead``
writes ``benchmarks/results/BENCH_obs.json`` and exits non-zero on a
budget violation — which is what the CI ``obs`` job runs with
``--smoke``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime

#: wall-clock overhead budget for the obs layer (fraction)
OBS_BUDGET = 0.05


@dataclass(frozen=True)
class OverheadResult:
    n_tasks: int
    virtual_us_per_task: float
    wall_us_per_task: float


def empty_codelet() -> Codelet:
    """A no-op codelet with negligible modeled cost."""
    return Codelet(
        "noop",
        [
            ImplVariant("noop_cpu", Arch.CPU, lambda ctx, *a: None, lambda ctx, dev: 1e-9),
            ImplVariant("noop_cuda", Arch.CUDA, lambda ctx, *a: None, lambda ctx, dev: 1e-9),
        ],
    )


def run(n_tasks: int = 2000, seed: int = 0) -> OverheadResult:
    """Submit ``n_tasks`` empty independent tasks and amortise the cost."""
    rt = Runtime(platform_c2050(), scheduler="eager", seed=seed, noise_sigma=0.0)
    codelet = empty_codelet()
    data = np.zeros(16, dtype=np.float32)
    handles = [rt.register(data.copy(), f"d{i}") for i in range(8)]
    t0 = time.perf_counter()
    for i in range(n_tasks):
        rt.submit(codelet, [(handles[i % 8], "r")], name=f"noop{i}")
    virtual = rt.wait_for_all()
    wall = time.perf_counter() - t0
    rt.shutdown()
    return OverheadResult(
        n_tasks=n_tasks,
        virtual_us_per_task=virtual / n_tasks * 1e6,
        wall_us_per_task=wall / n_tasks * 1e6,
    )


def format_result(result: OverheadResult) -> str:
    return (
        "Section V-E: per-task runtime overhead "
        f"({result.n_tasks} empty tasks)\n"
        f"  modeled (virtual) overhead : {result.virtual_us_per_task:.3f} us/task"
        "   [paper: < 2 us]\n"
        f"  simulator wall-clock cost  : {result.wall_us_per_task:.1f} us/task"
        "   (Python implementation cost, not modeled time)"
    )


# ---------------------------------------------------------------------------
# observability-layer overhead (metrics on vs off)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ObsOverheadResult:
    """Engine throughput with and without the obs layer attached."""

    n_tasks: int
    reps: int
    base_us_per_task: float
    obs_us_per_task: float
    #: per-pair fractional overheads (one adjacent off/on pair per rep)
    pair_overheads: tuple[float, ...] = ()
    budget: float = OBS_BUDGET

    @property
    def overhead(self) -> float:
        """Fractional CPU-time overhead of metrics-on vs metrics-off.

        The ratio of the global minima (fastest obs run over fastest
        base run across all reps): CI noise — preemption, frequency
        scaling — only ever makes a run *look slower*, so the minimum
        over many runs is the consistent estimator of the undisturbed
        cost for both configurations, and their ratio converges to the
        true overhead.  Per-pair medians (kept in
        :attr:`pair_overheads` for transparency) proved too wide-tailed
        to gate CI on when the true cost sits near the budget.
        """
        if self.base_us_per_task <= 0:
            return 0.0
        return self.obs_us_per_task / self.base_us_per_task - 1.0

    @property
    def median_pair_overhead(self) -> float:
        """Median of the per-pair ratios (diagnostic, not the gate)."""
        if not self.pair_overheads:
            return self.overhead
        ratios = sorted(self.pair_overheads)
        mid = len(ratios) // 2
        if len(ratios) % 2:
            return ratios[mid]
        return (ratios[mid - 1] + ratios[mid]) / 2.0

    @property
    def within_budget(self) -> bool:
        return self.overhead <= self.budget

    def to_dict(self) -> dict:
        return {
            "n_tasks": self.n_tasks,
            "reps": self.reps,
            "base_us_per_task": self.base_us_per_task,
            "obs_us_per_task": self.obs_us_per_task,
            "pair_overheads_pct": [o * 100.0 for o in self.pair_overheads],
            "median_pair_overhead_pct": self.median_pair_overhead * 100.0,
            "overhead_pct": self.overhead * 100.0,
            "budget_pct": self.budget * 100.0,
            "within_budget": self.within_budget,
        }


def _timed_run(n_tasks: int, seed: int, metrics: bool) -> float:
    """CPU seconds for one submit/drain cycle, obs on or off.

    CPU time (``time.process_time``) rather than wall time: on shared CI
    machines wall time includes involuntary preemption, which swamps a
    few-percent effect; CPU time measures the work the obs layer
    actually adds.
    """
    rt = Runtime(platform_c2050(), scheduler="eager", seed=seed, noise_sigma=0.0)
    if metrics:
        from repro.obs import MetricsSuite

        MetricsSuite().attach(rt.engine)
    codelet = empty_codelet()
    data = np.zeros(16, dtype=np.float32)
    handles = [rt.register(data.copy(), f"d{i}") for i in range(8)]
    t0 = time.process_time()
    for i in range(n_tasks):
        rt.submit(codelet, [(handles[i % 8], "r")], name=f"noop{i}")
    rt.wait_for_all()
    cpu = time.process_time() - t0
    rt.shutdown()
    return cpu


def run_obs_overhead(
    n_tasks: int = 6000, reps: int = 9, seed: int = 0
) -> ObsOverheadResult:
    """Measure the obs layer's CPU cost on the empty-task cycle.

    Every rep runs the symmetric sequence off-on-on-off and takes the
    *minimum* per configuration: CPU-time noise on a shared machine only
    slows runs down (preemption, frequency throttling), so the min is
    the best estimate of the undisturbed cost, and the symmetric order
    cancels load drift across the rep.  The headline overhead is the
    ratio of the global minima across all reps (see
    :attr:`ObsOverheadResult.overhead` for why that estimator).
    """
    base_walls: list[float] = []
    obs_walls: list[float] = []
    pair_overheads: list[float] = []
    # one throwaway warm-up pair so import/JIT/allocator effects land
    # outside the measurement
    _timed_run(min(n_tasks, 200), seed, metrics=False)
    _timed_run(min(n_tasks, 200), seed, metrics=True)
    for rep in range(reps):
        base_a = _timed_run(n_tasks, seed + rep, metrics=False)
        obs_a = _timed_run(n_tasks, seed + rep, metrics=True)
        obs_b = _timed_run(n_tasks, seed + rep, metrics=True)
        base_b = _timed_run(n_tasks, seed + rep, metrics=False)
        base, obs = min(base_a, base_b), min(obs_a, obs_b)
        base_walls.append(base)
        obs_walls.append(obs)
        pair_overheads.append(obs / base - 1.0)
    return ObsOverheadResult(
        n_tasks=n_tasks,
        reps=reps,
        base_us_per_task=min(base_walls) / n_tasks * 1e6,
        obs_us_per_task=min(obs_walls) / n_tasks * 1e6,
        pair_overheads=tuple(pair_overheads),
    )


def format_obs_result(result: ObsOverheadResult) -> str:
    verdict = "within" if result.within_budget else "OVER"
    return (
        "Observability overhead "
        f"({result.n_tasks} empty tasks, {result.reps} alternating pairs)\n"
        f"  metrics off : {result.base_us_per_task:.1f} us/task CPU (best run)\n"
        f"  metrics on  : {result.obs_us_per_task:.1f} us/task CPU "
        "(registry + samplers at default period)\n"
        f"  overhead    : {result.overhead * 100.0:+.2f}% "
        "(ratio of best runs; median pair "
        f"{result.median_pair_overhead * 100.0:+.2f}%)  "
        f"[{verdict} the {result.budget * 100.0:.0f}% budget]"
    )


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------

_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.overhead",
        description="runtime task overhead + observability overhead",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller task count / fewer reps for CI",
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=_RESULTS_DIR,
        help=f"where BENCH_obs.json lands (default {_RESULTS_DIR})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # runs must be long enough (hundreds of ms) that machine-load
        # oscillation averages out within each rep
        base = run(n_tasks=500)
        obs = run_obs_overhead(n_tasks=3000, reps=5)
    else:
        base = run()
        obs = run_obs_overhead()
    print(format_result(base))
    print()
    print(format_obs_result(obs))

    args.outdir.mkdir(parents=True, exist_ok=True)
    bench = args.outdir / "BENCH_obs.json"
    bench.write_text(
        json.dumps(
            {
                "smoke": args.smoke,
                "task_overhead": {
                    "n_tasks": base.n_tasks,
                    "virtual_us_per_task": base.virtual_us_per_task,
                    "wall_us_per_task": base.wall_us_per_task,
                },
                "obs_overhead": obs.to_dict(),
            },
            indent=1,
        )
        + "\n"
    )
    print(f"wrote {bench}")
    return 0 if obs.within_budget else 1


if __name__ == "__main__":
    raise SystemExit(main())
