"""Section V-E: runtime task overhead micro-benchmark.

The paper cites micro-benchmarking of the runtime system showing a
per-task overhead below ~2 microseconds, negligible against the gains of
performance-aware scheduling.  We measure both views of our runtime:

- **modeled (virtual) overhead**: the virtual host time charged per
  submitted task (submission + wrapper packing), which is what the
  simulated timelines in every figure include;
- **implementation (wall-clock) overhead**: the real Python time one
  empty-task submit/schedule/complete cycle costs, reported for
  transparency (a Python simulator is orders of magnitude slower than
  StarPU's C fast path; the *modeled* number is the one calibrated to
  the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


@dataclass(frozen=True)
class OverheadResult:
    n_tasks: int
    virtual_us_per_task: float
    wall_us_per_task: float


def empty_codelet() -> Codelet:
    """A no-op codelet with negligible modeled cost."""
    return Codelet(
        "noop",
        [
            ImplVariant("noop_cpu", Arch.CPU, lambda ctx, *a: None, lambda ctx, dev: 1e-9),
            ImplVariant("noop_cuda", Arch.CUDA, lambda ctx, *a: None, lambda ctx, dev: 1e-9),
        ],
    )


def run(n_tasks: int = 2000, seed: int = 0) -> OverheadResult:
    """Submit ``n_tasks`` empty independent tasks and amortise the cost."""
    rt = Runtime(platform_c2050(), scheduler="eager", seed=seed, noise_sigma=0.0)
    codelet = empty_codelet()
    data = np.zeros(16, dtype=np.float32)
    handles = [rt.register(data.copy(), f"d{i}") for i in range(8)]
    t0 = time.perf_counter()
    for i in range(n_tasks):
        rt.submit(codelet, [(handles[i % 8], "r")], name=f"noop{i}")
    virtual = rt.wait_for_all()
    wall = time.perf_counter() - t0
    rt.shutdown()
    return OverheadResult(
        n_tasks=n_tasks,
        virtual_us_per_task=virtual / n_tasks * 1e6,
        wall_us_per_task=wall / n_tasks * 1e6,
    )


def format_result(result: OverheadResult) -> str:
    return (
        "Section V-E: per-task runtime overhead "
        f"({result.n_tasks} empty tasks)\n"
        f"  modeled (virtual) overhead : {result.virtual_us_per_task:.3f} us/task"
        "   [paper: < 2 us]\n"
        f"  simulator wall-clock cost  : {result.wall_us_per_task:.1f} us/task"
        "   (Python implementation cost, not modeled time)"
    )
