"""Fault-injection ablation: resilience of dynamic composition.

A result the paper's setup enables but never ran: because every
composed component carries *multiple* interchangeable implementation
variants, the runtime can recover from GPU faults by re-running the
failed invocation on another variant/worker (GPU -> CPU fallback).  This
study quantifies that claim on the Figure-6 workloads:

- ``fault_study`` sweeps the transient kernel-fault rate and reports,
  per scheduling policy, the success rate, retry/fallback counts and the
  makespan inflation relative to the fault-free run;
- ``device_loss_study`` kills the GPU at a chosen virtual time mid-run
  and shows graceful degradation: in-flight GPU work is requeued onto
  CPU variants, device replicas are re-sourced, and the run completes.

Both use seeded :class:`~repro.hw.faults.FaultModel` schedules, so every
number is reproducible.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvariantViolation, PeppherError, UnrecoverableTaskError
from repro.experiments.fig6 import SCENARIOS, AppScenario
from repro.hw.faults import FaultModel
from repro.hw.presets import platform_c2050
from repro.runtime import RecoveryPolicy, Runtime

#: policies compared (the same set as the scheduler ablation)
POLICIES = ("eager", "ws", "dmda")

#: default kernel-fault rates swept (0 = the fault-free baseline)
RATES = (0.0, 0.02, 0.05, 0.1)


@dataclass(frozen=True)
class FaultCell:
    """One (policy, fault-rate) measurement."""

    policy: str
    rate: float
    #: fraction of repetitions that completed despite the faults
    success_rate: float
    #: mean virtual makespan of the successful repetitions (seconds)
    makespan_s: float
    #: makespan relative to the same policy at rate 0
    inflation: float
    n_faults: int
    n_retries: int
    n_fallbacks: int
    n_recovered: int
    n_lost: int


@dataclass
class FaultStudyResult:
    """Sweep results for one application."""

    app: str
    size: int
    reps: int
    cells: list[FaultCell] = field(default_factory=list)

    def cell(self, policy: str, rate: float) -> FaultCell:
        for c in self.cells:
            if c.policy == policy and c.rate == rate:
                return c
        raise KeyError((policy, rate))


def _run_once(
    scenario: AppScenario,
    policy: str,
    faults: FaultModel | None,
    seed: int,
    size: int,
    recovery: RecoveryPolicy,
    calls: int = 1,
    check: bool | None = None,
) -> tuple[float | None, dict[str, int]]:
    """One repetition (``calls`` invocations in one session); returns
    (makespan or None on failure, fault tallies)."""
    rt = Runtime(
        platform_c2050(),
        scheduler=policy,
        seed=seed,
        faults=faults,
        recovery=recovery,
        check=check,
    )
    stats = {"faults": 0, "retries": 0, "fallbacks": 0, "recovered": 0, "lost": 0}
    try:
        codelets = scenario.make_codelets()
        for _ in range(calls):
            scenario.run_once(rt, codelets, size, seed)
        makespan = rt.shutdown()
    except InvariantViolation:
        # an illegal trace is a checker finding, never a "failed rep"
        raise
    except (UnrecoverableTaskError, PeppherError):
        makespan = None
    stats["faults"] = rt.trace.n_faults
    stats["retries"] = rt.trace.n_task_retries
    stats["fallbacks"] = rt.trace.n_fallbacks
    stats["recovered"] = rt.trace.n_tasks_recovered
    stats["lost"] = rt.trace.n_tasks_lost
    return makespan, stats


def fault_study(
    app: str = "sgemm",
    policies: tuple[str, ...] = POLICIES,
    rates: tuple[float, ...] = RATES,
    size_index: int = 0,
    reps: int = 3,
    calls: int = 8,
    seed: int = 0,
    transfer_rate_scale: float = 0.2,
    recovery: RecoveryPolicy | None = None,
    check: bool | None = None,
) -> FaultStudyResult:
    """Makespan and success rate vs. fault rate across schedulers.

    Each cell runs ``reps`` repetitions of one Figure-6 application at
    ``sizes[size_index]``, with ``calls`` component invocations per
    repetition (several invocations per session give the fault schedule
    enough attempts to actually strike at low rates); transfers fault at
    ``transfer_rate_scale`` times the kernel rate (corruption is rarer
    than kernel failure on real hardware).
    """
    scenario = SCENARIOS[app]
    size = scenario.sizes[size_index]
    recovery = recovery or RecoveryPolicy()
    result = FaultStudyResult(app=app, size=size, reps=reps)
    baseline: dict[str, float] = {}
    for policy in policies:
        for rate in rates:
            makespans: list[float] = []
            tallies = {"faults": 0, "retries": 0, "fallbacks": 0,
                       "recovered": 0, "lost": 0}
            for rep in range(reps):
                faults = (
                    FaultModel(
                        kernel_fault_rate=rate,
                        transfer_fault_rate=rate * transfer_rate_scale,
                        seed=seed + rep,
                    )
                    if rate > 0
                    else None
                )
                makespan, stats = _run_once(
                    scenario, policy, faults, seed + rep, size, recovery,
                    calls=calls, check=check,
                )
                if makespan is not None:
                    makespans.append(makespan)
                for k in tallies:
                    tallies[k] += stats[k]
            mean = float(np.mean(makespans)) if makespans else float("nan")
            if rate == 0.0:
                baseline[policy] = mean
            base = baseline.get(policy, mean)
            result.cells.append(
                FaultCell(
                    policy=policy,
                    rate=rate,
                    success_rate=len(makespans) / reps,
                    makespan_s=mean,
                    inflation=mean / base if base and base > 0 else float("nan"),
                    n_faults=tallies["faults"],
                    n_retries=tallies["retries"],
                    n_fallbacks=tallies["fallbacks"],
                    n_recovered=tallies["recovered"],
                    n_lost=tallies["lost"],
                )
            )
    return result


def format_fault_study(result: FaultStudyResult) -> str:
    lines = [
        f"ABL-F1: fault sweep on {result.app} (size {result.size}, "
        f"{result.reps} reps/cell; inflation is vs. the same policy at rate 0)",
        f"{'policy':<8s} {'rate':>6s} {'ok':>5s} {'makespan':>12s} "
        f"{'inflate':>8s} {'faults':>7s} {'retries':>8s} {'fallbk':>7s} "
        f"{'lost':>5s}",
    ]
    for c in result.cells:
        lines.append(
            f"{c.policy:<8s} {c.rate:6.2f} {c.success_rate:5.0%} "
            f"{c.makespan_s * 1e3:10.3f}ms {c.inflation:8.3f} "
            f"{c.n_faults:7d} {c.n_retries:8d} {c.n_fallbacks:7d} "
            f"{c.n_lost:5d}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# device-loss scenario
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeviceLossRow:
    """One scripted GPU-loss run."""

    policy: str
    #: virtual time the GPU died, as a fraction of the fault-free makespan
    loss_fraction: float
    completed: bool
    makespan_s: float
    inflation: float
    n_replicas_recovered: int
    n_retries: int
    tasks_by_arch: dict[str, int]


def device_loss_study(
    app: str = "sgemm",
    policies: tuple[str, ...] = POLICIES,
    loss_fractions: tuple[float, ...] = (0.25, 0.5, 0.75),
    size_index: int = 0,
    seed: int = 0,
    check: bool | None = None,
) -> list[DeviceLossRow]:
    """Kill the GPU partway through the run; measure graceful degradation.

    The loss time is scripted at a fraction of each policy's fault-free
    makespan, so "the GPU died halfway" means the same thing for every
    policy regardless of how fast it would have finished.
    """
    scenario = SCENARIOS[app]
    size = scenario.sizes[size_index]
    rows: list[DeviceLossRow] = []
    for policy in policies:
        base, _ = _run_once(
            scenario, policy, None, seed, size, RecoveryPolicy(), check=check
        )
        assert base is not None  # fault-free run must succeed
        for frac in loss_fractions:
            machine = platform_c2050()
            gpu_unit = machine.gpu_units[0].unit_id
            faults = FaultModel(
                device_loss_at={gpu_unit: base * frac}, seed=seed
            )
            rt = Runtime(
                platform_c2050(), scheduler=policy, seed=seed, faults=faults,
                check=check,
            )
            completed = True
            try:
                scenario.run_once(rt, scenario.make_codelets(), size, seed)
                makespan = rt.shutdown()
            except InvariantViolation:
                raise
            except PeppherError:
                completed = False
                makespan = float("nan")
            rows.append(
                DeviceLossRow(
                    policy=policy,
                    loss_fraction=frac,
                    completed=completed,
                    makespan_s=makespan,
                    inflation=makespan / base if completed else float("nan"),
                    n_replicas_recovered=rt.trace.n_replicas_recovered,
                    n_retries=rt.trace.n_task_retries,
                    tasks_by_arch=rt.trace.tasks_by_arch(),
                )
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.faults",
        description="fault-injection ablation (virtual time, seeded)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep for CI: two policies, two rates, one rep, "
        "with trace invariant checking on",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate every run's trace at shutdown (implied by --smoke)",
    )
    parser.add_argument("--app", default="sgemm", choices=sorted(SCENARIOS))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    check = True if (args.check or args.smoke) else None
    if args.smoke:
        study = fault_study(
            app=args.app,
            policies=("eager", "dmda"),
            rates=(0.0, 0.05),
            reps=1,
            calls=2,
            seed=args.seed,
            check=check,
        )
        rows = device_loss_study(
            app=args.app,
            policies=("eager", "dmda"),
            loss_fractions=(0.5,),
            seed=args.seed,
            check=check,
        )
    else:
        study = fault_study(app=args.app, seed=args.seed, check=check)
        rows = device_loss_study(app=args.app, seed=args.seed, check=check)
    print(format_fault_study(study))
    print()
    print(format_device_loss_study(rows))
    if check:
        print("\ntrace invariant checking: every run validated at shutdown")
    return 0


def format_device_loss_study(rows: list[DeviceLossRow]) -> str:
    lines = [
        "ABL-F2: scripted GPU loss mid-run (inflation vs. fault-free makespan)",
        f"{'policy':<8s} {'lost@':>6s} {'done':>5s} {'makespan':>12s} "
        f"{'inflate':>8s} {'replicas':>9s} {'retries':>8s}  tasks-by-arch",
    ]
    for r in rows:
        arch = ", ".join(f"{a}: {n}" for a, n in sorted(r.tasks_by_arch.items()))
        lines.append(
            f"{r.policy:<8s} {r.loss_fraction:6.2f} "
            f"{'yes' if r.completed else 'NO':>5s} "
            f"{r.makespan_s * 1e3:10.3f}ms {r.inflation:8.3f} "
            f"{r.n_replicas_recovered:9d} {r.n_retries:8d}  {arch}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    raise SystemExit(main())
