"""Experiment harnesses reproducing every table and figure of the paper.

Each module owns one artefact (see DESIGN.md's per-experiment index) and
exposes ``run(...) -> result`` plus a ``format_*`` printer producing the
same rows/series the paper reports.  The pytest benchmarks under
``benchmarks/`` are thin wrappers over these harnesses.

========================  =====================================
module                    paper artefact
========================  =====================================
``table1``                Table I (programmer LOC, tool vs direct)
``fig3``                  Figure 3 (smart-container copy elision)
``fig5``                  Figure 5 (hybrid SpMV speedups)
``fig6``                  Figure 6 (OpenMP/CUDA/TGPA, two platforms)
``fig7``                  Figure 7 (ODE solver runtime overhead)
``overhead``              section V-E (per-task runtime overhead)
``ablations``             scheduler / container / narrowing studies
``faults``                fault-injection / recovery resilience study
``backends``              analytical-vs-measured exec differential
``engine_bench``          engine submit/schedule/complete throughput
========================  =====================================
"""

__all__ = [
    "ablations",
    "backends",
    "engine_bench",
    "faults",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "overhead",
    "table1",
]
