"""Coarse-vs-detailed device-model ablation across the device zoo.

The detailed tier (:mod:`repro.hw.model`) prices GPU kernels from SM
occupancy, an L1/L2 hit-rate-blended bandwidth and instruction-class
latencies instead of the coarse tier's flat efficiency scalars.  The
question this experiment answers is not "are the numbers different"
(they are, by construction) but **does the extra fidelity change what
the schedulers decide** — and does the answer depend on the GPU
generation, which is the whole point of having a zoo.

For every zoo preset (``fermi``/``kepler``/``pascal``/``volta``), three
kernel archetypes and both schedulers (dmda, lookahead), we run the same
serial task chain at both fidelity tiers on pre-calibrated performance
models and record the steady-state (variant, arch) choice:

- **sgemm** — regular, compute-bound.  GPUs should win at every tier on
  every generation; a flip here would be a calibration bug.
- **spmv** — irregular, memory-bound.  The detailed tier's
  latency-hiding term punishes low-occupancy gather kernels far more
  than a flat efficiency scalar does.
- **resample** — branchy, compute-bound (particle-filter resampling).
  On Fermi (few warps, 600-cycle global latency, issue width 1) the
  detailed tier prices the GPU *below* the CPU gang, flipping dmda's
  placement; on Volta (full occupancy, short latencies) the GPU keeps
  winning at either tier.

Gates (all hard; the process exits non-zero on failure):

- ``flip_found`` — at least one (app, preset) where a scheduler's
  steady-state choice differs between tiers;
- ``sgemm_stable`` — sgemm never flips (the detailed tier must not
  wreck the obvious case);
- ``tiers_priced_differently`` — for every preset, at least one app's
  makespan differs between tiers (the knobs actually reach pricing).

``python -m repro.experiments.devices`` writes
``benchmarks/results/BENCH_devices.json``; ``--smoke`` shortens the
chains for CI.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.apps.costkit import gpu_time, ncores_of, openmp_time
from repro.hw.devices import AccessPattern
from repro.hw.model import KernelProfile
from repro.hw.presets import machine
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.perfmodel import PerfModel

PRESETS = ("fermi", "kepler", "pascal", "volta")
TIERS = ("coarse", "detailed")
SCHEDULERS = ("dmda", "lookahead")

#: CPU cores per zoo machine (one drives the GPU -> 5 CPU workers)
N_CPU_CORES = 6

CHAIN_LINKS = 16
CHAIN_LINKS_SMOKE = 6

#: lookahead window/beam — small, the chain has two placements per task
WINDOW = 6
BEAM = 8


# ---------------------------------------------------------------------------
# Kernel archetypes.  Costs are the shared costkit rooflines evaluated on
# the *actual* device spec, so they respond to the attached device model;
# the CUDA variants carry explicit kernel profiles for the detailed tier.
# ---------------------------------------------------------------------------

SGEMM_N = 1024  # matrix dim: 2n^3 flops, 3 * 4n^2 bytes
SPMV_NNZ = 6_000_000  # 2 flops/nnz, ~8 B/nnz + row pointers
RESAMPLE_N = 2_000_000  # particles: ~400 flops and 16 B each


def _sgemm_codelet() -> Codelet:
    flops = 2.0 * SGEMM_N**3
    nbytes = 3 * 4 * SGEMM_N**2
    profile = KernelProfile(
        threads_per_block=256,
        regs_per_thread=48,
        shared_mem_per_block=16 * 1024,
        mix={"fma": 0.70, "alu": 0.12, "ldst_shared": 0.10, "ldst_global": 0.06, "branch": 0.02},
    )

    def fn(ctx, y):
        y += 1.0

    return Codelet(
        "dev_sgemm",
        [
            ImplVariant(
                "dev_sgemm_omp",
                Arch.OPENMP,
                fn,
                lambda ctx, dev: openmp_time(
                    dev, ncores_of(ctx), flops, nbytes, AccessPattern.REGULAR
                ),
            ),
            ImplVariant(
                "dev_sgemm_cuda",
                Arch.CUDA,
                fn,
                lambda ctx, dev: gpu_time(
                    dev, flops, nbytes, AccessPattern.REGULAR, profile=profile
                ),
                kernel_profile=profile,
            ),
        ],
    )


def _spmv_codelet() -> Codelet:
    flops = 2.0 * SPMV_NNZ
    nbytes = 8 * SPMV_NNZ  # value + column index per nonzero
    profile = KernelProfile(
        threads_per_block=128,
        regs_per_thread=28,
        mix={"fma": 0.18, "alu": 0.27, "ldst_global": 0.45, "branch": 0.10},
    )

    def fn(ctx, y):
        y += 1.0

    return Codelet(
        "dev_spmv",
        [
            ImplVariant(
                "dev_spmv_omp",
                Arch.OPENMP,
                fn,
                lambda ctx, dev: openmp_time(
                    dev, ncores_of(ctx), flops, nbytes, AccessPattern.IRREGULAR
                ),
            ),
            ImplVariant(
                "dev_spmv_cuda",
                Arch.CUDA,
                fn,
                lambda ctx, dev: gpu_time(
                    dev, flops, nbytes, AccessPattern.IRREGULAR, profile=profile
                ),
                kernel_profile=profile,
            ),
        ],
    )


def _resample_codelet() -> Codelet:
    flops = 400.0 * RESAMPLE_N
    nbytes = 16 * RESAMPLE_N
    profile = KernelProfile(
        threads_per_block=128,
        regs_per_thread=40,
        shared_mem_per_block=4 * 1024,
        mix={"fma": 0.20, "alu": 0.30, "ldst_global": 0.15, "sfu": 0.05, "branch": 0.30},
    )

    def fn(ctx, y):
        y += 1.0

    return Codelet(
        "dev_resample",
        [
            ImplVariant(
                "dev_resample_omp",
                Arch.OPENMP,
                fn,
                lambda ctx, dev: openmp_time(
                    dev, ncores_of(ctx), flops, nbytes, AccessPattern.BRANCHY
                ),
            ),
            ImplVariant(
                "dev_resample_cuda",
                Arch.CUDA,
                fn,
                lambda ctx, dev: gpu_time(
                    dev, flops, nbytes, AccessPattern.BRANCHY, profile=profile
                ),
                kernel_profile=profile,
            ),
        ],
    )


APPS = {
    "sgemm": _sgemm_codelet,
    "spmv": _spmv_codelet,
    "resample": _resample_codelet,
}

#: operand length per app (float32 elements), sized to the traffic above
OPERAND_ELEMS = {
    "sgemm": 3 * SGEMM_N**2,
    "spmv": 2 * SPMV_NNZ,
    "resample": 4 * RESAMPLE_N,
}


# ---------------------------------------------------------------------------
# One arm: calibrate, run the chain, read the steady-state choice.
# ---------------------------------------------------------------------------

def _calibrate(mach, codelet: Codelet, n_elems: int) -> PerfModel:
    """Pre-train the performance model: dmda's exploration visits every
    variant; with zero noise the learned means equal the tier's ground
    truth exactly."""
    pm = PerfModel()
    rt = Runtime(
        mach,
        scheduler="dmda",
        perfmodel=pm,
        seed=0,
        noise_sigma=0.0,
        run_kernels=False,
    )
    for i in range(6):
        h = rt.register(
            np.zeros(n_elems, dtype=np.float32), f"warm_{codelet.name}_{i}"
        )
        rt.submit(codelet, [(h, "rw")], ctx={"n": n_elems})
    rt.wait_for_all()
    rt.shutdown()
    return pm


def _scheduler_kwargs(scheduler: str) -> dict:
    if scheduler == "dmda":
        return {"scheduler": "dmda"}
    return {
        "scheduler": "lookahead",
        "scheduler_options": {"window_size": WINDOW, "beam_width": BEAM},
    }


def run_arm(preset: str, tier: str, app: str, scheduler: str, n_links: int) -> dict:
    """Run one (preset, tier, app, scheduler) chain; report the choice."""
    mach = machine(preset, fidelity=tier, n_cpu_cores=N_CPU_CORES)
    codelet = APPS[app]()
    n_elems = OPERAND_ELEMS[app]
    pm = _calibrate(mach, codelet, n_elems)

    rt = Runtime(
        machine(preset, fidelity=tier, n_cpu_cores=N_CPU_CORES),
        perfmodel=pm,
        seed=0,
        noise_sigma=0.0,
        run_kernels=False,
        **_scheduler_kwargs(scheduler),
    )
    h = rt.register(np.zeros(n_elems, dtype=np.float32), f"{app}_chain")
    for _ in range(n_links):
        rt.submit(codelet, [(h, "rw")], ctx={"n": n_elems})
    makespan = rt.wait_for_all()

    # steady-state choice: the variant the scheduler settles on for the
    # back half of the chain (the front may amortise the initial PCIe
    # crossing or explore)
    tail = list(rt.trace.tasks)[n_links // 2:]
    variants = {rec.variant for rec in tail}
    archs = {rec.arch for rec in tail}
    rt.shutdown()
    return {
        "preset": preset,
        "tier": tier,
        "app": app,
        "scheduler": scheduler,
        "makespan_s": makespan,
        "choice_variant": sorted(variants)[0] if len(variants) == 1 else "mixed",
        "choice_arch": sorted(archs)[0] if len(archs) == 1 else "mixed",
    }


def run(smoke: bool = False) -> dict:
    n_links = CHAIN_LINKS_SMOKE if smoke else CHAIN_LINKS
    arms: dict[str, dict] = {}
    for preset in PRESETS:
        for app in APPS:
            for scheduler in SCHEDULERS:
                for tier in TIERS:
                    key = f"{preset}/{app}/{scheduler}/{tier}"
                    arms[key] = run_arm(preset, tier, app, scheduler, n_links)

    # flips: (preset, app, scheduler) whose steady-state choice differs
    # between tiers
    flips = []
    sgemm_flips = []
    priced_differently = {p: False for p in PRESETS}
    for preset in PRESETS:
        for app in APPS:
            for scheduler in SCHEDULERS:
                coarse = arms[f"{preset}/{app}/{scheduler}/coarse"]
                detailed = arms[f"{preset}/{app}/{scheduler}/detailed"]
                if abs(coarse["makespan_s"] - detailed["makespan_s"]) > 1e-12:
                    priced_differently[preset] = True
                if coarse["choice_variant"] != detailed["choice_variant"]:
                    flip = {
                        "preset": preset,
                        "app": app,
                        "scheduler": scheduler,
                        "coarse_choice": coarse["choice_variant"],
                        "detailed_choice": detailed["choice_variant"],
                    }
                    flips.append(flip)
                    if app == "sgemm":
                        sgemm_flips.append(flip)

    gates = {
        "flip_found": {
            "value": len(flips),
            "ok": len(flips) >= 1,
        },
        "sgemm_stable": {
            "value": len(sgemm_flips),
            "ok": len(sgemm_flips) == 0,
        },
        "tiers_priced_differently": {
            "value": sorted(p for p, v in priced_differently.items() if v),
            "ok": all(priced_differently.values()),
        },
    }
    return {
        "smoke": smoke,
        "n_chain_links": n_links,
        "n_cpu_cores": N_CPU_CORES,
        "presets": list(PRESETS),
        "apps": list(APPS),
        "schedulers": list(SCHEDULERS),
        "arms": arms,
        "flips": flips,
        "gates": gates,
        "within_budget": all(g["ok"] for g in gates.values()),
    }


def format_results(doc: dict) -> str:
    lines = ["device-model fidelity ablation (steady-state scheduler choices)"]
    for preset in doc["presets"]:
        lines.append(f"  {preset}:")
        for app in doc["apps"]:
            for scheduler in doc["schedulers"]:
                c = doc["arms"][f"{preset}/{app}/{scheduler}/coarse"]
                d = doc["arms"][f"{preset}/{app}/{scheduler}/detailed"]
                marker = "  << FLIP" if c["choice_variant"] != d["choice_variant"] else ""
                lines.append(
                    f"    {app:<9s} {scheduler:<10s} "
                    f"coarse={c['choice_arch']:<7s} "
                    f"detailed={d['choice_arch']:<7s}{marker}"
                )
    for name, g in doc["gates"].items():
        flag = "ok" if g["ok"] else "** FAILED **"
        lines.append(f"  gate {name}: {g['value']} {flag}")
    return "\n".join(lines)


_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.devices",
        description="coarse vs detailed device-model ablation over the zoo",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="shorter chains for CI"
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=_RESULTS_DIR,
        help=f"where BENCH_devices.json lands (default {_RESULTS_DIR})",
    )
    args = parser.parse_args(argv)

    doc = run(smoke=args.smoke)
    print(format_results(doc))

    args.outdir.mkdir(parents=True, exist_ok=True)
    bench = args.outdir / "BENCH_devices.json"
    bench.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {bench}")
    return 0 if doc["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
