"""Figure 7: composition-tool overhead on the Runge-Kutta ODE solver.

Execution time versus problem size (250..1000) for three builds of the
LibSolve-style solver — an application with 9 components and ~10600
invocations whose tight data dependencies make execution almost
sequential, the worst case for per-invocation overhead:

- ``Direct - CPU``: hand-written runtime code, CPU variants only;
- ``Direct - CUDA``: hand-written runtime code, CUDA variants only;
- ``Composition Tool - CUDA``: the tool-generated application (generated
  stubs + registry + smart containers), CUDA variants only.

Expected shape (log-scale y): CPU far above CUDA at large sizes; the
tool curve hugs the direct-CUDA curve — the generated composition code's
runtime-task-handling overhead is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import mains
from repro.apps import odesolver as ode
from repro.composer.recipe import Recipe
from repro.direct import odesolver_direct

#: the paper's x-axis: problem sizes of the ODE system
SIZES = (250, 500, 750, 1000)


def system_dim(size: int) -> int:
    """ODE system dimension for a Figure-7 problem size.

    LibSolve's BRUSS2D problem has ~2*N^2 equations for grid size N; we
    scale that down linearly (2 * N * 32) to keep the NumPy kernels fast
    while preserving the size ordering and the bandwidth-bound regime.
    """
    return 2 * size * 32


@dataclass(frozen=True)
class Fig7Point:
    size: int
    direct_cpu_s: float
    direct_cuda_s: float
    tool_cuda_s: float
    invocations: int

    @property
    def tool_overhead_percent(self) -> float:
        """Relative cost of the generated code vs hand-written CUDA."""
        return 100.0 * (self.tool_cuda_s - self.direct_cuda_s) / self.direct_cuda_s


def run(
    sizes: tuple[int, ...] = SIZES,
    steps: int = 588,
    seed: int = 0,
    verify: bool = False,
) -> list[Fig7Point]:
    """Measure the three curves.

    ``steps=588`` yields ~10600 component invocations, matching the
    paper's 10613 calls to 9 components.
    """
    # the tool build is composed once and reused across sizes
    app = mains.compose_app(
        "odesolver",
        recipe=Recipe(enable_only=tuple(
            f"{name}_cuda" for name in ode.COMPONENT_NAMES
        )),
    )
    points = []
    for size in sizes:
        n = system_dim(size)
        _, t_cpu, calls = odesolver_direct.main(
            n=n, steps=steps, variants=("cpu",), scheduler="eager", seed=seed
        )
        y_direct, t_cuda, _ = odesolver_direct.main(
            n=n, steps=steps, variants=("cuda",), scheduler="eager", seed=seed
        )
        y_tool, t_tool, _ = mains.odesolver_main(
            app=app, n=n, steps=steps, seed=seed
        )
        if verify:
            ref = ode.reference_solution(n, steps)
            if not (
                np.allclose(y_direct, ref, rtol=1e-3, atol=1e-4)
                and np.allclose(y_tool, ref, rtol=1e-3, atol=1e-4)
            ):
                raise AssertionError(f"size {size}: solver results diverge")
        points.append(
            Fig7Point(
                size=size,
                direct_cpu_s=t_cpu,
                direct_cuda_s=t_cuda,
                tool_cuda_s=t_tool,
                invocations=calls,
            )
        )
    return points


def format_result(points: list[Fig7Point]) -> str:
    lines = [
        "Figure 7: Runge-Kutta ODE solver execution time vs problem size",
        f"({points[0].invocations if points else '?'} invocations of 9 "
        "components per run; log-scale in the paper)",
        f"{'size':>6s} {'Direct-CPU(s)':>14s} {'Direct-CUDA(s)':>15s} "
        f"{'Tool-CUDA(s)':>13s} {'tool overhead':>14s}",
    ]
    for p in points:
        lines.append(
            f"{p.size:>6d} {p.direct_cpu_s:>14.4f} {p.direct_cuda_s:>15.4f} "
            f"{p.tool_cuda_s:>13.4f} {p.tool_overhead_percent:>13.2f}%"
        )
    lines.append(
        "expected shape: CPU >> CUDA at size; tool-CUDA ~ direct-CUDA "
        "(negligible overhead)"
    )
    return "\n".join(lines)
