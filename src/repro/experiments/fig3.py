"""Figure 3: smart-container copy elision.

The paper's worked example: four asynchronous component calls and one
vector operand on a 1-CPU + 1-GPU system, all calls executing on the
GPU.  With smart containers tracking copies, only 2 transfer operations
happen; treating each call independently (copying in and out every time,
as Kicherer et al. do) costs 7.

Also checks the inter-component-parallelism claim: the two read-only
calls (lines 10 and 12) are independent and may overlap, while the
read-after-write chain (lines 4 -> 8) serialises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.containers import Vector
from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


@dataclass(frozen=True)
class Fig3Result:
    """Transfer counts for the two strategies."""

    smart_copies: int
    smart_h2d: int
    smart_d2h: int
    naive_copies: int
    readers_overlap: bool
    values_ok: bool


def _gpu_codelet(name: str, fn) -> Codelet:
    return Codelet(
        name,
        [ImplVariant(f"{name}_cuda", Arch.CUDA, fn, lambda ctx, dev: 1e-4)],
    )


def _make_codelets():
    def comp1(ctx, v):  # line 4: write-only
        v[:] = np.arange(len(v), dtype=v.dtype)

    def comp2(ctx, v):  # line 8: read-write
        v *= 2.0

    def comp3(ctx, v):  # lines 10/12: read-only
        float(v.sum())

    return (
        _gpu_codelet("comp1", comp1),
        _gpu_codelet("comp2", comp2),
        _gpu_codelet("comp3", comp3),
    )


def run_smart(n: int = 100_000, seed: int = 0):
    """The paper's scenario with smart containers (Figure 3)."""
    rt = Runtime(platform_c2050(), scheduler="eager", seed=seed)
    comp1, comp2, comp3 = _make_codelets()
    v0 = Vector.zeros(n, runtime=rt, name="v0")  # line 2
    rt.submit(comp1, [(v0.handle, "w")], name="comp1")  # line 4
    first = float(v0[1])  # line 6: read data on host
    rt.submit(comp2, [(v0.handle, "rw")], name="comp2")  # line 8
    t3 = rt.submit(comp3, [(v0.handle, "r")], name="comp3")  # line 10
    t4 = rt.submit(comp3, [(v0.handle, "r")], name="comp3b")  # line 12
    v0[2] = 11.0  # line 14: write data on host
    rt.wait_for_all()
    values_ok = first == 1.0 and float(v0[1]) == 2.0 and float(v0[2]) == 11.0
    # the two readers are independent: neither waits for the other
    overlap = t4.start_time < t3.end_time or t3.start_time < t4.end_time
    readers_independent = (
        t3.task_id not in [d.task_id for d in t4.dependents]
        and t4.task_id not in [d.task_id for d in t3.dependents]
    )
    trace = rt.trace
    rt.shutdown()
    return trace, values_ok, overlap and readers_independent


def run_naive(n: int = 100_000, seed: int = 0):
    """The same four calls with copy-in/copy-out on every call.

    This is the raw-C/C++-parameter policy of section IV-D: without
    containers the tool cannot reason about access patterns (pointer
    aliasing), so every call uploads its operand and "always copies data
    back to the main memory before returning" — even pure readers.  Only
    the first, write-only call skips the upload: 1 + 2 + 2 + 2 = 7.
    """
    rt = Runtime(platform_c2050(), scheduler="eager", seed=seed)
    comp1, comp2, comp3 = _make_codelets()
    data = np.zeros(n, dtype=np.float32)

    def call(codelet, mode):
        # fresh registration per call = no cross-call locality; without
        # access metadata everything but a pure write is treated as rw
        handle = rt.register(data, "raw")
        rt.submit(codelet, [(handle, mode)], sync=True, name=codelet.name)
        rt.unregister(handle)

    call(comp1, "w")
    _ = data[1]  # host read needs no extra copy: data was just flushed
    call(comp2, "rw")
    call(comp3, "rw")  # conservative: reader still copied back
    call(comp3, "rw")
    data[2] = 11.0
    rt.wait_for_all()
    trace = rt.trace
    rt.shutdown()
    return trace


def run(n: int = 100_000, seed: int = 0) -> Fig3Result:
    smart_trace, values_ok, overlap = run_smart(n, seed)
    naive_trace = run_naive(n, seed)
    return Fig3Result(
        smart_copies=smart_trace.n_transfers,
        smart_h2d=smart_trace.n_h2d,
        smart_d2h=smart_trace.n_d2h,
        naive_copies=naive_trace.n_transfers,
        readers_overlap=overlap,
        values_ok=values_ok,
    )


def format_result(result: Fig3Result) -> str:
    return (
        "Figure 3: smart-container copy elision (4 calls, 1 vector, GPU)\n"
        f"  smart containers : {result.smart_copies} copies "
        f"({result.smart_h2d} h2d / {result.smart_d2h} d2h)   [paper: 2]\n"
        f"  copy-every-call  : {result.naive_copies} copies   [paper: 7]\n"
        f"  independent reads overlap: {result.readers_overlap}\n"
        f"  values consistent: {result.values_ok}"
    )
