"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper, but experiments that isolate *why* the
paper's mechanisms matter on this implementation:

- ``scheduler_study``  — eager vs random vs ws vs dm vs dmda on the
  hybrid SpMV workload (what performance-aware, data-aware scheduling
  buys, section V-D's mechanism);
- ``container_study``  — smart containers vs raw always-copy parameters
  over repeated component calls (section IV-D / IV-H);
- ``narrowing_study``  — user-guided static narrowing vs full dynamic
  composition on small calls (section IV-A's motivation: removing the
  risk/overhead of dynamic selection when the winner is known);
- ``energy_study``     — the main descriptor's optimization goal:
  min_exec_time vs min_energy on a time/energy trade-off workload;
- ``multigpu_study``   — hybrid SpMV scaling from 1 to 2 GPUs (the
  component model's multi-GPU claim).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import sgemm, spmv
from repro.composer.glue import lower_component
from repro.hw.presets import platform_c2050, platform_dual_c2050
from repro.runtime import Runtime
from repro.runtime.perfmodel import PerfModel
from repro.workloads.dense import gemm_inputs
from repro.workloads.sparse import make_matrix


# ---------------------------------------------------------------------------
# ABL1: scheduling policies on partitioned SpMV
# ---------------------------------------------------------------------------

def scheduler_study(
    policies: tuple[str, ...] = ("eager", "random", "ws", "dm", "dmda"),
    matrix: str = "Simulation",
    scale: float = 0.25,
    n_chunks: int = 24,
    seed: int = 0,
) -> dict[str, float]:
    """Virtual makespan of hybrid SpMV per scheduling policy."""
    mat = make_matrix(matrix, seed=seed, scale=scale)
    results: dict[str, float] = {}
    for policy in policies:
        perf = PerfModel()
        # two runs: the first trains history models, the second measures
        for rep, measure in ((0, False), (1, True)):
            rt = Runtime(
                platform_c2050(n_cpu_cores=5),
                scheduler=policy,
                seed=seed + rep,
                perfmodel=perf,
                run_kernels=False,
            )
            codelet = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS).without(
                ["spmv_openmp"]
            )
            hv = rt.register(mat.values, "values")
            hc = rt.register(mat.colidxs, "colidxs")
            hp = rt.register(mat.rowptr, "rowptr")
            hx = rt.register(np.ones(mat.ncols, dtype=np.float32), "x")
            hy = rt.register(np.zeros(mat.nrows, dtype=np.float32), "y")
            spmv.submit_partitioned(
                rt, codelet, hv, hc, hp, hx, hy, mat.rowptr, mat.ncols, n_chunks
            )
            rt.unpartition(hy)
            elapsed = rt.shutdown()
            if measure:
                results[policy] = elapsed
    return results


def format_scheduler_study(results: dict[str, float]) -> str:
    best = min(results.values())
    lines = ["ABL1: scheduling policies on hybrid SpMV (virtual makespan)"]
    for policy, t in sorted(results.items(), key=lambda kv: kv[1]):
        lines.append(f"  {policy:<8s} {t * 1e3:8.3f} ms   ({t / best:4.2f}x best)")
    lines.append(
        "expected: availability/model-aware policies (eager/dm/dmda) cluster "
        "at the front; random trails badly"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# ABL2: smart containers vs raw always-copy parameters
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ContainerStudyResult:
    calls: int
    smart_s: float
    smart_transfers: int
    raw_s: float
    raw_transfers: int

    @property
    def speedup(self) -> float:
        return self.raw_s / self.smart_s


def container_study(
    nrows: int = 100_000,
    calls: int = 10,
    seed: int = 0,
) -> ContainerStudyResult:
    """Repeated sgemm-free spmv calls: containers reuse device copies.

    Smart containers keep operands registered across invocations
    (section IV-H's "efficient repetitive execution"); raw NumPy
    parameters force register/sync/flush/unregister every call.
    """
    from repro.workloads.sparse import random_csr

    mat = random_csr(nrows, nrows, 8, seed=seed)
    cuda_only = [i for i in spmv.IMPLEMENTATIONS if i.platform == "cuda"]

    # --- smart containers: register once, submit many -----------------
    rt = Runtime(platform_c2050(), scheduler="eager", seed=seed, run_kernels=False)
    codelet = lower_component(spmv.INTERFACE, cuda_only)
    hv = rt.register(mat.values, "values")
    hc = rt.register(mat.colidxs, "colidxs")
    hp = rt.register(mat.rowptr, "rowptr")
    hx = rt.register(np.ones(nrows, dtype=np.float32), "x")
    hy = rt.register(np.zeros(nrows, dtype=np.float32), "y")
    for _ in range(calls):
        rt.submit(
            codelet,
            [(hv, "r"), (hc, "r"), (hp, "r"), (hx, "r"), (hy, "w")],
            ctx={"nnz": mat.nnz, "nrows": nrows, "ncols": nrows, "first": 0},
            scalar_args=(mat.nnz, nrows, nrows, 0),
        )
    rt.acquire(hy, "r")
    smart_s = rt.now
    smart_transfers = rt.trace.n_transfers
    rt.shutdown()

    # --- raw parameters: register + flush every call -------------------
    rt = Runtime(platform_c2050(), scheduler="eager", seed=seed, run_kernels=False)
    codelet = lower_component(spmv.INTERFACE, cuda_only)
    x = np.ones(nrows, dtype=np.float32)
    y = np.zeros(nrows, dtype=np.float32)
    for _ in range(calls):
        handles = [
            rt.register(mat.values, "values"),
            rt.register(mat.colidxs, "colidxs"),
            rt.register(mat.rowptr, "rowptr"),
            rt.register(x, "x"),
            rt.register(y, "y"),
        ]
        rt.submit(
            codelet,
            list(zip(handles, ("r", "r", "r", "r", "w"))),
            ctx={"nnz": mat.nnz, "nrows": nrows, "ncols": nrows, "first": 0},
            scalar_args=(mat.nnz, nrows, nrows, 0),
            sync=True,
        )
        for h in handles:
            rt.unregister(h)
    raw_s = rt.now
    raw_transfers = rt.trace.n_transfers
    rt.shutdown()
    return ContainerStudyResult(
        calls=calls,
        smart_s=smart_s,
        smart_transfers=smart_transfers,
        raw_s=raw_s,
        raw_transfers=raw_transfers,
    )


def format_container_study(result: ContainerStudyResult) -> str:
    return (
        f"ABL2: {result.calls} repeated GPU spmv calls\n"
        f"  smart containers : {result.smart_s * 1e3:8.3f} ms, "
        f"{result.smart_transfers} transfers\n"
        f"  raw parameters   : {result.raw_s * 1e3:8.3f} ms, "
        f"{result.raw_transfers} transfers\n"
        f"  container speedup: {result.speedup:.2f}x "
        "(locality reuse across invocations)"
    )


# ---------------------------------------------------------------------------
# ABL3: user-guided static narrowing vs full dynamic composition
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NarrowingStudyResult:
    calls: int
    size: int
    dynamic_s: float
    narrowed_s: float
    dynamic_wrong_picks: int

    @property
    def speedup(self) -> float:
        return self.dynamic_s / self.narrowed_s


def narrowing_study(
    size: int = 1024, calls: int = 12, seed: int = 0
) -> NarrowingStudyResult:
    """Large data-parallel sgemm: the programmer statically knows the
    GPU wins, so narrowing to CUDA removes the dynamic-selection
    calibration cost and the risk of wrong picks (section IV-A)."""
    a, b, c = gemm_inputs(size, size, size, seed=seed)

    def measure(codelet, scheduler):
        rt = Runtime(platform_c2050(), scheduler=scheduler, seed=seed,
                     run_kernels=False)
        ha = rt.register(a, "A")
        hb = rt.register(b, "B")
        hc = rt.register(c.copy(), "C")
        for _ in range(calls):
            rt.submit(
                codelet,
                [(ha, "r"), (hb, "r"), (hc, "rw")],
                ctx={"m": size, "n": size, "k": size},
                scalar_args=(size, size, size, 1.0, 0.0),
            )
        elapsed = rt.wait_for_all()
        wrong = sum(
            1 for rec in rt.trace.tasks if rec.arch != "cuda"
        )
        rt.shutdown()
        return elapsed, wrong

    full = lower_component(sgemm.INTERFACE, sgemm.IMPLEMENTATIONS)
    narrowed = full.restricted(["sgemm_cublas"])
    dynamic_s, wrong = measure(full, "dmda")
    narrowed_s, _ = measure(narrowed, "eager")
    return NarrowingStudyResult(
        calls=calls,
        size=size,
        dynamic_s=dynamic_s,
        narrowed_s=narrowed_s,
        dynamic_wrong_picks=wrong,
    )


def format_narrowing_study(result: NarrowingStudyResult) -> str:
    return (
        f"ABL3: {result.calls} sgemm({result.size}) calls, GPU statically known best\n"
        f"  full dynamic composition : {result.dynamic_s * 1e3:8.3f} ms "
        f"({result.dynamic_wrong_picks} non-CUDA picks during calibration)\n"
        f"  user-guided narrowing    : {result.narrowed_s * 1e3:8.3f} ms\n"
        f"  narrowing speedup        : {result.speedup:.2f}x on a cold model"
    )


# ---------------------------------------------------------------------------
# ABL4: optimization goal — execution time vs energy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EnergyStudyResult:
    calls: int
    time_goal_makespan_s: float
    time_goal_energy_j: float
    energy_goal_makespan_s: float
    energy_goal_energy_j: float

    @property
    def energy_saving_percent(self) -> float:
        return 100.0 * (1 - self.energy_goal_energy_j / self.time_goal_energy_j)

    @property
    def slowdown(self) -> float:
        return self.energy_goal_makespan_s / self.time_goal_makespan_s


def energy_study(calls: int = 24, n: int = 2048, seed: int = 0) -> EnergyStudyResult:
    """The Needleman-Wunsch aligner under both optimization goals.

    nw's wavefront launches leave the GPU only ~2x faster than the
    OpenMP gang, while the C2050 burns ~3x the gang's power — the regime
    where ``min_energy`` legitimately changes the placement.
    """
    from repro.apps import nw

    def run(objective):
        rt = Runtime(
            platform_c2050(),
            scheduler="dmda",
            seed=seed,
            run_kernels=False,
            scheduler_options={"objective": objective},
        )
        codelet = lower_component(nw.INTERFACE, nw.IMPLEMENTATIONS)
        handles = []
        for i in range(4):  # four independent alignments
            s1 = np.zeros(n, dtype=np.int32)
            s2 = np.zeros(n, dtype=np.int32)
            score = np.zeros((n + 1) * (n + 1), dtype=np.int32)
            handles.append(
                (
                    rt.register(s1, f"s1_{i}"),
                    rt.register(s2, f"s2_{i}"),
                    rt.register(score, f"score{i}"),
                )
            )
        for c in range(calls):
            h1, h2, hs = handles[c % 4]
            rt.submit(
                codelet,
                [(h1, "r"), (h2, "r"), (hs, "w")],
                ctx={"n": n, "penalty": 2},
                scalar_args=(n, 2),
            )
        makespan = rt.wait_for_all()
        energy = rt.trace.total_energy_j
        rt.shutdown()
        return makespan, energy

    m_time, e_time = run("min_exec_time")
    m_energy, e_energy = run("min_energy")
    return EnergyStudyResult(
        calls=calls,
        time_goal_makespan_s=m_time,
        time_goal_energy_j=e_time,
        energy_goal_makespan_s=m_energy,
        energy_goal_energy_j=e_energy,
    )


def format_energy_study(result: EnergyStudyResult) -> str:
    return (
        f"ABL4: optimization goal on {result.calls} nw calls\n"
        f"  min_exec_time : {result.time_goal_makespan_s * 1e3:9.3f} ms, "
        f"{result.time_goal_energy_j:8.3f} J\n"
        f"  min_energy    : {result.energy_goal_makespan_s * 1e3:9.3f} ms, "
        f"{result.energy_goal_energy_j:8.3f} J\n"
        f"  energy saving : {result.energy_saving_percent:.1f}% for a "
        f"{result.slowdown:.2f}x slowdown"
    )


# ---------------------------------------------------------------------------
# ABL5: multi-GPU scaling of hybrid SpMV
# ---------------------------------------------------------------------------

def multigpu_study(
    matrix: str = "Simulation",
    scale: float = 0.5,
    n_chunks: int = 32,
    seed: int = 0,
) -> dict[str, float]:
    """Hybrid SpMV makespan on 1-GPU vs 2-GPU machines."""
    mat = make_matrix(matrix, seed=seed, scale=scale)
    results: dict[str, float] = {}
    for label, machine_factory in (
        ("cpus+1gpu", lambda: platform_c2050(n_cpu_cores=5)),
        ("cpus+2gpu", lambda: platform_dual_c2050(n_cpu_cores=6)),
    ):
        perf = PerfModel()
        for rep, measure in ((0, False), (1, True)):
            rt = Runtime(
                machine_factory(), scheduler="dmda", seed=seed + rep,
                perfmodel=perf, run_kernels=False,
            )
            codelet = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS).without(
                ["spmv_openmp"]
            )
            hv = rt.register(mat.values, "values")
            hc = rt.register(mat.colidxs, "colidxs")
            hp = rt.register(mat.rowptr, "rowptr")
            hx = rt.register(np.ones(mat.ncols, dtype=np.float32), "x")
            hy = rt.register(np.zeros(mat.nrows, dtype=np.float32), "y")
            spmv.submit_partitioned(
                rt, codelet, hv, hc, hp, hx, hy, mat.rowptr, mat.ncols, n_chunks
            )
            rt.unpartition(hy)
            elapsed = rt.shutdown()
            if measure:
                results[label] = elapsed
    return results


def format_multigpu_study(results: dict[str, float]) -> str:
    one = results["cpus+1gpu"]
    two = results["cpus+2gpu"]
    return (
        "ABL5: hybrid SpMV multi-GPU scaling\n"
        f"  4 CPUs + 1 GPU : {one * 1e3:8.3f} ms\n"
        f"  4 CPUs + 2 GPU : {two * 1e3:8.3f} ms\n"
        f"  second-GPU speedup: {one / two:.2f}x"
    )


# ---------------------------------------------------------------------------
# ABL6: multi-stage composition (paper section III)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MultiStageResult:
    calls: int
    size: int
    pure_static_s: float
    static_pick: str
    multistage_s: float
    narrowed_to: tuple[str, ...]
    pure_dynamic_s: float


def multistage_study(
    calls: int = 80, nnz: int = 50_000, nrows: int = 10_000, seed: int = 0
) -> MultiStageResult:
    """Pure-static vs multi-stage vs pure-dynamic composition on a
    streaming spmv workload (fresh operands every call).

    Static dispatch tables come from prediction functions that model the
    *kernel* only, and for spmv the GPU kernel beats every CPU kernel —
    so both pure-static and statically-narrowed multi-stage composition
    keep paying PCIe transfers on every streaming call and *drop the
    OpenMP variant* that actually wins once transfers count.  Only fully
    dynamic composition, whose history models observe real (transfer-
    inclusive) behaviour, discovers it.  This is the quantified argument
    for the paper's design choice that "dynamic composition is the
    default composition mechanism in PEPPHER".
    """
    from repro.composer.ir import ComponentNode
    from repro.composer.static_comp import build_dispatch_table

    node = ComponentNode(
        interface=spmv.INTERFACE, implementations=list(spmv.IMPLEMENTATIONS)
    )
    table = build_dispatch_table(node, platform_c2050(), points_per_param=3)
    ctx = {"nnz": nnz, "nrows": nrows}
    static_pick = table.lookup(ctx)
    winners = tuple(sorted(table.winners()))
    full = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS)

    def run(codelet, scheduler):
        rt = Runtime(
            platform_c2050(), scheduler=scheduler, seed=seed, run_kernels=False
        )
        for _ in range(calls):
            # streaming: fresh operands per call, no cross-call locality
            operands, scalars = spmv.training_operands(ctx, rt)
            rt.submit(
                codelet, operands, ctx=dict(ctx), scalar_args=scalars, sync=True
            )
            rt.unregister(operands[-1][0])  # flush the fresh result home
        elapsed = rt.now
        rt.shutdown()
        return elapsed

    pure_static = run(full.restricted([static_pick]), "eager")
    multistage = run(full.restricted(list(winners)), "dmda")
    pure_dynamic = run(full, "dmda")
    return MultiStageResult(
        calls=calls,
        size=nnz,
        pure_static_s=pure_static,
        static_pick=static_pick,
        multistage_s=multistage,
        narrowed_to=winners,
        pure_dynamic_s=pure_dynamic,
    )


def format_multistage_study(result: MultiStageResult) -> str:
    return (
        f"ABL6: composition stages on {result.calls} streaming "
        f"spmv(nnz={result.size}) calls\n"
        f"  pure static ({result.static_pick:<16s})        : "
        f"{result.pure_static_s * 1e3:8.3f} ms\n"
        f"  multi-stage ({'+'.join(result.narrowed_to)}, dmda): "
        f"{result.multistage_s * 1e3:8.3f} ms\n"
        f"  pure dynamic (all variants, dmda)      : "
        f"{result.pure_dynamic_s * 1e3:8.3f} ms\n"
        "expected: kernel-only predictions keep the GPU pick (and drop the\n"
        "OpenMP variant) in both static modes; only fully dynamic composition\n"
        "discovers the transfer-inclusive winner - hence dynamic by default"
    )
