"""Engine throughput benchmark: submit → schedule → complete tasks/sec.

The discrete-event core is the hot path under every experiment and the
serving layer, so its wall-clock throughput is a regression budget worth
gating.  Two synthetic workloads bracket the dependency spectrum:

- **fan-out** — independent tasks spread over a handful of handles;
  pure submit/schedule/complete cost, no dependency chains;
- **chain** — every task read-writes one handle, so each submission
  walks the sequential-consistency dependency inference and the ready
  propagation at completion.

Kernels are skipped (``run_kernels=False``) and noise is off: this
measures the *engine*, not NumPy.  ``python -m
repro.experiments.engine_bench`` writes
``benchmarks/results/BENCH_engine.json`` and exits non-zero when either
workload falls under the conservative throughput floor (``--smoke``
uses smaller task counts for CI).
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime

#: conservative floor (tasks/second, wall clock).  The Python engine
#: sustains well over 10k tasks/s on a developer machine; the floor is
#: set an order of magnitude below that so only a genuine algorithmic
#: regression (accidental O(n^2) in submit or completion) trips it on
#: noisy shared CI hardware.
THROUGHPUT_FLOOR = 1500.0


@dataclass(frozen=True)
class WorkloadResult:
    workload: str
    n_tasks: int
    wall_s: float

    @property
    def tasks_per_s(self) -> float:
        return self.n_tasks / self.wall_s if self.wall_s > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "n_tasks": self.n_tasks,
            "wall_s": self.wall_s,
            "tasks_per_s": self.tasks_per_s,
        }


def _bench_codelet() -> Codelet:
    return Codelet(
        "bench",
        [
            ImplVariant(
                "bench_cpu", Arch.CPU, lambda ctx, *a: None, lambda ctx, dev: 1e-7
            ),
            ImplVariant(
                "bench_cuda", Arch.CUDA, lambda ctx, *a: None, lambda ctx, dev: 1e-8
            ),
        ],
    )


def _runtime(seed: int) -> Runtime:
    return Runtime(
        platform_c2050(),
        scheduler="eager",
        seed=seed,
        noise_sigma=0.0,
        run_kernels=False,
    )


def run_fanout(n_tasks: int = 5000, n_handles: int = 8, seed: int = 0) -> WorkloadResult:
    """Independent tasks over a rotating set of read-only handles."""
    rt = _runtime(seed)
    codelet = _bench_codelet()
    handles = [
        rt.register(np.zeros(64, dtype=np.float32), f"f{i}")
        for i in range(n_handles)
    ]
    t0 = time.perf_counter()
    for i in range(n_tasks):
        rt.submit(codelet, [(handles[i % n_handles], "r")], name=f"fan{i}")
    rt.wait_for_all()
    wall = time.perf_counter() - t0
    rt.shutdown()
    return WorkloadResult("fanout", n_tasks, wall)


def run_chain(n_tasks: int = 5000, seed: int = 0) -> WorkloadResult:
    """A single rw-dependency chain through one handle."""
    rt = _runtime(seed)
    codelet = _bench_codelet()
    h = rt.register(np.zeros(64, dtype=np.float32), "chain")
    t0 = time.perf_counter()
    for i in range(n_tasks):
        rt.submit(codelet, [(h, "rw")], name=f"chain{i}")
    rt.wait_for_all()
    wall = time.perf_counter() - t0
    rt.shutdown()
    return WorkloadResult("chain", n_tasks, wall)


def run(smoke: bool = False, seed: int = 0) -> list[WorkloadResult]:
    n = 1000 if smoke else 5000
    return [
        run_fanout(n_tasks=n, seed=seed),
        run_chain(n_tasks=n, seed=seed),
    ]


def format_results(results: list[WorkloadResult]) -> str:
    lines = [f"engine throughput (floor {THROUGHPUT_FLOOR:.0f} tasks/s)"]
    for r in results:
        flag = "" if r.tasks_per_s >= THROUGHPUT_FLOOR else "  ** UNDER FLOOR **"
        lines.append(
            f"  {r.workload:<8s} {r.n_tasks:6d} tasks in {r.wall_s:7.3f}s "
            f"= {r.tasks_per_s:9.0f} tasks/s{flag}"
        )
    return "\n".join(lines)


_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.engine_bench",
        description="engine submit/schedule/complete throughput",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="smaller task counts for CI"
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=_RESULTS_DIR,
        help=f"where BENCH_engine.json lands (default {_RESULTS_DIR})",
    )
    args = parser.parse_args(argv)

    results = run(smoke=args.smoke)
    print(format_results(results))

    ok = all(r.tasks_per_s >= THROUGHPUT_FLOOR for r in results)
    args.outdir.mkdir(parents=True, exist_ok=True)
    bench = args.outdir / "BENCH_engine.json"
    bench.write_text(
        json.dumps(
            {
                "smoke": args.smoke,
                "floor_tasks_per_s": THROUGHPUT_FLOOR,
                "within_budget": ok,
                "workloads": [r.to_dict() for r in results],
            },
            indent=1,
        )
        + "\n"
    )
    print(f"wrote {bench}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
