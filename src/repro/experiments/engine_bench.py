"""Engine throughput benchmark: submit → schedule → complete tasks/sec.

The discrete-event core is the hot path under every experiment and the
serving layer, so its wall-clock throughput is a regression budget worth
gating.  Two synthetic workloads bracket the dependency spectrum:

- **fan-out** — independent tasks spread over a handful of handles;
  pure submit/schedule/complete cost, no dependency chains;
- **chain** — every task read-writes one handle, so each submission
  walks the sequential-consistency dependency inference and the ready
  propagation at completion.

Kernels are skipped (``run_kernels=False``) and noise is off: this
measures the *engine*, not NumPy.

Methodology: each workload runs once untimed to warm caches (imports,
code objects, the scheduler's candidate plan), then ``reps`` timed
repetitions with the garbage collector paused around the timed region;
the *best* repetition is the reported rate.  Best-of-N over a warmed
process is the standard defense against noisy shared hardware (CI
runners, laptops under load): interference only ever makes a rep
slower, so the minimum wall time is the most repeatable estimator of
what the engine can actually sustain.

``python -m repro.experiments.engine_bench`` writes
``benchmarks/results/BENCH_engine.json`` and exits non-zero when either
workload falls under the throughput floor (``--smoke`` uses smaller
task counts for CI).  ``--profile`` additionally cProfiles one untimed
repetition per workload, writes the top functions to
``BENCH_engine_profile.txt``, and fails if a known-cold function — the
zero-subscriber event emitters, which the want-gates must skip — shows
up among the hottest frames.
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import io
import json
import pstats
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime

#: throughput floor (tasks/second, wall clock, best warmed rep).  The
#: slotted-trace / batched-dispatch engine sustains ~50-70k tasks/s on
#: both workloads on a single modern core; the floor sits >3x below
#: that so only a genuine algorithmic regression (accidental O(n^2) in
#: submit or completion, a de-optimized hot path) trips it on noisy
#: shared CI hardware, while the pre-refactor engine (~11-13k tasks/s)
#: would no longer pass.
THROUGHPUT_FLOOR = 15000.0

#: timed repetitions per workload (best is reported); the smoke run
#: uses fewer to keep CI latency down
DEFAULT_REPS = 5
SMOKE_REPS = 3


@dataclass(frozen=True)
class WorkloadResult:
    workload: str
    n_tasks: int
    wall_s: float
    reps: int = 1
    rates: tuple[float, ...] = ()

    @property
    def tasks_per_s(self) -> float:
        return self.n_tasks / self.wall_s if self.wall_s > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "n_tasks": self.n_tasks,
            "wall_s": self.wall_s,
            "tasks_per_s": self.tasks_per_s,
            "reps": self.reps,
            "rates": list(self.rates),
        }


def _bench_codelet() -> Codelet:
    return Codelet(
        "bench",
        [
            ImplVariant(
                "bench_cpu", Arch.CPU, lambda ctx, *a: None, lambda ctx, dev: 1e-7
            ),
            ImplVariant(
                "bench_cuda", Arch.CUDA, lambda ctx, *a: None, lambda ctx, dev: 1e-8
            ),
        ],
    )


def _runtime(seed: int) -> Runtime:
    return Runtime(
        platform_c2050(),
        scheduler="eager",
        seed=seed,
        noise_sigma=0.0,
        run_kernels=False,
    )


def run_fanout(n_tasks: int = 5000, n_handles: int = 8, seed: int = 0) -> WorkloadResult:
    """Independent tasks over a rotating set of read-only handles."""
    rt = _runtime(seed)
    codelet = _bench_codelet()
    handles = [
        rt.register(np.zeros(64, dtype=np.float32), f"f{i}")
        for i in range(n_handles)
    ]
    t0 = time.perf_counter()
    for i in range(n_tasks):
        rt.submit(codelet, [(handles[i % n_handles], "r")], name=f"fan{i}")
    rt.wait_for_all()
    wall = time.perf_counter() - t0
    rt.shutdown()
    return WorkloadResult("fanout", n_tasks, wall)


def run_chain(n_tasks: int = 5000, seed: int = 0) -> WorkloadResult:
    """A single rw-dependency chain through one handle."""
    rt = _runtime(seed)
    codelet = _bench_codelet()
    h = rt.register(np.zeros(64, dtype=np.float32), "chain")
    t0 = time.perf_counter()
    for i in range(n_tasks):
        rt.submit(codelet, [(h, "rw")], name=f"chain{i}")
    rt.wait_for_all()
    wall = time.perf_counter() - t0
    rt.shutdown()
    return WorkloadResult("chain", n_tasks, wall)


def _measure(fn, n_tasks: int, seed: int, reps: int) -> WorkloadResult:
    """Warm once, then take the best of ``reps`` GC-paused repetitions."""
    fn(n_tasks=min(n_tasks, 500), seed=seed)  # warm-up, untimed
    best: WorkloadResult | None = None
    rates = []
    for _ in range(reps):
        gc.collect()
        gc.disable()
        try:
            r = fn(n_tasks=n_tasks, seed=seed)
        finally:
            gc.enable()
        rates.append(r.tasks_per_s)
        if best is None or r.wall_s < best.wall_s:
            best = r
    assert best is not None
    return WorkloadResult(
        best.workload, best.n_tasks, best.wall_s, reps, tuple(rates)
    )


def run(smoke: bool = False, seed: int = 0) -> list[WorkloadResult]:
    n = 1000 if smoke else 5000
    reps = SMOKE_REPS if smoke else DEFAULT_REPS
    return [
        _measure(run_fanout, n, seed, reps),
        _measure(run_chain, n, seed, reps),
    ]


def format_results(results: list[WorkloadResult]) -> str:
    lines = [f"engine throughput (floor {THROUGHPUT_FLOOR:.0f} tasks/s)"]
    for r in results:
        flag = "" if r.tasks_per_s >= THROUGHPUT_FLOOR else "  ** UNDER FLOOR **"
        lines.append(
            f"  {r.workload:<8s} {r.n_tasks:6d} tasks in {r.wall_s:7.3f}s "
            f"= {r.tasks_per_s:9.0f} tasks/s (best of {r.reps}){flag}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# --profile: where does the engine actually spend its time?
# ---------------------------------------------------------------------------

#: how many of the most cumulative-expensive functions the summary shows
PROFILE_TOP = 20

#: functions that must NOT appear among the hottest frames of a
#: metrics-off run: the engine's want-gates are supposed to skip the
#: zero-subscriber event emitters entirely, so any emit_* frame from the
#: events module in the top of the profile means a gate regressed
_COLD_PREFIX = "emit_"
_COLD_MODULE = "events"
_COLD_TOP = 10


def _cold_offenders(stats: pstats.Stats) -> list[str]:
    """Known-cold functions found in the top-N cumulative frames."""
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda kv: kv[1][3],  # cumulative time
        reverse=True,
    )[:_COLD_TOP]
    offenders = []
    for (filename, _line, func), _stat in entries:
        if func.startswith(_COLD_PREFIX) and _COLD_MODULE in Path(filename).stem:
            offenders.append(f"{Path(filename).name}:{func}")
    return offenders


def profile_workloads(n_tasks: int, seed: int = 0) -> tuple[str, list[str]]:
    """cProfile each workload once; return (summary text, offenders)."""
    sections = []
    offenders: list[str] = []
    for fn in (run_fanout, run_chain):
        prof = cProfile.Profile()
        prof.enable()
        r = fn(n_tasks=n_tasks, seed=seed)
        prof.disable()
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats("cumulative").print_stats(PROFILE_TOP)
        offenders.extend(_cold_offenders(stats))
        sections.append(
            f"=== {r.workload} ({r.n_tasks} tasks, profiled) ===\n"
            + buf.getvalue()
        )
    text = "\n".join(sections)
    if offenders:
        text += (
            "\nKNOWN-COLD FUNCTIONS IN TOP "
            f"{_COLD_TOP}: {', '.join(offenders)}\n"
            "(zero-subscriber event emitters must be skipped by the "
            "want-gates; this is a hot-path regression)\n"
        )
    return text, offenders


_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.engine_bench",
        description="engine submit/schedule/complete throughput",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="smaller task counts for CI"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each workload, write BENCH_engine_profile.txt, and "
        "fail if a zero-subscriber event emitter shows up in the top "
        f"{_COLD_TOP} cumulative frames",
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=_RESULTS_DIR,
        help=f"where BENCH_engine.json lands (default {_RESULTS_DIR})",
    )
    args = parser.parse_args(argv)

    results = run(smoke=args.smoke)
    print(format_results(results))

    ok = all(r.tasks_per_s >= THROUGHPUT_FLOOR for r in results)
    args.outdir.mkdir(parents=True, exist_ok=True)
    bench = args.outdir / "BENCH_engine.json"
    bench.write_text(
        json.dumps(
            {
                "smoke": args.smoke,
                "floor_tasks_per_s": THROUGHPUT_FLOOR,
                "within_budget": ok,
                "workloads": [r.to_dict() for r in results],
            },
            indent=1,
        )
        + "\n"
    )
    print(f"wrote {bench}")

    if args.profile:
        text, offenders = profile_workloads(
            n_tasks=1000 if args.smoke else 5000
        )
        summary = args.outdir / "BENCH_engine_profile.txt"
        summary.write_text(text)
        print(f"wrote {summary}")
        if offenders:
            print(
                "profile gate FAILED: known-cold functions in the top "
                f"{_COLD_TOP}: {', '.join(offenders)}"
            )
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
