"""Figure 5: hybrid SpMV vs direct CUDA on six UF matrices.

The paper compares hand-written CUDA (the CUSP kernel, "direct
execution", including host<->device transfer time) against the
tool-generated hybrid-execution code using one CUDA GPU and all four
CPUs in parallel.  Hybrid wins on every matrix (up to ~2.2x) because
splitting the rows between CPUs and GPU both divides the computation and
*reduces the data volume shipped over PCIe* — the GPU-only run is
transfer-bound.

Reproduction notes: the matrices are synthetic stand-ins matching each
UF matrix's dimensions/nnz/structure class (see
:mod:`repro.workloads.sparse`); hybrid runs use the dmda scheduler with
a performance model trained by one warm-up execution (the paper's
measurements are steady-state after StarPU calibration), and the OpenMP
variant is statically narrowed out of the chunked call — partitioned
sub-tasks use the serial-CPU and CUDA variants (section IV-A's
user-guided narrowing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import spmv
from repro.composer.glue import lower_component
from repro.hw.presets import platform_c2050
from repro.runtime import Runtime
from repro.runtime.perfmodel import PerfModel
from repro.workloads.sparse import CSRMatrix, make_matrix, matrix_names

#: "all four CPUs" + the GPU: 5 cores, one driving the CUDA device
N_CPU_CORES = 5
#: row chunks for the partitioned (hybrid) invocation
N_CHUNKS = 24


@dataclass(frozen=True)
class Fig5Row:
    """One matrix's measurement."""

    matrix: str
    nnz: int
    direct_cuda_s: float
    hybrid_s: float
    gpu_chunks: int
    cpu_chunks: int

    @property
    def speedup(self) -> float:
        return self.direct_cuda_s / self.hybrid_s


def _registered(rt: Runtime, mat: CSRMatrix):
    x = np.ones(mat.ncols, dtype=np.float32)
    y = np.zeros(mat.nrows, dtype=np.float32)
    return (
        rt.register(mat.values, "values"),
        rt.register(mat.colidxs, "colidxs"),
        rt.register(mat.rowptr, "rowptr"),
        rt.register(x, "x"),
        rt.register(y, "y"),
        y,
    )


def run_direct_cuda(mat: CSRMatrix, seed: int = 0, run_kernels: bool = True):
    """Hand-written CUDA execution: one kernel, full transfers included."""
    rt = Runtime(
        platform_c2050(n_cpu_cores=N_CPU_CORES), scheduler="eager", seed=seed,
        run_kernels=run_kernels,
    )
    cuda_only = [i for i in spmv.IMPLEMENTATIONS if i.platform == "cuda"]
    codelet = lower_component(spmv.INTERFACE, cuda_only)
    hv, hc, hp, hx, hy, y = _registered(rt, mat)
    rt.submit(
        codelet,
        [(hv, "r"), (hc, "r"), (hp, "r"), (hx, "r"), (hy, "w")],
        ctx={"nnz": mat.nnz, "nrows": mat.nrows, "ncols": mat.ncols, "first": 0},
        scalar_args=(mat.nnz, mat.nrows, mat.ncols, 0),
        name="spmv",
    )
    rt.acquire(hy, "r")  # result copied back, like the paper's measurement
    elapsed = rt.now
    rt.shutdown()
    return elapsed, y


def run_hybrid(
    mat: CSRMatrix,
    seed: int = 0,
    perfmodel: PerfModel | None = None,
    n_chunks: int = N_CHUNKS,
    run_kernels: bool = True,
):
    """Tool-generated hybrid execution: partitioned sub-tasks on CPUs+GPU."""
    rt = Runtime(
        platform_c2050(n_cpu_cores=N_CPU_CORES),
        scheduler="dmda",
        seed=seed,
        perfmodel=perfmodel,
        run_kernels=run_kernels,
    )
    codelet = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS).without(
        ["spmv_openmp"]
    )
    hv, hc, hp, hx, hy, y = _registered(rt, mat)
    spmv.submit_partitioned(
        rt, codelet, hv, hc, hp, hx, hy, mat.rowptr, mat.ncols, n_chunks
    )
    rt.unpartition(hy)  # gathers chunk results to the host
    elapsed = rt.now
    trace = rt.trace
    model = rt.perfmodel
    rt.shutdown()
    by_arch = trace.tasks_by_arch()
    return elapsed, y, by_arch, model


def run(
    matrices: tuple[str, ...] | None = None,
    scale: float = 1.0,
    seed: int = 0,
    verify: bool = False,
) -> list[Fig5Row]:
    """Measure all six matrices; ``verify`` checks values vs the oracle."""
    rows = []
    for name in matrices or tuple(matrix_names()):
        mat = make_matrix(name, seed=seed, scale=scale)
        run_values = verify
        t_direct, y_direct = run_direct_cuda(mat, seed=seed, run_kernels=run_values)
        # warm-up run trains the performance model (StarPU calibration)
        _, _, _, model = run_hybrid(mat, seed=seed, run_kernels=False)
        t_hybrid, y_hybrid, by_arch, _ = run_hybrid(
            mat, seed=seed + 1, perfmodel=model, run_kernels=run_values
        )
        if verify:
            x = np.ones(mat.ncols, dtype=np.float32)
            ref = spmv.reference(mat.values, mat.colidxs, mat.rowptr, x, mat.nrows)
            if not (
                np.allclose(y_direct, ref, rtol=1e-4)
                and np.allclose(y_hybrid, ref, rtol=1e-4)
            ):
                raise AssertionError(f"matrix {name}: results diverge")
        rows.append(
            Fig5Row(
                matrix=name,
                nnz=mat.nnz,
                direct_cuda_s=t_direct,
                hybrid_s=t_hybrid,
                gpu_chunks=by_arch.get("cuda", 0),
                cpu_chunks=by_arch.get("cpu", 0),
            )
        )
    return rows


def format_result(rows: list[Fig5Row]) -> str:
    lines = [
        "Figure 5: SpMV speedup over direct CUDA (hybrid = 4 CPUs + C2050)",
        f"{'matrix':<12s} {'nnz':>10s} {'direct(ms)':>11s} {'hybrid(ms)':>11s} "
        f"{'speedup':>8s} {'gpu/cpu chunks':>15s}",
    ]
    for row in rows:
        lines.append(
            f"{row.matrix:<12s} {row.nnz:>10d} {row.direct_cuda_s * 1e3:>11.3f} "
            f"{row.hybrid_s * 1e3:>11.3f} {row.speedup:>8.2f} "
            f"{row.gpu_chunks:>7d}/{row.cpu_chunks}"
        )
    lines.append("expected shape: speedup > 1 for every matrix (paper: up to ~2.2x)")
    return "\n".join(lines)
