"""Lookahead-vs-dmda planner ablation on transfer-heavy workloads.

The lookahead planner (see :mod:`repro.composer.lookahead` and
``docs/PLANNER.md``) exists for exactly one failure mode of greedy
composition: a per-task optimum that ping-pongs an operand across PCIe
because each individual step is locally cheapest, while keeping the
operand device-resident for the *next* consumer would be globally
cheaper.  This experiment constructs that regime synthetically and
measures all three arms on identical, pre-calibrated performance models:

- **chain** — one large operand read-written by an alternating sequence
  of a GPU-friendly and a CPU-friendly codelet.  Greedy dmda bounces the
  operand host↔device every step; the planner (fusion on) keeps the
  whole chain device-resident and eats the slower GPU kernel, which wins
  once transfers dominate.  The fusion-off arm scores the conservative
  materialize-to-host composition and therefore plans the same
  ping-pong dmda does — the ablation that shows *fusion*, not the DP,
  is what pays here.
- **fanout** — independent tasks with private operands.  There is
  nothing to fuse and no global structure to exploit, so the planner
  must not *lose*: its makespan has to stay within a few percent of
  dmda's.

Every run uses a model pre-trained to calibration (the planner refuses
to plan uncalibrated windows and would just fall back to dmda), zero
noise and modeled kernels, so makespans are exact model arithmetic and
the gates are deterministic.

``python -m repro.experiments.planner`` writes
``benchmarks/results/BENCH_planner.json`` and exits non-zero when a gate
fails (``--smoke`` shrinks the chain for CI).  Gates:

- chain speedup (dmda / lookahead-fusion-on) >= ``CHAIN_SPEEDUP_MIN``;
- fanout makespan within ``FANOUT_REL_TOL`` of dmda's;
- every planned window's modeled cost <= its greedy modeled cost;
- the fusion-on chain run actually fused producer→consumer edges.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.hw.description import HOST_NODE
from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.perfmodel import PerfModel

#: minimum dmda/lookahead(fusion on) makespan ratio on the chain
CHAIN_SPEEDUP_MIN = 1.15

#: fanout: |lookahead - dmda| / dmda must stay under this
FANOUT_REL_TOL = 0.05

#: operand length (float32); large enough that one PCIe crossing
#: dominates the cheap kernels below
N_ELEMS = 4_000_000

#: planner window (chain tasks per planning window)
WINDOW = 12

#: beam width for the chain DP — wide enough that the device-resident
#: plan survives the early steps where it trails the ping-pong prefixes
BEAM = 12

CHAIN_LINKS = 48
CHAIN_LINKS_SMOKE = 12
FANOUT_TASKS = 16


def _machine():
    """One GPU plus one CPU core: the minimal ping-pong platform.

    A single CPU worker (the other core drives the GPU, StarPU-style)
    keeps the planner's candidate set small — two placements per task —
    so the beam provably retains the device-resident plan instead of
    filling up with core-symmetric ping-pong prefixes.
    """
    return platform_c2050(n_cpu_cores=2)


def _codelets() -> tuple[Codelet, Codelet, float]:
    """The alternating chain stages, with costs scaled to the PCIe time.

    With ``T`` = one host↔device crossing of the operand:

    - stage A: GPU ``0.2 T``, CPU ``2.2 T`` — GPU-friendly;
    - stage B: CPU ``0.2 T``, GPU ``1.4 T`` — CPU-friendly, but cheaper
      on the GPU than the ``1.2 T`` it costs to pull the operand home
      and run it there... *except* that greedy dmda compares exactly
      those two ends (``1.4 T`` vs ``0.2 T + 1 T``) and takes the CPU.

    Greedy therefore pays ``2.4 T`` per A+B cycle (two crossings), the
    device-resident plan ``1.6 T`` (none).
    """
    m = _machine()
    gpu_node = m.gpu_units[0].memory_node
    t_pcie = m.transfer_time(HOST_NODE, gpu_node, N_ELEMS * 4)

    def fn(ctx, y):  # modeled run: kernels never execute
        y += 1.0

    def const(cost):
        return lambda ctx, dev: cost

    stage_a = Codelet(
        "plan_stage_a",
        [
            ImplVariant("plan_a_cpu", Arch.CPU, fn, const(2.2 * t_pcie)),
            ImplVariant("plan_a_cuda", Arch.CUDA, fn, const(0.2 * t_pcie)),
        ],
    )
    stage_b = Codelet(
        "plan_stage_b",
        [
            ImplVariant("plan_b_cpu", Arch.CPU, fn, const(0.2 * t_pcie)),
            ImplVariant("plan_b_cuda", Arch.CUDA, fn, const(1.4 * t_pcie)),
        ],
    )
    return stage_a, stage_b, t_pcie


def _trained_model(codelets) -> PerfModel:
    """Pre-calibrate every variant of every codelet at the chain size.

    dmda's exploration does the work: a handful of submissions per
    codelet visits each variant ``calibration_samples`` times, and with
    zero noise the recorded durations equal the cost models exactly.
    """
    pm = PerfModel()
    rt = Runtime(
        _machine(),
        scheduler="dmda",
        perfmodel=pm,
        seed=0,
        noise_sigma=0.0,
        run_kernels=False,
    )
    for cl in codelets:
        for i in range(6):
            h = rt.register(
                np.zeros(N_ELEMS, dtype=np.float32), f"warm_{cl.name}_{i}"
            )
            rt.submit(cl, [(h, "rw")], ctx={"n": N_ELEMS})
    rt.wait_for_all()
    rt.shutdown()
    return pm


@dataclass(frozen=True)
class ArmResult:
    arm: str
    makespan: float
    n_planned_windows: int = 0
    n_fallback_windows: int = 0
    n_fused_edges: int = 0
    plan_le_greedy: bool = True

    def to_dict(self) -> dict:
        return {
            "arm": self.arm,
            "makespan_s": self.makespan,
            "n_planned_windows": self.n_planned_windows,
            "n_fallback_windows": self.n_fallback_windows,
            "n_fused_edges": self.n_fused_edges,
            "plan_le_greedy": self.plan_le_greedy,
        }


def _arm_kwargs(arm: str) -> dict:
    if arm == "dmda":
        return {"scheduler": "dmda"}
    fusion = arm.endswith("fusion_on")
    return {
        "scheduler": "lookahead",
        "scheduler_options": {
            "window_size": WINDOW,
            "beam_width": BEAM,
            "fusion": fusion,
        },
    }


def _finish(arm: str, rt: Runtime, makespan: float) -> ArmResult:
    sched = rt.scheduler
    if getattr(sched, "is_bulk", False):
        planned = [p for p in sched.plans if not p.fallback]
        res = ArmResult(
            arm,
            makespan,
            n_planned_windows=len(planned),
            n_fallback_windows=sched.n_fallback_windows,
            n_fused_edges=sched.n_fused_edges,
            plan_le_greedy=all(
                p.planned_makespan <= p.greedy_makespan + 1e-9
                for p in planned
            ),
        )
    else:
        res = ArmResult(arm, makespan)
    rt.shutdown()
    return res


def run_chain(arm: str, n_links: int) -> ArmResult:
    stage_a, stage_b, _ = _codelets()
    pm = _trained_model((stage_a, stage_b))
    rt = Runtime(
        _machine(),
        perfmodel=pm,
        seed=0,
        noise_sigma=0.0,
        run_kernels=False,
        **_arm_kwargs(arm),
    )
    h = rt.register(np.zeros(N_ELEMS, dtype=np.float32), "chain")
    for i in range(n_links):
        cl = stage_a if i % 2 == 0 else stage_b
        rt.submit(cl, [(h, "rw")], ctx={"n": N_ELEMS})
    makespan = rt.wait_for_all()
    return _finish(arm, rt, makespan)


def run_fanout(arm: str, n_tasks: int) -> ArmResult:
    stage_a, _, _ = _codelets()
    pm = _trained_model((stage_a,))
    rt = Runtime(
        _machine(),
        perfmodel=pm,
        seed=0,
        noise_sigma=0.0,
        run_kernels=False,
        **_arm_kwargs(arm),
    )
    for i in range(n_tasks):
        h = rt.register(np.zeros(N_ELEMS, dtype=np.float32), f"fan{i}")
        rt.submit(stage_a, [(h, "rw")], ctx={"n": N_ELEMS})
    makespan = rt.wait_for_all()
    return _finish(arm, rt, makespan)


ARMS = ("dmda", "lookahead_fusion_off", "lookahead_fusion_on")


def run(smoke: bool = False) -> dict:
    n_links = CHAIN_LINKS_SMOKE if smoke else CHAIN_LINKS
    chain = {arm: run_chain(arm, n_links) for arm in ARMS}
    fanout = {arm: run_fanout(arm, FANOUT_TASKS) for arm in ARMS}

    speedup = chain["dmda"].makespan / chain["lookahead_fusion_on"].makespan
    fan_rel = abs(
        fanout["lookahead_fusion_on"].makespan - fanout["dmda"].makespan
    ) / fanout["dmda"].makespan
    plans_ok = all(
        r.plan_le_greedy for r in (*chain.values(), *fanout.values())
    )
    gates = {
        "chain_speedup": {
            "value": speedup,
            "min": CHAIN_SPEEDUP_MIN,
            "ok": speedup >= CHAIN_SPEEDUP_MIN,
        },
        "fanout_rel_diff": {
            "value": fan_rel,
            "max": FANOUT_REL_TOL,
            "ok": fan_rel <= FANOUT_REL_TOL,
        },
        "plan_le_greedy": {"ok": plans_ok},
        "chain_fused_edges": {
            "value": chain["lookahead_fusion_on"].n_fused_edges,
            "ok": chain["lookahead_fusion_on"].n_fused_edges > 0,
        },
    }
    return {
        "smoke": smoke,
        "n_chain_links": n_links,
        "n_fanout_tasks": FANOUT_TASKS,
        "window_size": WINDOW,
        "beam_width": BEAM,
        "chain": {arm: r.to_dict() for arm, r in chain.items()},
        "fanout": {arm: r.to_dict() for arm, r in fanout.items()},
        "gates": gates,
        "within_budget": all(g["ok"] for g in gates.values()),
    }


def format_results(doc: dict) -> str:
    lines = ["planner ablation (virtual makespans, pre-calibrated model)"]
    for workload in ("chain", "fanout"):
        lines.append(f"  {workload}:")
        for arm, r in doc[workload].items():
            extra = ""
            if arm.startswith("lookahead"):
                extra = (
                    f"  [{r['n_planned_windows']} planned windows, "
                    f"{r['n_fused_edges']} fused edges]"
                )
            lines.append(
                f"    {arm:<22s} {r['makespan_s'] * 1e3:9.3f} ms{extra}"
            )
    for name, g in doc["gates"].items():
        bound = (
            f" (>= {g['min']})" if "min" in g
            else f" (<= {g['max']})" if "max" in g
            else ""
        )
        value = f" {g['value']:.3f}" if "value" in g else ""
        flag = "ok" if g["ok"] else "** FAILED **"
        lines.append(f"  gate {name}:{value}{bound} {flag}")
    return "\n".join(lines)


_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.planner",
        description="lookahead planner vs greedy dmda ablation",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="shorter chain for CI"
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=_RESULTS_DIR,
        help=f"where BENCH_planner.json lands (default {_RESULTS_DIR})",
    )
    args = parser.parse_args(argv)

    doc = run(smoke=args.smoke)
    print(format_results(doc))

    args.outdir.mkdir(parents=True, exist_ok=True)
    bench = args.outdir / "BENCH_planner.json"
    bench.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {bench}")
    return 0 if doc["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
