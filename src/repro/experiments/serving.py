"""Serving study: multi-tenant throughput/latency on one machine.

The paper composes one application at a time; this study asks what
happens when the composed components are put behind a service endpoint
and several tenants offer load concurrently (the ROADMAP's "serves
heavy traffic" north star).  Three questions, each one sweep:

- ``run_serving_study`` — goodput and tail latency as offered load and
  tenant count grow, per scheduling policy.  Shows the saturation knee
  and how coalescing holds goodput past it;
- ``admission_ablation`` — the same overload offered to an unbounded
  queue versus depth- and backlog-bounded admission.  Unbounded
  admission trades a 0% shed rate for unbounded p99 (queueing
  collapse); bounded admission sheds a fraction and caps the tail;
- ``fairness_ablation`` — a heavy and a light tenant of near-identical
  per-request cost.  Throughput-greedy dispatch (``eager``) starves the
  light tenant's minority shape; the ``fair`` policy's weighted fair
  queueing keeps per-tenant p99s within a small factor.

Run ``python -m repro.experiments.serving`` to regenerate the tables in
``benchmarks/results/`` plus the machine-readable ``BENCH_serve.json``
summary (``--smoke`` shrinks everything to a seconds-long CI run).

All runs are virtual-time simulations with seeded arrivals: every
number is deterministic and the wall-clock cost is bookkeeping only.
"""

from __future__ import annotations

import argparse
import copy
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.hw.description import Machine
from repro.hw.presets import platform_c2050
from repro.runtime.perfmodel import PerfModel
from repro.serve import (
    AdmissionPolicy,
    BatchPolicy,
    CompositionServer,
    SloReport,
    TenantSpec,
    format_slo_report,
)
from repro.serve.slo import percentile

#: dispatch policies compared (fair = WFQ dispatch + fair placement)
SCHEDULERS = ("eager", "dmda", "fair")

#: tuned serving knobs: the dispatch queue only exists (and batching /
#: fairness only matter) when in-flight tasks are capped near the
#: worker count and buckets can grow past one batch
BATCH = BatchPolicy(max_batch=4)
MAX_INFLIGHT = 4
TENANT_QUOTA = 16


def tenant_mix(
    n_tenants: int,
    rate_hz: float,
    n_requests: int,
    seed: int = 0,
    heavy_share: float = 0.75,
) -> list[TenantSpec]:
    """``n_tenants`` sgemm tenants of near-identical per-request cost.

    Tenant 0 offers ``heavy_share`` of the total rate; the rest split
    the remainder.  Sizes differ by one (256, 255, ...) so each tenant
    owns a distinct coalescer bucket while per-request cost stays
    comparable — the setup where dispatch *ordering*, not work
    imbalance, decides the per-tenant tails.
    """
    if n_tenants < 1:
        raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
    specs = []
    for i in range(n_tenants):
        if n_tenants == 1:
            rate = rate_hz
        elif i == 0:
            rate = rate_hz * heavy_share
        else:
            rate = rate_hz * (1.0 - heavy_share) / (n_tenants - 1)
        share = rate / rate_hz
        specs.append(
            TenantSpec(
                name=f"t{i}",
                workload="sgemm",
                size=256 - i,
                rate_hz=rate,
                n_requests=max(int(n_requests * share), 4),
                seed=seed * 101 + i,
            )
        )
    return specs


def calibrate_perfmodel(
    machine: Machine, tenants: list[TenantSpec], seed: int = 99
) -> PerfModel:
    """Warm a perfmodel on every tenant shape via a closed-loop run.

    A cold model makes early placement decisions garbage (the scheduler
    has no timings to compare variants with), which would pollute the
    measured tails; real serving systems warm up before taking traffic.
    """
    warm = [
        TenantSpec(
            name=f"warm{i}",
            workload=t.workload,
            size=t.size,
            rate_hz=None,
            n_requests=24,
            concurrency=2,
            seed=seed + i,
        )
        for i, t in enumerate(tenants)
    ]
    server = CompositionServer(machine, tenants=warm, scheduler="dmda")
    server.run()
    server.shutdown()
    return server.engine.perf


def _serve(
    machine: Machine,
    tenants: list[TenantSpec],
    scheduler: str,
    admission: AdmissionPolicy | None,
    perfmodel: PerfModel,
) -> tuple[SloReport, CompositionServer]:
    server = CompositionServer(
        machine,
        tenants=tenants,
        scheduler=scheduler,
        admission=admission,
        batching=BATCH,
        max_inflight=MAX_INFLIGHT,
        # each run gets its own copy so measurements do not leak
        # calibration between compared cells
        perfmodel=copy.deepcopy(perfmodel),
    )
    report = server.run()
    # close the session so shutdown-time hooks (trace invariant
    # checking, store merges) actually run for every measured cell
    server.shutdown()
    return report, server


# ---------------------------------------------------------------------------
# the load sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServingCell:
    """One (scheduler, offered rate, tenant count) measurement."""

    scheduler: str
    rate_hz: float
    n_tenants: int
    goodput_rps: float
    shed_rate: float
    p50_ms: float
    p99_ms: float
    p99_spread: float
    mean_batch: float


@dataclass
class ServingStudyResult:
    platform: str
    cells: list[ServingCell] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "cells": [vars(c) for c in self.cells],
        }


def run_serving_study(
    machine: Machine | None = None,
    rates: tuple[float, ...] = (2000.0, 8000.0, 20000.0),
    tenant_counts: tuple[int, ...] = (2, 4),
    schedulers: tuple[str, ...] = SCHEDULERS,
    n_requests: int = 400,
    seed: int = 0,
) -> ServingStudyResult:
    """Sweep offered rate x tenant count x scheduler under admission."""
    machine = machine or platform_c2050()
    result = ServingStudyResult(platform=machine.name)
    admission = AdmissionPolicy(max_queue_per_tenant=TENANT_QUOTA)
    perf: PerfModel | None = None
    for n_tenants in tenant_counts:
        tenants = tenant_mix(n_tenants, rates[0], n_requests, seed=seed)
        perf = calibrate_perfmodel(machine, tenants)
        for rate in rates:
            tenants = tenant_mix(n_tenants, rate, n_requests, seed=seed)
            for sched in schedulers:
                report, server = _serve(machine, tenants, sched, admission, perf)
                lat = [
                    r.latency
                    for r in server.trace.requests
                    if r.completed
                ]
                result.cells.append(
                    ServingCell(
                        scheduler=sched,
                        rate_hz=rate,
                        n_tenants=n_tenants,
                        goodput_rps=report.goodput_rps,
                        shed_rate=report.shed_rate,
                        p50_ms=percentile(lat, 50) * 1e3,
                        p99_ms=percentile(lat, 99) * 1e3,
                        p99_spread=report.p99_spread(),
                        mean_batch=server.coalescer.mean_batch_size,
                    )
                )
    return result


def format_serving_study(result: ServingStudyResult) -> str:
    lines = [
        f"Serving study ({result.platform}): goodput / tail latency "
        f"under admission (quota {TENANT_QUOTA}/tenant, batch <= "
        f"{BATCH.max_batch})",
        f"{'sched':<6s} {'rate':>8s} {'ten':>4s} {'goodput':>9s} "
        f"{'shed':>7s} {'p50':>9s} {'p99':>9s} {'spread':>7s} {'batch':>6s}",
    ]
    for c in result.cells:
        spread = "n/a" if c.p99_spread != c.p99_spread else f"{c.p99_spread:.2f}x"
        lines.append(
            f"{c.scheduler:<6s} {c.rate_hz:8.0f} {c.n_tenants:4d} "
            f"{c.goodput_rps:7.0f}/s {c.shed_rate:6.1%} "
            f"{c.p50_ms:7.2f}ms {c.p99_ms:7.2f}ms {spread:>7s} "
            f"{c.mean_batch:6.2f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# admission ablation: bounded vs unbounded queueing at overload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionCell:
    label: str
    p99_ms: float
    mean_queue_wait_ms: float
    shed_rate: float
    goodput_rps: float


@dataclass
class AdmissionAblationResult:
    platform: str
    rate_hz: float
    cells: list[AdmissionCell] = field(default_factory=list)

    def cell(self, label: str) -> AdmissionCell:
        for c in self.cells:
            if c.label == label:
                return c
        raise KeyError(label)

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "rate_hz": self.rate_hz,
            "cells": [vars(c) for c in self.cells],
        }


def admission_ablation(
    machine: Machine | None = None,
    rate_hz: float = 20000.0,
    n_requests: int = 400,
    seed: int = 5,
) -> AdmissionAblationResult:
    """One overloaded tenant, three admission policies.

    The unbounded queue admits everything and every admitted request
    pays for the backlog ahead of it; depth- and backlog-bounded
    admission shed the excess and cap the tail.
    """
    machine = machine or platform_c2050()
    tenants = [
        TenantSpec(
            "t0", workload="sgemm", size=256, rate_hz=rate_hz,
            n_requests=n_requests, seed=seed,
        )
    ]
    perf = calibrate_perfmodel(machine, tenants)
    policies = [
        ("unbounded", None),
        ("depth<=16", AdmissionPolicy(max_queue_depth=16)),
        ("backlog<=0.5ms", AdmissionPolicy(max_backlog_s=5e-4)),
        (
            "delay<=1ms",
            AdmissionPolicy(
                max_queue_depth=16, on_overload="delay", max_delay_s=0.001
            ),
        ),
    ]
    result = AdmissionAblationResult(platform=machine.name, rate_hz=rate_hz)
    for label, pol in policies:
        report, _ = _serve(machine, tenants, "dmda", pol, perf)
        t = report.tenants[0]
        result.cells.append(
            AdmissionCell(
                label=label,
                p99_ms=t.p99_s * 1e3,
                mean_queue_wait_ms=t.mean_queue_wait_s * 1e3,
                shed_rate=t.shed_rate,
                goodput_rps=t.goodput_rps,
            )
        )
    return result


def format_admission_ablation(result: AdmissionAblationResult) -> str:
    lines = [
        f"Admission ablation ({result.platform}): one tenant offering "
        f"{result.rate_hz:.0f} req/s (over capacity)",
        f"{'policy':<14s} {'p99':>9s} {'queue-wait':>11s} {'shed':>7s} "
        f"{'goodput':>9s}",
    ]
    for c in result.cells:
        lines.append(
            f"{c.label:<14s} {c.p99_ms:7.2f}ms {c.mean_queue_wait_ms:9.2f}ms "
            f"{c.shed_rate:6.1%} {c.goodput_rps:7.0f}/s"
        )
    bounded = [c for c in result.cells if c.label != "unbounded"]
    if bounded:
        un = result.cell("unbounded")
        best = min(bounded, key=lambda c: c.p99_ms)
        lines.append(
            f"bounded admission cuts p99 {un.p99_ms / best.p99_ms:.1f}x "
            f"({un.p99_ms:.2f}ms -> {best.p99_ms:.2f}ms) by shedding "
            f"{best.shed_rate:.0%} of arrivals"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# fairness ablation: greedy starvation vs weighted fair queueing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FairnessCell:
    scheduler: str
    heavy_p99_ms: float
    light_p99_ms: float
    p99_spread: float
    shed_rate: float


@dataclass
class FairnessAblationResult:
    platform: str
    cells: list[FairnessCell] = field(default_factory=list)

    def cell(self, scheduler: str) -> FairnessCell:
        for c in self.cells:
            if c.scheduler == scheduler:
                return c
        raise KeyError(scheduler)

    def to_dict(self) -> dict:
        return {"platform": self.platform, "cells": [vars(c) for c in self.cells]}


def fairness_tenants(n_requests: int = 400, seed: int = 7) -> list[TenantSpec]:
    """A flooding tenant plus a light one of near-identical request cost."""
    return [
        TenantSpec(
            "heavy", workload="sgemm", size=256, rate_hz=20000.0,
            n_requests=n_requests, seed=seed,
        ),
        TenantSpec(
            "light", workload="sgemm", size=255, rate_hz=300.0,
            n_requests=max(n_requests // 25, 4), seed=seed + 1,
        ),
    ]


def fairness_ablation(
    machine: Machine | None = None,
    n_requests: int = 400,
    seed: int = 7,
    schedulers: tuple[str, ...] = ("eager", "fair"),
) -> FairnessAblationResult:
    """Heavy+light tenants under per-tenant quotas, greedy vs fair."""
    machine = machine or platform_c2050()
    tenants = fairness_tenants(n_requests, seed)
    perf = calibrate_perfmodel(machine, tenants)
    admission = AdmissionPolicy(max_queue_per_tenant=TENANT_QUOTA)
    result = FairnessAblationResult(platform=machine.name)
    for sched in schedulers:
        report, _ = _serve(machine, tenants, sched, admission, perf)
        result.cells.append(
            FairnessCell(
                scheduler=sched,
                heavy_p99_ms=report.for_tenant("heavy").p99_s * 1e3,
                light_p99_ms=report.for_tenant("light").p99_s * 1e3,
                p99_spread=report.p99_spread(),
                shed_rate=report.shed_rate,
            )
        )
    return result


def format_fairness_ablation(result: FairnessAblationResult) -> str:
    lines = [
        f"Fairness ablation ({result.platform}): flooding heavy tenant vs "
        "light tenant, same per-request cost",
        f"{'sched':<6s} {'heavy p99':>10s} {'light p99':>10s} "
        f"{'spread':>7s} {'shed':>7s}",
    ]
    for c in result.cells:
        lines.append(
            f"{c.scheduler:<6s} {c.heavy_p99_ms:8.2f}ms {c.light_p99_ms:8.2f}ms "
            f"{c.p99_spread:6.2f}x {c.shed_rate:6.1%}"
        )
    try:
        greedy, fair = result.cell("eager"), result.cell("fair")
    except KeyError:
        return "\n".join(lines)
    lines.append(
        f"greedy dispatch starves the light tenant "
        f"({greedy.light_p99_ms:.2f}ms p99, {greedy.p99_spread:.1f}x spread); "
        f"weighted fair queueing holds the spread to {fair.p99_spread:.2f}x"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------

_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.serving",
        description="multi-tenant serving study (virtual time, seeded)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep for CI: one tenant count, short runs, "
        "with trace invariant checking on",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate every run's trace at shutdown (implied by --smoke)",
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=_RESULTS_DIR,
        help=f"where tables and BENCH_serve.json land (default {_RESULTS_DIR})",
    )
    args = parser.parse_args(argv)

    if args.check or args.smoke:
        # every Runtime the study builds (including calibration) then
        # validates its trace at shutdown
        from repro.check.config import set_default_check

        set_default_check(True)
    if args.smoke:
        study = run_serving_study(
            rates=(4000.0, 16000.0), tenant_counts=(2,), n_requests=120
        )
        adm = admission_ablation(n_requests=150)
        fair = fairness_ablation(n_requests=150)
    else:
        study = run_serving_study()
        adm = admission_ablation()
        fair = fairness_ablation()

    tables = {
        "serving_study": format_serving_study(study),
        "serving_admission": format_admission_ablation(adm),
        "serving_fairness": format_fairness_ablation(fair),
    }
    args.outdir.mkdir(parents=True, exist_ok=True)
    for name, text in tables.items():
        (args.outdir / f"{name}.txt").write_text(text + "\n")
        print(text)
        print()
    summary = {
        "smoke": args.smoke,
        "study": study.to_dict(),
        "admission": adm.to_dict(),
        "fairness": fair.to_dict(),
    }
    bench = args.outdir / "BENCH_serve.json"
    bench.write_text(json.dumps(summary, indent=1) + "\n")
    print(f"wrote {bench}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
