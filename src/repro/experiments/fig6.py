"""Figure 6: dynamic scheduling across applications and platforms.

For nine applications (seven Rodinia kernels, the LibSolve ODE solver
and sgemm) the paper compares three executions on two platforms (Xeon +
C2050, Xeon + C1060):

- **OpenMP**: static selection of the OpenMP variant;
- **CUDA**: static selection of the CUDA variant;
- **TGPA** (tool-generated performance-aware code): all variants
  registered, the runtime's performance-aware scheduler (dmda) picks per
  invocation.

Execution time is averaged over several problem sizes and normalised.
The expected shape: TGPA closely follows the best static choice for
every app, sometimes beats it (by picking differently per size), and the
OpenMP/CUDA ranking flips between apps and between the two platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.apps import bfs, cfd, hotspot, lud, nw, particlefilter, pathfinder, sgemm
from repro.apps import odesolver as ode
from repro.composer.glue import lower_component, make_backend_adapter
from repro.hw.description import Machine
from repro.hw.presets import platform_c1060, platform_c2050
from repro.runtime import Runtime
from repro.runtime.codelet import Codelet
from repro.runtime.perfmodel import PerfModel
from repro.workloads import (
    gemm_inputs,
    hotspot_inputs,
    pathfinder_wall,
    random_graph,
)

#: measurement modes (paper's three bars per app)
MODES = ("openmp", "cuda", "tgpa")


@dataclass(frozen=True)
class AppScenario:
    """One Figure-6 application: sizes plus a single-run driver."""

    name: str
    sizes: tuple[int, ...]
    #: run_once(runtime, codelets, size, seed) -> None (submit + drain)
    run_once: Callable
    #: codelet factory (one codelet per component of the app)
    make_codelets: Callable[[], dict[str, Codelet]]


# ---------------------------------------------------------------------------
# per-app drivers (one component invocation per run unless noted)
# ---------------------------------------------------------------------------

def _simple_runner(module, operands_factory, scalars_of, ctx_of):
    def run_once(rt: Runtime, codelets: dict[str, Codelet], size: int, seed: int):
        operands = operands_factory(size, seed)
        handles = [(rt.register(arr, name), mode) for name, arr, mode in operands]
        rt.submit(
            codelets[module.INTERFACE.name],
            handles,
            ctx=ctx_of(size),
            scalar_args=scalars_of(size),
            name=module.INTERFACE.name,
        )
        rt.wait_for_all()

    return run_once


def _make_codelets_for(module) -> Callable[[], dict[str, Codelet]]:
    def make() -> dict[str, Codelet]:
        return {
            module.INTERFACE.name: lower_component(
                module.INTERFACE, module.IMPLEMENTATIONS
            )
        }

    return make


def _bfs_operands(size, seed):
    nodes, edges = random_graph(size, 8, seed=seed)
    costs = np.zeros(size, dtype=np.int32)
    return [("nodes", nodes, "r"), ("edges", edges, "r"), ("costs", costs, "w")]


_bfs_edges_cache: dict = {}


def _bfs_nedges(size, seed=0):
    key = (size, seed)
    if key not in _bfs_edges_cache:
        nodes, edges = random_graph(size, 8, seed=seed)
        _bfs_edges_cache[key] = len(edges)
    return _bfs_edges_cache[key]


BFS = AppScenario(
    name="bfs",
    sizes=(4_000, 40_000, 400_000),
    run_once=_simple_runner(
        bfs,
        _bfs_operands,
        scalars_of=lambda s: (s, _bfs_nedges(s), 0),
        ctx_of=lambda s: {"n_nodes": s, "n_edges": _bfs_nedges(s)},
    ),
    make_codelets=_make_codelets_for(bfs),
)

_CFD_ITERS = 8


def _cfd_operands(size, seed):
    u, nb = cfd.make_grid(size, seed=seed)
    return [("u", u, "rw"), ("nb", nb, "r")]


CFD = AppScenario(
    name="cfd",
    sizes=(2_000, 20_000, 200_000),
    run_once=_simple_runner(
        cfd,
        _cfd_operands,
        scalars_of=lambda s: (s, _CFD_ITERS),
        ctx_of=lambda s: {"ncells": s, "iters": _CFD_ITERS},
    ),
    make_codelets=_make_codelets_for(cfd),
)

_HS_ITERS = 16


def _hotspot_operands(size, seed):
    power, temp = hotspot_inputs(size, size, seed=seed)
    return [("power", power, "r"), ("temp", temp, "rw")]


HOTSPOT = AppScenario(
    name="hotspot",
    sizes=(64, 192, 512),
    run_once=_simple_runner(
        hotspot,
        _hotspot_operands,
        scalars_of=lambda s: (s, s, _HS_ITERS),
        ctx_of=lambda s: {"rows": s, "cols": s, "iters": _HS_ITERS},
    ),
    make_codelets=_make_codelets_for(hotspot),
)

LUD = AppScenario(
    name="lud",
    sizes=(128, 384, 1024),
    run_once=_simple_runner(
        lud,
        lambda s, seed: [("A", lud.make_spd_matrix(s, seed=seed), "rw")],
        scalars_of=lambda s: (s,),
        ctx_of=lambda s: {"n": s},
    ),
    make_codelets=_make_codelets_for(lud),
)


def _nw_operands(size, seed):
    s1, s2 = nw.make_sequences(size, seed=seed)
    score = np.zeros((size + 1) * (size + 1), dtype=np.int32)
    return [("seq1", s1, "r"), ("seq2", s2, "r"), ("score", score, "w")]


NW = AppScenario(
    name="nw",
    sizes=(256, 768, 2048),
    run_once=_simple_runner(
        nw,
        _nw_operands,
        scalars_of=lambda s: (s, 2),
        ctx_of=lambda s: {"n": s, "penalty": 2},
    ),
    make_codelets=_make_codelets_for(nw),
)

_PF_FRAMES, _PF_DIM = 8, 64


def _pf_operands(size, seed):
    frames, _ = particlefilter.make_video(_PF_FRAMES, _PF_DIM, seed=seed)
    track = np.zeros(_PF_FRAMES * 2, dtype=np.float32)
    return [("frames", frames, "r"), ("track", track, "w")]


PARTICLEFILTER = AppScenario(
    name="particlefilter",
    sizes=(2_000, 16_000, 128_000),
    run_once=_simple_runner(
        particlefilter,
        _pf_operands,
        scalars_of=lambda s: (_PF_FRAMES, _PF_DIM, s, 7),
        ctx_of=lambda s: {"n_frames": _PF_FRAMES, "dim": _PF_DIM, "n_particles": s},
    ),
    make_codelets=_make_codelets_for(particlefilter),
)

_PATH_ROWS = 50


def _path_operands(size, seed):
    wall = pathfinder_wall(_PATH_ROWS, size, seed=seed)
    result = np.zeros(size, dtype=np.int32)
    return [("wall", wall, "r"), ("result", result, "w")]


PATHFINDER = AppScenario(
    name="pathfinder",
    sizes=(20_000, 200_000, 2_000_000),
    run_once=_simple_runner(
        pathfinder,
        _path_operands,
        scalars_of=lambda s: (_PATH_ROWS, s),
        ctx_of=lambda s: {"rows": _PATH_ROWS, "cols": s},
    ),
    make_codelets=_make_codelets_for(pathfinder),
)


def _sgemm_operands(size, seed):
    a, b, c = gemm_inputs(size, size, size, seed=seed)
    return [("A", a, "r"), ("B", b, "r"), ("C", c, "rw")]


SGEMM = AppScenario(
    name="sgemm",
    sizes=(128, 384, 1024),
    run_once=_simple_runner(
        sgemm,
        _sgemm_operands,
        scalars_of=lambda s: (s, s, s, 1.0, 0.0),
        ctx_of=lambda s: {"m": s, "n": s, "k": s},
    ),
    make_codelets=_make_codelets_for(sgemm),
)


# libsolve: a whole (shortened) integration per run
_ODE_STEPS = 40


def _ode_run_once(rt: Runtime, codelets: dict[str, Codelet], size: int, seed: int):
    arrays = {
        "y": np.zeros(size, dtype=np.float32),
        "k": np.zeros(size, dtype=np.float32),
        "du": np.zeros(size, dtype=np.float32),
        "err": np.zeros(size, dtype=np.float32),
        "norm": np.zeros(1, dtype=np.float32),
        "sample": np.zeros(min(size, 16), dtype=np.float32),
    }
    handles = {name: rt.register(arr, name) for name, arr in arrays.items()}
    invoke = _ode_invoke_table(rt, codelets, handles)
    ode.solve(invoke, handles, size, steps=_ODE_STEPS)
    rt.wait_for_all()


def _ode_invoke_table(rt, codelets, handles):
    """Submit-functions per component with their C signatures."""
    def entry(name):
        iface = ode.INTERFACES[name]
        operand_names = [p.name for p in iface.operand_params()]
        scalar_names = [p.name for p in iface.scalar_params()]
        order = [p.name for p in iface.params]
        modes = {p.name: p.access for p in iface.params}

        def call(*args):
            by_name = dict(zip(order, args))
            operands = [(by_name[n], modes[n]) for n in operand_names]
            scalars = tuple(by_name[n] for n in scalar_names)
            ctx = {
                n: by_name[n]
                for n in scalar_names
                if isinstance(by_name[n], (int, float))
            }
            rt.submit(codelets[name], operands, ctx=ctx, scalar_args=scalars, name=name)

        return call

    return {name: entry(name) for name in ode.COMPONENT_NAMES}


def _ode_make_codelets() -> dict[str, Codelet]:
    return {
        name: lower_component(ode.INTERFACES[name], ode.IMPLEMENTATIONS[name])
        for name in ode.COMPONENT_NAMES
    }


LIBSOLVE = AppScenario(
    name="libsolve",
    sizes=(16_000, 64_000, 256_000),
    run_once=_ode_run_once,
    make_codelets=_ode_make_codelets,
)

SCENARIOS: dict[str, AppScenario] = {
    s.name: s
    for s in (
        BFS,
        CFD,
        HOTSPOT,
        LIBSOLVE,
        LUD,
        NW,
        PARTICLEFILTER,
        PATHFINDER,
        SGEMM,
    )
}

APP_ORDER = tuple(sorted(SCENARIOS))  # the paper's x-axis is alphabetical


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------

def _restrict(codelets: dict[str, Codelet], arch_value: str) -> dict[str, Codelet]:
    out = {}
    for name, cl in codelets.items():
        keep = [v.name for v in cl.variants if v.arch.value == arch_value]
        out[name] = cl.restricted(keep)
    return out


#: calibration repetitions per size: enough for dmda's exploration to
#: sample every variant (3 variants x calibration_samples=2)
CALIBRATION_REPS = 6


def measure_app(
    scenario: AppScenario,
    machine_factory: Callable[[], Machine],
    mode: str,
    seed: int = 0,
) -> list[float]:
    """Virtual execution time per problem size for one mode."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    perf = PerfModel()
    if mode == "tgpa":
        # calibration sweep: dmda explores variants and builds history;
        # repeated so every variant accumulates enough samples per size
        for rep in range(CALIBRATION_REPS):
            for size in scenario.sizes:
                rt = Runtime(
                    machine_factory(), scheduler="dmda", seed=seed + 100 + rep,
                    perfmodel=perf, run_kernels=False,
                )
                scenario.run_once(rt, scenario.make_codelets(), size, seed)
                rt.shutdown()
    times: list[float] = []
    for i, size in enumerate(scenario.sizes):
        codelets = scenario.make_codelets()
        if mode == "openmp":
            codelets = _restrict(codelets, "openmp")
            rt = Runtime(machine_factory(), scheduler="eager", seed=seed + i)
        elif mode == "cuda":
            codelets = _restrict(codelets, "cuda")
            rt = Runtime(machine_factory(), scheduler="eager", seed=seed + i)
        else:
            rt = Runtime(
                machine_factory(), scheduler="dmda", seed=seed + i, perfmodel=perf
            )
        scenario.run_once(rt, codelets, size, seed)
        times.append(rt.shutdown())
    return times


@dataclass
class Fig6Result:
    """Per-platform, per-app, per-mode mean execution times (seconds)."""

    platform: str
    #: app -> mode -> mean virtual seconds over the size sweep
    means: dict[str, dict[str, float]] = field(default_factory=dict)
    #: app -> mode -> per-size times
    per_size: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def normalised(self) -> dict[str, dict[str, float]]:
        """Times normalised to TGPA = 1 per app (the figure's y-axis)."""
        out: dict[str, dict[str, float]] = {}
        for app, modes in self.means.items():
            base = modes["tgpa"]
            out[app] = {m: t / base for m, t in modes.items()}
        return out


def run(
    platform: str = "c2050",
    apps: tuple[str, ...] = APP_ORDER,
    seed: int = 0,
    size_scale: float = 1.0,
) -> Fig6Result:
    """Measure one platform (``"c2050"`` for Fig. 6a, ``"c1060"`` for 6b)."""
    factory = {"c2050": platform_c2050, "c1060": platform_c1060}[platform]
    result = Fig6Result(platform=platform)
    for app in apps:
        scenario = SCENARIOS[app]
        if size_scale != 1.0:
            scenario = AppScenario(
                name=scenario.name,
                sizes=tuple(
                    max(int(s * size_scale), 64) for s in scenario.sizes
                ),
                run_once=scenario.run_once,
                make_codelets=scenario.make_codelets,
            )
        result.per_size[app] = {}
        result.means[app] = {}
        for mode in MODES:
            times = measure_app(scenario, factory, mode, seed=seed)
            result.per_size[app][mode] = times
            result.means[app][mode] = float(np.mean(times))
    return result


def format_result(result: Fig6Result, per_size: bool = False) -> str:
    """The figure's series as a text table (normalised to TGPA = 1).

    ``per_size=True`` appends the per-problem-size times, which is where
    TGPA's "appropriate decisions for each problem size" show up.
    """
    norm = result.normalised()
    lines = [
        f"Figure 6 ({result.platform}): normalised mean execution time "
        "(TGPA = 1.0)",
        f"{'app':<16s} {'OpenMP':>8s} {'CUDA':>8s} {'TGPA':>8s}   best-static",
    ]
    adapt_wins = []
    for app in sorted(norm):
        row = norm[app]
        best = "OpenMP" if row["openmp"] <= row["cuda"] else "CUDA"
        lines.append(
            f"{app:<16s} {row['openmp']:8.3f} {row['cuda']:8.3f} "
            f"{row['tgpa']:8.3f}   {best}"
        )
        if min(row["openmp"], row["cuda"]) > 1.0:
            adapt_wins.append(app)
    if adapt_wins:
        lines.append(
            "TGPA beats both static builds by adapting per problem size: "
            + ", ".join(adapt_wins)
        )
    if per_size:
        lines.append("per-size virtual times (ms):")
        for app in sorted(result.per_size):
            for mode in MODES:
                times = ", ".join(
                    f"{t * 1e3:.3f}" for t in result.per_size[app][mode]
                )
                lines.append(f"  {app:<16s} {mode:<7s} [{times}]")
    return "\n".join(lines)
