"""Tuning study: cold-start exploration vs store-warmed composition.

The paper's runtime (like StarPU) learns per-variant execution-time
models *online*: the first invocations of a component are exploration —
placements made to gather timings, not because they are predicted best.
The :mod:`repro.tuning` layer removes that cost by persisting calibrated
models per machine and warm-starting later sessions from the store.

This ablation quantifies the claim on an sgemm task stream:

- **cold** — a fresh session with no store runs the stream repeatedly
  (``Session.restart`` between batches keeps the learned model, like a
  long-lived process).  Batch 0 pays the exploration tax; later batches
  are the in-process steady state;
- **calibrate** — :func:`repro.tuning.calibrate_component` populates a
  store for the machine with its adaptive ladder (a fraction of the
  brute-force training cost);
- **warm** — a *fresh* session warm-started from that store runs one
  batch.  It must make **zero** exploration placement decisions and its
  makespan must land within tolerance of the cold run's steady-state
  tail: persistent calibration buys steady-state performance from the
  first task.

Run ``python -m repro.experiments.tuning`` to regenerate
``benchmarks/results/tuning_ablation.txt`` and the machine-readable
``BENCH_tuning.json`` (``--smoke`` shrinks it for CI).  The exit status
is non-zero when the warm run explores or misses the tolerance, so CI
can gate on it.

All runs are virtual-time simulations with seeded noise: every number
is deterministic.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps import sgemm
from repro.composer.glue import lower_component
from repro.hw.presets import platform_c2050
from repro.session import Session
from repro.tuning import PerfModelStore, calibrate_component

#: makespan tolerance: warm vs cold steady-state tail (acceptance bar)
TOLERANCE = 0.10


@dataclass(frozen=True)
class BatchCell:
    """One batch of the task stream on one session."""

    label: str
    makespan_ms: float
    exploration_decisions: int
    n_tasks: int


@dataclass
class TuningAblationResult:
    platform: str
    sizes: tuple[int, ...]
    tasks_per_size: int
    tolerance: float = TOLERANCE
    cold: list[BatchCell] = field(default_factory=list)
    warm: BatchCell | None = None
    calibration: dict = field(default_factory=dict)

    @property
    def cold_tail_ms(self) -> float:
        """Steady-state makespan: mean over the later half of the cold
        batches (exploration is concentrated in the first)."""
        tail = self.cold[len(self.cold) // 2:]
        return sum(c.makespan_ms for c in tail) / len(tail)

    @property
    def warm_over_tail(self) -> float:
        return self.warm.makespan_ms / self.cold_tail_ms

    @property
    def warm_zero_exploration(self) -> bool:
        return self.warm is not None and self.warm.exploration_decisions == 0

    @property
    def within_tolerance(self) -> bool:
        return abs(self.warm_over_tail - 1.0) <= self.tolerance

    @property
    def ok(self) -> bool:
        return self.warm_zero_exploration and self.within_tolerance

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "sizes": list(self.sizes),
            "tasks_per_size": self.tasks_per_size,
            "tolerance": self.tolerance,
            "cold": [vars(c) for c in self.cold],
            "warm": vars(self.warm) if self.warm is not None else None,
            "calibration": self.calibration,
            "cold_tail_ms": self.cold_tail_ms,
            "warm_over_tail": self.warm_over_tail,
            "warm_zero_exploration": self.warm_zero_exploration,
            "within_tolerance": self.within_tolerance,
            "ok": self.ok,
        }


def _run_batch(
    session: Session, codelet, sizes: tuple[int, ...], tasks_per_size: int,
    label: str,
) -> BatchCell:
    """Submit the sgemm task stream and measure its makespan."""
    start = session.now
    n_tasks = 0
    for size in sizes:
        for _ in range(tasks_per_size):
            operands, scalar_args = sgemm.training_operands(
                {"m": size, "n": size, "k": size}, session.runtime
            )
            session.submit(
                codelet,
                operands,
                ctx={"m": size, "n": size, "k": size},
                scalar_args=scalar_args,
                name=f"sgemm{size}",
            )
            n_tasks += 1
    session.wait_for_all()
    return BatchCell(
        label=label,
        makespan_ms=(session.now - start) * 1e3,
        exploration_decisions=session.trace.n_exploration_decisions,
        n_tasks=n_tasks,
    )


def run_tuning_ablation(
    machine_factory=None,
    sizes: tuple[int, ...] = (96, 192, 384, 768),
    tasks_per_size: int = 8,
    n_cold_batches: int = 4,
    rungs: int = 6,
    seed: int = 0,
    store_root: Path | None = None,
) -> TuningAblationResult:
    """Cold stream vs calibrate-then-warm-start, same machine preset."""
    machine_factory = machine_factory or platform_c2050
    codelet = lower_component(sgemm.INTERFACE, sgemm.IMPLEMENTATIONS)
    result = TuningAblationResult(
        platform=machine_factory().name,
        sizes=sizes,
        tasks_per_size=tasks_per_size,
    )

    # -- cold: one long-lived session, no store -----------------------------
    cold = Session(
        machine_factory, scheduler="dmda", seed=seed, run_kernels=False
    )
    for batch in range(n_cold_batches):
        if batch:
            cold.restart(seed + batch)
        result.cold.append(
            _run_batch(cold, codelet, sizes, tasks_per_size, f"cold[{batch}]")
        )
    cold.shutdown()

    # -- calibrate: adaptive ladder fills the store -------------------------
    if store_root is None:
        store_root = Path(tempfile.mkdtemp(prefix="peppher-store-"))
    store = PerfModelStore(store_root)
    report = calibrate_component(
        sgemm.INTERFACE,
        sgemm.IMPLEMENTATIONS,
        machine_factory,
        sgemm.training_operands,
        store=store,
        rungs=rungs,
        seed=seed + 1000,
    )
    result.calibration = {
        "total_runs": report.total_runs,
        "rungs": len(report.ladder),
        "store_root": str(store_root),
        "variants": {
            name: {"runs": vc.runs, "fitted": vc.fitted}
            for name, vc in sorted(report.variants.items())
        },
    }

    # -- warm: a fresh session (new store object = fresh process) -----------
    warm = Session(
        machine_factory,
        scheduler="dmda",
        seed=seed + 2000,
        run_kernels=False,
        store=PerfModelStore(store_root),
    )
    result.warm = _run_batch(warm, codelet, sizes, tasks_per_size, "warm")
    warm.shutdown()
    return result


def format_tuning_ablation(result: TuningAblationResult) -> str:
    lines = [
        f"Tuning ablation ({result.platform}): sgemm stream, sizes "
        f"{list(result.sizes)} x {result.tasks_per_size} tasks",
        f"{'batch':<10s} {'makespan':>11s} {'exploration':>12s}",
    ]
    for c in result.cold + [result.warm]:
        lines.append(
            f"{c.label:<10s} {c.makespan_ms:9.3f}ms "
            f"{c.exploration_decisions:12d}"
        )
    cal = result.calibration
    lines.append(
        f"calibration: {cal['total_runs']} adaptive runs over "
        f"{cal['rungs']} rungs"
    )
    verdict = "OK" if result.ok else "FAIL"
    lines.append(
        f"warm vs cold steady tail: {result.warm_over_tail:.3f}x "
        f"(tail {result.cold_tail_ms:.3f}ms, tol ±{result.tolerance:.0%}); "
        f"warm exploration decisions: "
        f"{result.warm.exploration_decisions} -> {verdict}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------

_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.tuning",
        description="cold vs store-warmed composition (virtual time, seeded)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny stream for CI: fewer sizes, tasks and cold batches, "
        "with trace invariant checking on",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate every run's trace at shutdown (implied by --smoke)",
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=_RESULTS_DIR,
        help=f"where the table and BENCH_tuning.json land "
        f"(default {_RESULTS_DIR})",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="perf-model store directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)

    if args.check or args.smoke:
        # every Session/Runtime the ablation builds then validates its
        # trace at shutdown
        from repro.check.config import set_default_check

        set_default_check(True)
    if args.smoke:
        result = run_tuning_ablation(
            sizes=(96, 256), tasks_per_size=6, n_cold_batches=3,
            rungs=5, store_root=args.store,
        )
    else:
        result = run_tuning_ablation(store_root=args.store)

    text = format_tuning_ablation(result)
    args.outdir.mkdir(parents=True, exist_ok=True)
    (args.outdir / "tuning_ablation.txt").write_text(text + "\n")
    print(text)
    bench = args.outdir / "BENCH_tuning.json"
    bench.write_text(json.dumps({"smoke": args.smoke, **result.to_dict()},
                                indent=1) + "\n")
    print(f"wrote {bench}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
