"""Live observability: metrics, span tracing, engine samplers.

The obs layer makes a running composition inspectable *while* it runs
(the post-run views live in :class:`~repro.runtime.stats
.ExecutionTrace`): a :class:`MetricsRegistry` of counters/gauges/
histograms with Prometheus-text and JSON exposition, a
:class:`SpanTracer` reconstructing nested ``invoke → schedule-wait →
transfer → kernel`` spans per component invocation, and
:class:`EngineSamplers` polling queue depth / worker busy state /
container residency / backlog at a fixed virtual-time period.  All three
consume the engine's typed :class:`~repro.runtime.events.EngineEvents`
stream; :class:`MetricsSuite` bundles them behind ``Session(metrics=
True)`` and ``CompositionServer(metrics=...)``.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and guidance.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    exponential_buckets,
)
from repro.obs.samplers import DEFAULT_PERIOD_S, EngineSamplers, SamplePoint
from repro.obs.spans import Span, SpanTracer
from repro.obs.suite import MetricsSuite

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_PERIOD_S",
    "EngineSamplers",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "MetricsSuite",
    "SamplePoint",
    "Span",
    "SpanTracer",
    "exponential_buckets",
]
