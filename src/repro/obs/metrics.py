"""Metrics primitives: counters, gauges, histograms, and their registry.

The live observability substrate (ROADMAP: a serving stack should be
inspectable *while* it runs, not only via post-run trace scans).  Three
metric types over labelled series:

- :class:`Counter` — monotonically increasing totals;
- :class:`Gauge` — point-in-time values (queue depth, busy fraction);
- :class:`Histogram` — fixed exponential buckets, cheap to observe and
  **mergeable** across registries (shards add bucket-wise, which is what
  makes per-worker or per-process registries aggregatable).

A :class:`MetricsRegistry` owns the metrics and exposes two exposition
formats: ``to_prometheus()`` (the text format every scraper reads) and
``snapshot()`` (a JSON-able dict for programmatic checks and tests).

Everything is driven by the *virtual* clock of the simulation — there
are no background threads; values change only when engine events or
samplers touch them, so snapshots are deterministic for a fixed seed.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Iterator, Mapping, Sequence

from repro.errors import PeppherError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(PeppherError):
    """Misuse of the metrics API (bad name, label mismatch, ...)."""


def exponential_buckets(
    start: float = 1e-6, factor: float = 2.0, count: int = 24
) -> tuple[float, ...]:
    """Fixed exponential bucket upper bounds (seconds by default).

    The default ladder spans 1 µs to ~8.4 s in powers of two — wide
    enough for both kernel durations and end-to-end request latencies on
    the simulated machines, while keeping merges trivially aligned.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise MetricError(
            f"invalid bucket spec start={start} factor={factor} count={count}"
        )
    return tuple(start * factor**i for i in range(count))


#: the registry default for histogram bucket bounds
DEFAULT_BUCKETS = exponential_buckets()


def _fmt(value: float) -> str:
    """Prometheus sample-value formatting (integers without the .0)."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class Metric:
    """Base of all metric types: a family of labelled series.

    Hot paths that update one label set repeatedly should bind a child
    once via :meth:`labels` — the child skips label validation and key
    construction on every update (the engine observers all do this).
    """

    kind = "untyped"
    _child_cls: "type | None" = None

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r} on {name!r}")
        self.name = name
        self.help = help
        self.unit = unit
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple[str, ...], object] = {}
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels: object):
        """A bound child for one label set (validated once, then cached)."""
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child(key)
        return child

    def _make_child(self, key: tuple[str, ...]):  # pragma: no cover
        raise NotImplementedError

    # -- label handling ------------------------------------------------------

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        try:
            key = tuple(str(labels[k]) for k in self.labelnames)
        except KeyError:
            key = None
        if key is None or len(labels) != len(self.labelnames):
            raise MetricError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return key

    def labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def series(self) -> Iterator[tuple[tuple[str, ...], object]]:
        """(label-values, state) pairs in insertion order."""
        return iter(self._series.items())

    def __len__(self) -> int:
        return len(self._series)

    # -- exposition hooks ----------------------------------------------------

    def _label_str(self, key: tuple[str, ...], extra: str = "") -> str:
        parts = [
            f'{n}="{_escape(v)}"' for n, v in zip(self.labelnames, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def expose(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def snap(self) -> list[dict]:  # pragma: no cover - overridden
        raise NotImplementedError

    def merge_from(self, other: "Metric") -> None:  # pragma: no cover
        raise NotImplementedError

    def _check_mergeable(self, other: "Metric") -> None:
        if (
            type(other) is not type(self)
            or other.labelnames != self.labelnames
        ):
            raise MetricError(
                f"cannot merge {other.kind} {other.name!r} "
                f"(labels {other.labelnames}) into {self.kind} "
                f"{self.name!r} (labels {self.labelnames})"
            )


class _CounterChild:
    """Bound counter series — ``inc`` without label handling."""

    __slots__ = ("_series", "_key", "_name")

    def __init__(self, series: dict, key: tuple[str, ...], name: str) -> None:
        self._series = series
        self._key = key
        self._name = name

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise MetricError(f"counter {self._name!r} cannot decrease")
        self._series[self._key] = self._series.get(self._key, 0.0) + value

    @property
    def value(self) -> float:
        return float(self._series.get(self._key, 0.0))


class Counter(Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        return float(self._series.get(self._key(labels), 0.0))

    def _make_child(self, key: tuple[str, ...]) -> _CounterChild:
        return _CounterChild(self._series, key, self.name)

    def expose(self) -> list[str]:
        return [
            f"{self.name}{self._label_str(key)} {_fmt(v)}"
            for key, v in self._series.items()
        ]

    def snap(self) -> list[dict]:
        return [
            {"labels": self.labels_of(key), "value": v}
            for key, v in self._series.items()
        ]

    def merge_from(self, other: Metric) -> None:
        self._check_mergeable(other)
        for key, v in other._series.items():
            self._series[key] = self._series.get(key, 0.0) + v


class _GaugeChild:
    """Bound gauge series — ``set``/``inc``/``dec`` without label handling."""

    __slots__ = ("_series", "_key")

    def __init__(self, series: dict, key: tuple[str, ...]) -> None:
        self._series = series
        self._key = key

    def set(self, value: float) -> None:
        self._series[self._key] = float(value)

    def inc(self, value: float = 1.0) -> None:
        self._series[self._key] = self._series.get(self._key, 0.0) + value

    def dec(self, value: float = 1.0) -> None:
        self.inc(-value)

    @property
    def value(self) -> float:
        return float(self._series.get(self._key, 0.0))


class Gauge(Metric):
    """Point-in-time value; ``set`` overwrites, ``inc``/``dec`` adjust."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._series[self._key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def dec(self, value: float = 1.0, **labels: object) -> None:
        self.inc(-value, **labels)

    def value(self, **labels: object) -> float:
        return float(self._series.get(self._key(labels), 0.0))

    def _make_child(self, key: tuple[str, ...]) -> _GaugeChild:
        return _GaugeChild(self._series, key)

    def expose(self) -> list[str]:
        return [
            f"{self.name}{self._label_str(key)} {_fmt(v)}"
            for key, v in self._series.items()
        ]

    def snap(self) -> list[dict]:
        return [
            {"labels": self.labels_of(key), "value": v}
            for key, v in self._series.items()
        ]

    def merge_from(self, other: Metric) -> None:
        # gauges are last-write-wins: the merged-in registry is the
        # fresher shard by convention
        self._check_mergeable(other)
        self._series.update(other._series)


class _HistSeries:
    """Per-label-set histogram state: bucket counts, sum, count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 = overflow (+Inf)
        self.sum = 0.0
        self.count = 0


class _HistChild:
    """Bound histogram series — ``observe`` without label handling."""

    __slots__ = ("_s", "_buckets")

    def __init__(self, series: _HistSeries, buckets: tuple[float, ...]) -> None:
        self._s = series
        self._buckets = buckets

    def observe(self, value: float) -> None:
        s = self._s
        s.counts[bisect_left(self._buckets, value)] += 1
        s.sum += value
        s.count += 1

    @property
    def count(self) -> int:
        return self._s.count

    @property
    def sum(self) -> float:
        return self._s.sum


class Histogram(Metric):
    """Fixed-bucket histogram (exponential bounds by default).

    Buckets are identical across the label sets of one metric, so two
    histograms with the same bounds merge by bucket-wise addition; a
    bounds mismatch raises instead of silently skewing quantiles.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help=help, unit=unit, labelnames=labelnames)
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram {name!r} bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistSeries(len(self.buckets))
        series.counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1

    def _make_child(self, key: tuple[str, ...]) -> _HistChild:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistSeries(len(self.buckets))
        return _HistChild(series, self.buckets)

    def count(self, **labels: object) -> int:
        s = self._series.get(self._key(labels))
        return s.count if s is not None else 0

    def sum(self, **labels: object) -> float:
        s = self._series.get(self._key(labels))
        return s.sum if s is not None else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket containing the q-th observation); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile q must be in [0, 1], got {q}")
        s = self._series.get(self._key(labels))
        if s is None or s.count == 0:
            return float("nan")
        rank = q * s.count
        seen = 0
        for i, n in enumerate(s.counts):
            seen += n
            if seen >= rank and n:
                return (
                    self.buckets[i] if i < len(self.buckets) else math.inf
                )
        return math.inf  # pragma: no cover - defensive

    def expose(self) -> list[str]:
        lines: list[str] = []
        for key, s in self._series.items():
            cumulative = 0
            for bound, n in zip(self.buckets, s.counts):
                cumulative += n
                le = self._label_str(key, f'le="{_fmt(bound)}"')
                lines.append(f"{self.name}_bucket{le} {cumulative}")
            cumulative += s.counts[-1]
            le = self._label_str(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{le} {cumulative}")
            lines.append(
                f"{self.name}_sum{self._label_str(key)} {_fmt(s.sum)}"
            )
            lines.append(
                f"{self.name}_count{self._label_str(key)} {s.count}"
            )
        return lines

    def snap(self) -> list[dict]:
        out = []
        for key, s in self._series.items():
            cumulative, buckets = 0, []
            for bound, n in zip(self.buckets, s.counts):
                cumulative += n
                buckets.append([bound, cumulative])
            buckets.append(["+Inf", cumulative + s.counts[-1]])
            out.append(
                {
                    "labels": self.labels_of(key),
                    "count": s.count,
                    "sum": s.sum,
                    "buckets": buckets,
                }
            )
        return out

    def merge_from(self, other: Metric) -> None:
        self._check_mergeable(other)
        assert isinstance(other, Histogram)
        if other.buckets != self.buckets:
            raise MetricError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"differ ({len(other.buckets)} vs {len(self.buckets)})"
            )
        for key, s in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                mine = self._series[key] = _HistSeries(len(self.buckets))
            for i, n in enumerate(s.counts):
                mine.counts[i] += n
            mine.sum += s.sum
            mine.count += s.count


class MetricsRegistry:
    """Named collection of metrics with exposition and merging.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object (a kind or label-set
    mismatch raises), so independent components can share one registry
    without coordination.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- creation ------------------------------------------------------------

    def _get_or_create(self, cls, name: str, kwargs: dict) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            want = tuple(kwargs.get("labelnames", ()))
            if want and tuple(want) != existing.labelnames:
                raise MetricError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, not {tuple(want)}"
                )
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: Sequence[str] = (),
    ) -> Counter:
        return self._get_or_create(
            Counter,
            name,
            {"help": help, "unit": unit, "labelnames": labelnames},
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        return self._get_or_create(
            Gauge,
            name,
            {"help": help, "unit": unit, "labelnames": labelnames},
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram,
            name,
            {
                "help": help,
                "unit": unit,
                "labelnames": labelnames,
                "buckets": buckets,
            },
        )
        assert isinstance(metric, Histogram)
        if buckets is not None and tuple(buckets) != metric.buckets:
            raise MetricError(
                f"histogram {name!r} already registered with different "
                f"bucket bounds"
            )
        return metric

    # -- access --------------------------------------------------------------

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(
                f"no metric {name!r}; known: {sorted(self._metrics)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    # -- exposition ----------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (sorted by metric name)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if m.help:
                lines.append(f"# HELP {name} {_escape(m.help)}")
            if m.unit:
                lines.append(f"# UNIT {name} {m.unit}")
            lines.append(f"# TYPE {name} {m.kind}")
            lines.extend(m.expose())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """JSON-able snapshot: metric name -> type/help/unit/series."""
        return {
            name: {
                "type": m.kind,
                "help": m.help,
                "unit": m.unit,
                "labelnames": list(m.labelnames),
                "series": m.snap(),
            }
            for name, m in sorted(self._metrics.items())
        }

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters/histograms add, gauges
        take the other registry's (fresher) value, unknown metrics are
        adopted whole."""
        for name, theirs in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = Histogram(
                        name,
                        help=theirs.help,
                        unit=theirs.unit,
                        labelnames=theirs.labelnames,
                        buckets=theirs.buckets,
                    )
                else:
                    mine = type(theirs)(
                        name,
                        help=theirs.help,
                        unit=theirs.unit,
                        labelnames=theirs.labelnames,
                    )
                self._metrics[name] = mine
            mine.merge_from(theirs)
