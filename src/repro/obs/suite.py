"""The one-stop observability bundle attached to an engine.

:class:`MetricsSuite` wires the three obs components — metrics registry,
span tracer, periodic samplers — to an engine's typed event stream in
one call, and is what ``Session(metrics=True)`` and
``CompositionServer(metrics=...)`` hand back.  The engine-level metric
catalogue it maintains (see ``docs/OBSERVABILITY.md``):

=================================  ======================  ==============
metric                             labels                  type
=================================  ======================  ==============
repro_tasks_submitted_total        codelet                 counter
repro_tasks_completed_total        codelet, variant, arch  counter
repro_task_duration_seconds        codelet, variant        histogram
repro_task_queue_wait_seconds      codelet                 histogram
repro_schedule_decisions_total     codelet                 counter
repro_schedule_retries_total       codelet                 counter
repro_transfers_total              direction               counter
repro_transfer_bytes_total         direction               counter
repro_transfer_seconds             direction               histogram
repro_evictions_total              node                    counter
repro_faults_total                 kind                    counter
repro_queue_depth (sampler)        —                       gauge
repro_worker_busy (sampler)        worker                  gauge
repro_node_resident_bytes          node                    gauge
repro_backlog_seconds (sampler)    —                       gauge
=================================  ======================  ==============

Counters and histograms fold incrementally out of the engine trace on
every read (``snapshot`` / ``to_prometheus`` / shutdown flush); the
sampler gauges are brought up to the virtual clock at the same points
by :class:`~repro.obs.samplers.EngineSamplers`.  Everything is
virtual-time-deterministic for a fixed seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.samplers import DEFAULT_PERIOD_S, EngineSamplers
from repro.obs.spans import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Engine


class _EngineMetrics:
    """Maintains the engine-level metric catalogue from the engine.

    Nothing runs per task: every catalogue signal already exists in the
    engine's :class:`ExecutionTrace` — completion / transfer / eviction
    / fault records are retained in emission order, and submit-time
    facts live in the trace's native per-codelet counters
    (``submitted_by_codelet`` & co.).  :meth:`collect` folds both
    incrementally (remembering how far it has read, exactly like the
    trace's own derived-stat cache), and runs on every read path
    (``MetricsSuite.snapshot`` / ``to_prometheus``), on the engine's
    shutdown ``flush`` event and on ``detach`` — so values are exact at
    every observation point while the metrics-on hot path costs the
    engine nothing beyond its always-on bookkeeping.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._submitted = registry.counter(
            "repro_tasks_submitted_total",
            help="Tasks accepted by Engine.submit",
            labelnames=("codelet",),
        )
        self._completed = registry.counter(
            "repro_tasks_completed_total",
            help="Tasks whose completion event was processed",
            labelnames=("codelet", "variant", "arch"),
        )
        self._duration = registry.histogram(
            "repro_task_duration_seconds",
            help="Modeled kernel execution time",
            unit="seconds",
            labelnames=("codelet", "variant"),
        )
        self._queue_wait = registry.histogram(
            "repro_task_queue_wait_seconds",
            help="Submission to execution start (deps + scheduling + staging)",
            unit="seconds",
            labelnames=("codelet",),
        )
        self._decisions = registry.counter(
            "repro_schedule_decisions_total",
            help="Scheduler.choose calls (one per placement attempt)",
            labelnames=("codelet",),
        )
        self._retries = registry.counter(
            "repro_schedule_retries_total",
            help="Placement attempts after a fault (attempt > 0)",
            labelnames=("codelet",),
        )
        self._transfers = registry.counter(
            "repro_transfers_total",
            help="Committed copies between memory nodes",
            labelnames=("direction",),
        )
        self._transfer_bytes = registry.counter(
            "repro_transfer_bytes_total",
            help="Bytes moved between memory nodes",
            unit="bytes",
            labelnames=("direction",),
        )
        self._transfer_s = registry.histogram(
            "repro_transfer_seconds",
            help="Modeled duration of one committed copy",
            unit="seconds",
            labelnames=("direction",),
        )
        self._evictions = registry.counter(
            "repro_evictions_total",
            help="Device-memory copies dropped to make room",
            labelnames=("node",),
        )
        self._faults = registry.counter(
            "repro_faults_total",
            help="Injected hardware faults by kind",
            labelnames=("kind",),
        )
        # bound-child caches: label handling is paid once per distinct
        # label set, not once per folded event
        self._sub_by_codelet: dict = {}
        self._sched_by_codelet: dict = {}
        self._retry_by_codelet: dict = {}
        self._done_by_cva: dict = {}
        self._xfer_by_dir: dict = {}
        self._evict_by_node: dict = {}
        self._fault_by_kind: dict = {}
        # read positions into the engine trace: list indexes for the
        # record lists, last-seen count snapshots for the native
        # per-codelet counters
        self._engine: "Engine | None" = None
        self._i_tasks = 0
        self._i_transfers = 0
        self._i_evictions = 0
        self._i_faults = 0
        self._seen_sub: dict = {}
        self._seen_dec: dict = {}
        self._seen_retry: dict = {}

    def subscribe(self, engine: "Engine") -> Callable[[], None]:
        """Wire this catalogue to ``engine``.

        Counting starts at the current trace position (attach-onward
        semantics).  Returns a detach callable, which collects first so
        nothing observed is lost.
        """
        self._engine = engine
        trace = engine.trace
        self._i_tasks = len(trace.tasks)
        self._i_transfers = len(trace.transfers)
        self._i_evictions = len(trace.evictions)
        self._i_faults = len(trace.faults)
        self._seen_sub = dict(trace.submitted_by_codelet)
        self._seen_dec = dict(trace.decisions_by_codelet)
        self._seen_retry = dict(trace.retries_by_codelet)

        unsubscribe = engine.events.subscribe("flush", self.on_flush)

        def detach() -> None:
            self.collect()
            self._engine = None
            unsubscribe()

        return detach

    def _fold_since(self, records: list, start: int, fold) -> int:
        """Fold ``records[start:]`` and return the new read position.

        A length below ``start`` means ``trace.clear()`` ran while
        attached; counting restarts from the beginning of the new list.
        """
        n = len(records)
        if n < start:
            start = 0
        for rec in records[start:n]:
            fold(rec)
        return n

    def _fold_counts(self, current: dict, seen: dict, children: dict, metric) -> None:
        """Add the growth of a per-codelet trace counter to ``metric``.

        A count below the snapshot means ``trace.clear()`` ran while
        attached; counting restarts from the new value.
        """
        for name, n in current.items():
            delta = n - seen.get(name, 0)
            if delta < 0:
                delta = n
            if delta:
                child = children.get(name)
                if child is None:
                    child = children[name] = metric.labels(codelet=name)
                child.inc(delta)
                seen[name] = n

    def collect(self) -> None:
        """Fold the engine trace's growth into the registry (idempotent)."""
        engine = self._engine
        if engine is None:
            return
        trace = engine.trace
        self._fold_counts(
            trace.submitted_by_codelet,
            self._seen_sub,
            self._sub_by_codelet,
            self._submitted,
        )
        self._fold_counts(
            trace.decisions_by_codelet,
            self._seen_dec,
            self._sched_by_codelet,
            self._decisions,
        )
        self._fold_counts(
            trace.retries_by_codelet,
            self._seen_retry,
            self._retry_by_codelet,
            self._retries,
        )
        self._i_tasks = self._fold_since(
            trace.tasks, self._i_tasks, self._fold_complete
        )
        self._i_transfers = self._fold_since(
            trace.transfers, self._i_transfers, self._fold_transfer
        )
        self._i_evictions = self._fold_since(
            trace.evictions, self._i_evictions, self._fold_evict
        )
        self._i_faults = self._fold_since(
            trace.faults, self._i_faults, self._fold_fault
        )

    def on_flush(self, event) -> None:
        self.collect()

    @staticmethod
    def _direction(src: int, dst: int) -> str:
        if src == 0 and dst != 0:
            return "h2d"
        if src != 0 and dst == 0:
            return "d2h"
        return "d2d"

    # -- fold one record into the registry ------------------------------------

    def _fold_complete(self, rec) -> None:
        cva = (rec.codelet, rec.variant, rec.arch)
        bound = self._done_by_cva.get(cva)
        if bound is None:
            bound = self._done_by_cva[cva] = (
                self._completed.labels(
                    codelet=rec.codelet, variant=rec.variant, arch=rec.arch
                ),
                self._duration.labels(
                    codelet=rec.codelet, variant=rec.variant
                ),
                self._queue_wait.labels(codelet=rec.codelet),
            )
        completed, duration, queue_wait = bound
        completed.inc()
        duration.observe(rec.duration)
        queue_wait.observe(rec.start_time - rec.submit_time)

    def _fold_transfer(self, rec) -> None:
        direction = self._direction(rec.src_node, rec.dst_node)
        bound = self._xfer_by_dir.get(direction)
        if bound is None:
            bound = self._xfer_by_dir[direction] = (
                self._transfers.labels(direction=direction),
                self._transfer_bytes.labels(direction=direction),
                self._transfer_s.labels(direction=direction),
            )
        transfers, transfer_bytes, transfer_s = bound
        transfers.inc()
        transfer_bytes.inc(rec.nbytes)
        transfer_s.observe(rec.end_time - rec.start_time)

    def _fold_evict(self, rec) -> None:
        node = rec.node
        child = self._evict_by_node.get(node)
        if child is None:
            child = self._evict_by_node[node] = self._evictions.labels(node=node)
        child.inc()

    def _fold_fault(self, rec) -> None:
        kind = rec.kind
        child = self._fault_by_kind.get(kind)
        if child is None:
            child = self._fault_by_kind[kind] = self._faults.labels(kind=kind)
        child.inc()


class MetricsSuite:
    """Registry + samplers (+ optional span tracer), attached to one engine.

    Build with :meth:`attach` (or let ``Session(metrics=True)`` /
    ``CompositionServer(metrics=...)`` do it); afterwards
    ``suite.snapshot()`` and ``suite.to_prometheus()`` expose the live
    state at any point of the run, and ``suite.spans`` / ``suite
    .samplers`` hold the trace/sample views.

    The default configuration (metrics + samplers) is held to the 5%
    engine-throughput overhead budget enforced by
    ``python -m repro.experiments.overhead`` — comfortably, because it
    subscribes to no per-task events at all: every catalogue signal is
    folded incrementally out of state the engine retains anyway (trace
    records and its native per-codelet counters) on read (see
    :meth:`collect`), so every exposition is exact while the hot path
    is untouched.  Span tracing is the deeper-inspection tier — it
    builds a :class:`Span` tree per task synchronously from the typed
    event stream and costs roughly 10%, so it is opt-in:
    ``metrics={"trace_spans": True}``.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        period_s: float = DEFAULT_PERIOD_S,
        trace_spans: bool = False,
        max_finished_spans: int | None = 10_000,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.period_s = float(period_s)
        self.spans = SpanTracer(max_finished=max_finished_spans) if trace_spans else None
        self.samplers: EngineSamplers | None = None
        self.engine: "Engine | None" = None
        self._engine_metrics = _EngineMetrics(self.registry)
        self._detachers: list[Callable[[], None]] = []

    @classmethod
    def create(
        cls, spec: "bool | MetricsSuite | dict | None"
    ) -> "MetricsSuite | None":
        """Normalize the ``metrics=`` argument of Session/CompositionServer.

        ``True`` → a fresh default suite; a :class:`MetricsSuite` → used
        as-is; a dict → keyword arguments for the constructor (e.g.
        ``{"period_s": 1e-2}``); ``False``/``None`` → no suite.
        """
        if spec is None or spec is False:
            return None
        if spec is True:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls(**spec)
        raise TypeError(
            f"metrics= expects bool, dict or MetricsSuite, got {type(spec).__name__}"
        )

    # -- lifecycle -----------------------------------------------------------

    def attach(self, engine: "Engine") -> "MetricsSuite":
        """Subscribe every component to ``engine``'s event stream.

        Re-attaching to a new engine (``Session.restart``) first detaches
        from the old one; counters and histograms keep accumulating
        across engines, gauges and samples reflect the current engine.
        """
        self.detach()
        self.engine = engine
        self._detachers.append(self._engine_metrics.subscribe(engine))
        if self.spans is not None:
            self._detachers.append(engine.events.attach(self.spans))
        self.samplers = EngineSamplers(
            engine, period_s=self.period_s, registry=self.registry
        )
        self._detachers.append(engine.events.attach(self.samplers))
        return self

    def detach(self) -> None:
        for undo in self._detachers:
            undo()
        self._detachers.clear()
        self.engine = None

    # -- exposition ----------------------------------------------------------

    def collect(self) -> None:
        """Fold queued engine events and new trace records into the registry.

        Called automatically by :meth:`snapshot` / :meth:`to_prometheus`,
        at engine shutdown (the ``flush`` event) and on :meth:`detach`;
        call it yourself only before reading :attr:`registry` metrics
        directly mid-run.  Also brings the samplers up to the engine
        clock, so sampler gauges are current at every exposition.
        """
        self._engine_metrics.collect()
        if self.samplers is not None and self.engine is not None:
            self.samplers.catch_up()

    def snapshot(self) -> dict:
        """JSON-able snapshot of every registered metric (live)."""
        self.collect()
        return self.registry.snapshot()

    def to_prometheus(self) -> str:
        self.collect()
        return self.registry.to_prometheus()

    def save_chrome_trace(self, path) -> None:
        """Write the engine's Chrome trace with the span overlay merged in.

        Workers appear under ``pid=0`` (the existing exporter), spans
        under ``pid=2``.
        """
        import json
        from pathlib import Path

        from repro.runtime.trace_export import to_chrome_trace

        if self.engine is None:
            raise RuntimeError("suite is not attached to an engine")
        doc = to_chrome_trace(self.engine.trace, self.engine.machine)
        if self.spans is not None:
            doc["traceEvents"].extend(self.spans.to_chrome_events())
        Path(path).write_text(json.dumps(doc))
