"""Virtual-time span tracing of component invocations.

Each task submitted to the engine becomes one ``invoke`` span covering
submit → completion, with nested child spans reconstructed from the
typed event stream:

- ``schedule-wait`` — submission until the placement was committed
  (dependency wait + scheduler queueing + staging);
- ``transfer`` — one child per data copy committed while staging this
  task's operands (labelled with handle name, src/dst node, bytes);
- ``kernel`` — the modeled execution window on the chosen workers.

All times are *virtual* seconds from the discrete-event clock, so span
trees are deterministic for a fixed seed.  Spans are queryable while the
run is live (:meth:`SpanTracer.active`, :meth:`SpanTracer.for_task`) and
exportable as Chrome-trace events that overlay the existing
:mod:`repro.runtime.trace_export` timeline (same ``pid``/``tid``
conventions, so ``chrome://tracing`` shows both in one view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.events import (
        CompleteEvent,
        StartEvent,
        SubmitEvent,
        TransferEvent,
    )


@dataclass
class Span:
    """One timed operation in an invocation tree.

    ``end`` is ``None`` while the span is still open (queried live).
    ``kind`` is one of ``invoke`` / ``schedule-wait`` / ``transfer`` /
    ``kernel``; ``labels`` carries kind-specific detail (codelet,
    variant, worker ids, handle names, byte counts).
    """

    kind: str
    name: str
    start: float
    end: float | None = None
    task_id: int | None = None
    labels: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    @property
    def open(self) -> bool:
        return self.end is None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_jsonable(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "task_id": self.task_id,
            "labels": dict(self.labels),
            "children": [c.to_jsonable() for c in self.children],
        }


class SpanTracer:
    """Build invocation span trees from the engine event stream.

    Attach to an engine with ``engine.events.attach(tracer)`` (done for
    you by :class:`repro.obs.MetricsSuite`).  Completed invocation trees
    accumulate in :attr:`finished`; open ones are visible via
    :meth:`active`.
    """

    def __init__(self, max_finished: int | None = None) -> None:
        #: completed invocation roots, in completion order
        self.finished: list[Span] = []
        #: keep at most this many finished roots (None = unbounded)
        self.max_finished = max_finished
        self._open: dict[int, Span] = {}
        self._n_finished = 0

    # -- engine event handlers (bound by EngineEvents.attach) ---------------

    def on_submit(self, event: "SubmitEvent") -> None:
        task = event.task
        root = Span(
            kind="invoke",
            name=task.codelet.name,
            start=event.time,
            task_id=task.task_id,
            labels={"task": task.name, "codelet": task.codelet.name},
        )
        root.children.append(
            Span(
                kind="schedule-wait",
                name=f"{task.codelet.name}:wait",
                start=event.time,
                task_id=task.task_id,
            )
        )
        self._open[task.task_id] = root

    def on_transfer(self, event: "TransferEvent") -> None:
        if event.task is None:
            return  # host-initiated copy: not part of an invocation
        root = self._open.get(event.task.task_id)
        if root is None:
            return
        rec = event.record
        root.children.append(
            Span(
                kind="transfer",
                name=f"copy:{rec.handle_name}",
                start=rec.start_time,
                end=rec.end_time,
                task_id=event.task.task_id,
                labels={
                    "handle": rec.handle_name,
                    "src_node": rec.src_node,
                    "dst_node": rec.dst_node,
                    "nbytes": rec.nbytes,
                },
            )
        )

    def on_start(self, event: "StartEvent") -> None:
        task = event.task
        root = self._open.get(task.task_id)
        if root is None:
            return
        wait = root.children[0]
        if wait.kind == "schedule-wait" and wait.open:
            wait.end = event.time
        variant = task.chosen_variant
        root.children.append(
            Span(
                kind="kernel",
                name=variant.name if variant else task.codelet.name,
                start=task.start_time,
                end=task.end_time,
                task_id=task.task_id,
                labels={
                    "variant": variant.name if variant else "",
                    "arch": variant.arch.value if variant else "",
                    "workers": [u.unit_id for u in task.workers],
                },
            )
        )
        if variant is not None:
            root.labels.setdefault("variant", variant.name)

    def on_complete(self, event: "CompleteEvent") -> None:
        root = self._open.pop(event.task.task_id, None)
        if root is None:
            return
        root.end = event.time
        for child in root.children:
            if child.open:  # fault-retried wait that never started
                child.end = event.time
        self.finished.append(root)
        self._n_finished += 1
        if (
            self.max_finished is not None
            and len(self.finished) > self.max_finished
        ):
            del self.finished[: len(self.finished) - self.max_finished]

    def on_flush(self, event) -> None:
        # close anything still open (aborted tasks never complete)
        for task_id in list(self._open):
            root = self._open.pop(task_id)
            root.end = event.time
            root.labels["unfinished"] = True
            for child in root.children:
                if child.open:
                    child.end = event.time
            self.finished.append(root)
            self._n_finished += 1

    # -- live queries --------------------------------------------------------

    def active(self) -> list[Span]:
        """Invocation roots submitted but not yet completed."""
        return list(self._open.values())

    def for_task(self, task_id: int) -> Span | None:
        """The invocation root for one task, open or finished."""
        span = self._open.get(task_id)
        if span is not None:
            return span
        for root in reversed(self.finished):
            if root.task_id == task_id:
                return root
        return None

    @property
    def n_spans(self) -> int:
        """Total spans recorded (all kinds, finished trees only)."""
        return sum(1 for root in self.finished for _ in root.walk())

    @property
    def n_finished(self) -> int:
        """Invocation roots completed over the tracer's lifetime
        (unaffected by ``max_finished`` trimming)."""
        return self._n_finished

    # -- export --------------------------------------------------------------

    def to_chrome_events(self, pid: int = 2) -> list[dict]:
        """Chrome-trace complete events (``ph: "X"``), one per span.

        Uses ``pid=2`` so the span overlay groups separately from the
        worker timeline that :func:`repro.runtime.trace_export
        .to_chrome_trace` emits under ``pid=0``; concatenate the two
        ``traceEvents`` lists to view both.
        """
        events: list[dict] = []
        for root in self.finished:
            tid = root.task_id if root.task_id is not None else 0
            for span in root.walk():
                end = span.end if span.end is not None else span.start
                events.append(
                    {
                        "name": f"{span.kind}:{span.name}",
                        "cat": span.kind,
                        "ph": "X",
                        "pid": pid,
                        "tid": tid,
                        "ts": span.start * 1e6,
                        "dur": (end - span.start) * 1e6,
                        "args": dict(span.labels),
                    }
                )
        return events

    def to_jsonable(self) -> list[dict]:
        return [root.to_jsonable() for root in self.finished]
