"""Periodic engine samplers driven by the discrete-event clock.

Real runtimes poll queue depths and utilisation on a wall-clock timer;
here everything runs in virtual time and the engine's load queries are
all time-parameterized, so the samplers are fully *lazy*: whenever the
suite is read (and at the shutdown ``flush`` event) they record one
:class:`SamplePoint` per sampling-period boundary crossed since the
last catch-up, each computed with the exact committed state at that
boundary (the engine state between events is piecewise-constant, so
nothing is lost and the per-task hot path pays nothing).  The ``flush``
event closes the tail window, so the last partial period is observed
before any shutdown consumer runs.

Sampled signals, each mirrored into gauges of the shared
:class:`~repro.obs.metrics.MetricsRegistry` when one is given:

==============================  =========================================
signal                          gauge (labels)
==============================  =========================================
queue depth                     ``repro_queue_depth``
per-worker busy flag            ``repro_worker_busy{worker=}``
container residency per node    ``repro_node_resident_bytes{node=}``
perf-model / worker backlog     ``repro_backlog_seconds``
==============================  =========================================

Guidance on the period: the default (1 ms virtual) resolves individual
kernel executions on the paper's machines; for long closed-loop serving
runs 10-100 ms keeps sample counts small.  Sampling cost is O(workers +
memory nodes) per period *actually crossed*, so a coarse period on a
short run costs almost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.engine import Engine

#: default virtual-time sampling period (seconds)
DEFAULT_PERIOD_S = 1e-3


@dataclass(frozen=True)
class SamplePoint:
    """Engine state observed at one sampling-period boundary."""

    time: float
    queue_depth: int
    #: 1.0 when the worker is occupied at the sample time, else 0.0
    worker_busy: tuple[float, ...]
    #: resident container bytes per device memory node (index 0 = node 1)
    resident_bytes: tuple[int, ...]
    backlog_s: float

    @property
    def busy_fraction(self) -> float:
        """Fraction of workers busy at this instant."""
        if not self.worker_busy:
            return 0.0
        return sum(self.worker_busy) / len(self.worker_busy)

    def to_jsonable(self) -> dict:
        return {
            "time": self.time,
            "queue_depth": self.queue_depth,
            "worker_busy": list(self.worker_busy),
            "resident_bytes": list(self.resident_bytes),
            "backlog_s": self.backlog_s,
        }


class EngineSamplers:
    """Sample engine load state at fixed virtual-time intervals.

    Attach to an engine with ``engine.events.attach(sampler)`` after
    constructing with that engine (done by :class:`repro.obs
    .MetricsSuite`).  Samples accumulate in :attr:`samples`; when a
    registry is supplied the latest sample is also mirrored into gauges.
    """

    def __init__(
        self,
        engine: "Engine",
        period_s: float = DEFAULT_PERIOD_S,
        registry: "MetricsRegistry | None" = None,
        max_samples: int | None = 100_000,
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"sampling period must be positive, got {period_s}")
        self.engine = engine
        self.period_s = float(period_s)
        self.samples: list[SamplePoint] = []
        self.max_samples = max_samples
        self._next_boundary = self.period_s
        if registry is not None:
            self._g_queue = registry.gauge(
                "repro_queue_depth",
                help="Tasks scheduled but not yet finished in virtual time",
            )
            self._g_busy = registry.gauge(
                "repro_worker_busy",
                help="1 when the worker is occupied at the sample instant",
                labelnames=("worker",),
            )
            self._g_resident = registry.gauge(
                "repro_node_resident_bytes",
                help="Container bytes resident per device memory node",
                unit="bytes",
                labelnames=("node",),
            )
            self._g_backlog = registry.gauge(
                "repro_backlog_seconds",
                help="Committed virtual seconds ahead of the most loaded worker",
                unit="seconds",
            )
        else:
            self._g_queue = None

    # -- catch-up points -----------------------------------------------------

    # Sampling is lazy: nothing runs per engine event.  Every engine
    # state query below is parameterized by the boundary time ``t``, so
    # boundaries can be recorded retrospectively with the exact state
    # *at the boundary* — :meth:`catch_up` (called by ``MetricsSuite
    # .collect`` on every exposition) advances to the engine clock, and
    # the shutdown ``flush`` event closes the tail window.  Post-run
    # samples are therefore computed against the fully committed
    # timeline, and the hot path pays nothing.

    def catch_up(self) -> None:
        """Record samples for boundaries crossed up to the engine clock."""
        self._advance(self.engine.clock.now)

    def on_flush(self, event) -> None:
        """Close the tail window: sample boundaries up to the flush time,
        plus one final off-boundary sample of the drained state."""
        self._advance(event.time)
        self._record(event.time)

    # -- sampling ------------------------------------------------------------

    def _advance(self, now: float) -> None:
        """Record one sample per period boundary crossed before ``now``."""
        if now < self._next_boundary:
            return
        # cap the number of catch-up samples so one huge idle gap cannot
        # produce millions of identical points
        while self._next_boundary <= now:
            remaining = (now - self._next_boundary) / self.period_s
            if self.max_samples is not None and remaining > self.max_samples:
                # skip ahead: the state is constant over the gap anyway
                skip = int(remaining) - self.max_samples
                self._next_boundary += skip * self.period_s
            self._record(self._next_boundary)
            self._next_boundary += self.period_s

    def _record(self, t: float) -> None:
        engine = self.engine
        busy = tuple(
            1.0 if engine.worker_available_at(u.unit_id) > t else 0.0
            for u in engine.machine.units
        )
        resident = tuple(
            engine.resident_bytes(node)
            for node in range(1, engine.machine.n_memory_nodes)
        )
        point = SamplePoint(
            time=t,
            queue_depth=engine.n_inflight(t),
            worker_busy=busy,
            resident_bytes=resident,
            backlog_s=engine.backlog_seconds(t),
        )
        self.samples.append(point)
        if self.max_samples is not None and len(self.samples) > self.max_samples:
            del self.samples[: len(self.samples) - self.max_samples]
        if self._g_queue is not None:
            self._g_queue.set(point.queue_depth)
            for u, b in zip(engine.machine.units, busy):
                self._g_busy.set(b, worker=u.unit_id)
            for node, nbytes in enumerate(resident, start=1):
                self._g_resident.set(nbytes, node=node)
            self._g_backlog.set(point.backlog_s)

    # -- views ---------------------------------------------------------------

    @property
    def latest(self) -> SamplePoint | None:
        return self.samples[-1] if self.samples else None

    def mean_busy_fraction(self) -> float:
        """Average instantaneous busy fraction over all samples."""
        if not self.samples:
            return 0.0
        return sum(s.busy_fraction for s in self.samples) / len(self.samples)

    def peak_queue_depth(self) -> int:
        return max((s.queue_depth for s in self.samples), default=0)

    def to_jsonable(self) -> list[dict]:
        return [s.to_jsonable() for s in self.samples]
