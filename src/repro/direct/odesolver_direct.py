"""The Runge-Kutta ODE solver written directly against the runtime system.

The largest row of Table I (LibSolve: 800 LOC with the tool vs 1252
direct): nine codelets, each with hand-written backend wrappers, plus a
hand-coded integration loop that registers operands, packs scalar
arguments and contexts, and manages synchronisation — everything the
composition tool otherwise generates from the XML descriptors.

Also the vehicle of Figure 7: ``main(variants=("cpu",))`` is the
"Direct - CPU" curve, ``main(variants=("cuda",))`` "Direct - CUDA".
"""

from __future__ import annotations

import numpy as np

from repro.apps import odesolver as ode
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime

_ARCH_OF = {"cpu": Arch.CPU, "openmp": Arch.OPENMP, "cuda": Arch.CUDA}


# hand-written backend wrappers, one per component x backend ------------------

def _init_task(ctx, *args):
    y, n = args[0], args[1]
    ode.ode_init_kernel(y, n)


def _rhs_task(ctx, *args):
    y, k, n, t = args[0], args[1], args[2], args[3]
    ode.ode_rhs_kernel(y, k, n, t)


def _accum_task(ctx, *args):
    du, k, a, h, n = args[0], args[1], args[2], args[3], args[4]
    ode.ode_accum_kernel(du, k, a, h, n)


def _update_task(ctx, *args):
    y, du, b, n = args[0], args[1], args[2], args[3]
    ode.ode_update_kernel(y, du, b, n)


def _err_accum_task(ctx, *args):
    err, du, c, n = args[0], args[1], args[2], args[3]
    ode.ode_err_accum_kernel(err, du, c, n)


def _reset_task(ctx, *args):
    v, n = args[0], args[1]
    ode.ode_reset_kernel(v, n)


def _norm_task(ctx, *args):
    err, y, result, n = args[0], args[1], args[2], args[3]
    ode.ode_norm_kernel(err, y, result, n)


def _copy_task(ctx, *args):
    src, dst, n = args[0], args[1], args[2]
    ode.ode_copy_kernel(src, dst, n)


def _output_task(ctx, *args):
    y, sample, n, stride = args[0], args[1], args[2], args[3]
    ode.ode_output_kernel(y, sample, n, stride)


_TASK_FNS = {
    "ode_init": _init_task,
    "ode_rhs": _rhs_task,
    "ode_accum": _accum_task,
    "ode_update": _update_task,
    "ode_err_accum": _err_accum_task,
    "ode_reset": _reset_task,
    "ode_norm": _norm_task,
    "ode_copy": _copy_task,
    "ode_output": _output_task,
}


def build_codelets(variants: tuple[str, ...] = ("cpu", "openmp", "cuda")) -> dict[str, Codelet]:
    """Hand-assembled codelets for all nine components.

    ``variants`` restricts the registered backends — the Figure 7 curves
    use single-backend builds.
    """
    codelets: dict[str, Codelet] = {}
    for name in ode.COMPONENT_NAMES:
        codelet = Codelet(name)
        for suffix in variants:
            cost = getattr(ode, f"{name}_cost_{suffix}")
            codelet.add_variant(
                ImplVariant(
                    name=f"{name}_{suffix}",
                    arch=_ARCH_OF[suffix],
                    fn=_TASK_FNS[name],
                    cost_model=cost,
                )
            )
        codelets[name] = codelet
    return codelets


def integrate(
    runtime: Runtime,
    codelets: dict[str, Codelet],
    n: int,
    steps: int,
    h: float = 1e-3,
    sample_every: int = 10,
) -> tuple[np.ndarray, int]:
    """Hand-coded integration loop against the raw runtime API.

    Returns (final state, number of component invocations).
    """
    y = np.zeros(n, dtype=np.float32)
    k = np.zeros(n, dtype=np.float32)
    du = np.zeros(n, dtype=np.float32)
    err = np.zeros(n, dtype=np.float32)
    norm = np.zeros(1, dtype=np.float32)
    sample = np.zeros(min(n, 16), dtype=np.float32)
    h_y = runtime.register(y, "y")
    h_k = runtime.register(k, "k")
    h_du = runtime.register(du, "du")
    h_err = runtime.register(err, "err")
    h_norm = runtime.register(norm, "norm")
    h_sample = runtime.register(sample, "sample")
    calls = 0
    runtime.submit(
        codelets["ode_init"], [(h_y, "w")], ctx={"n": n}, scalar_args=(n,),
        name="ode_init",
    )
    calls += 1
    runtime.submit(
        codelets["ode_copy"], [(h_y, "r"), (h_du, "w")], ctx={"n": n},
        scalar_args=(n,), name="ode_copy",
    )
    calls += 1
    t = 0.0
    stride = max(n // max(len(sample), 1), 1)
    for step in range(steps):
        runtime.submit(
            codelets["ode_reset"], [(h_err, "w")], ctx={"n": n},
            scalar_args=(n,), name="ode_reset",
        )
        calls += 1
        for stage in range(5):
            runtime.submit(
                codelets["ode_rhs"], [(h_y, "r"), (h_k, "w")], ctx={"n": n},
                scalar_args=(n, t + h * stage / 5.0), name="ode_rhs",
            )
            runtime.submit(
                codelets["ode_accum"], [(h_du, "rw"), (h_k, "r")], ctx={"n": n},
                scalar_args=(ode.CK_A[stage], h, n), name="ode_accum",
            )
            runtime.submit(
                codelets["ode_update"], [(h_y, "rw"), (h_du, "r")], ctx={"n": n},
                scalar_args=(ode.CK_B[stage], n), name="ode_update",
            )
            calls += 3
        runtime.submit(
            codelets["ode_err_accum"], [(h_err, "rw"), (h_du, "r")], ctx={"n": n},
            scalar_args=(ode.CK_C[step % 5], n), name="ode_err_accum",
        )
        runtime.submit(
            codelets["ode_norm"], [(h_err, "r"), (h_y, "r"), (h_norm, "w")],
            ctx={"n": n}, scalar_args=(n,), name="ode_norm",
        )
        calls += 2
        if (step + 1) % sample_every == 0:
            runtime.submit(
                codelets["ode_output"], [(h_y, "r"), (h_sample, "w")],
                ctx={"n": n}, scalar_args=(n, stride), name="ode_output",
            )
            calls += 1
        t += h
    runtime.wait_for_all()
    runtime.unregister(h_y)
    runtime.unregister(h_k)
    runtime.unregister(h_du)
    runtime.unregister(h_err)
    runtime.unregister(h_norm)
    runtime.unregister(h_sample)
    return y, calls


def main(
    platform: str = "c2050",
    n: int = 2 * 250 * 250,
    steps: int = 588,
    variants: tuple[str, ...] = ("cpu", "openmp", "cuda"),
    scheduler: str = "dmda",
    seed: int = 0,
) -> tuple[np.ndarray, float, int]:
    """Complete hand-written application main program.

    Returns (final state, virtual execution time, invocation count).
    """
    machine = by_name(platform)
    runtime = Runtime(machine, scheduler=scheduler, seed=seed)
    codelets = build_codelets(variants)
    y, calls = integrate(runtime, codelets, n, steps)
    elapsed = runtime.shutdown()
    return y, elapsed, calls
