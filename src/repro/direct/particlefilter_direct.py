"""ParticleFilter written directly against the runtime system."""

from __future__ import annotations

import numpy as np

from repro.apps.particlefilter import (
    cost_cpu,
    cost_cuda,
    cost_openmp,
    particlefilter_cpu,
    particlefilter_cuda,
    particlefilter_openmp,
)
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _pf_cpu_task(ctx, *args):
    frames, track = args[0], args[1]
    n_frames, dim, n_particles, seed = args[2], args[3], args[4], args[5]
    particlefilter_cpu(frames, n_frames, dim, n_particles, seed, track)


def _pf_openmp_task(ctx, *args):
    frames, track = args[0], args[1]
    n_frames, dim, n_particles, seed = args[2], args[3], args[4], args[5]
    particlefilter_openmp(frames, n_frames, dim, n_particles, seed, track)


def _pf_cuda_task(ctx, *args):
    frames, track = args[0], args[1]
    n_frames, dim, n_particles, seed = args[2], args[3], args[4], args[5]
    particlefilter_cuda(frames, n_frames, dim, n_particles, seed, track)


def build_codelet() -> Codelet:
    codelet = Codelet("particlefilter")
    codelet.add_variant(
        ImplVariant(
            name="particlefilter_cpu", arch=Arch.CPU, fn=_pf_cpu_task, cost_model=cost_cpu
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="particlefilter_openmp",
            arch=Arch.OPENMP,
            fn=_pf_openmp_task,
            cost_model=cost_openmp,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="particlefilter_cuda",
            arch=Arch.CUDA,
            fn=_pf_cuda_task,
            cost_model=cost_cuda,
        )
    )
    return codelet


def particlefilter_call(
    runtime: Runtime,
    codelet: Codelet,
    frames: np.ndarray,
    track: np.ndarray,
    n_frames: int,
    dim: int,
    n_particles: int,
    seed: int,
    sync: bool = True,
):
    """One hand-written invocation: register, pack, submit, flush."""
    h_frames = runtime.register(frames, "frames")
    h_track = runtime.register(track, "track")
    ctx = {"n_frames": n_frames, "dim": dim, "n_particles": n_particles}
    task = runtime.submit(
        codelet,
        [(h_frames, "r"), (h_track, "w")],
        ctx=ctx,
        scalar_args=(n_frames, dim, n_particles, seed),
        sync=sync,
        name="particlefilter",
    )
    if sync:
        runtime.unregister(h_frames)
        runtime.unregister(h_track)
    return task


def main(
    platform: str = "c2050", n_particles: int = 16_000, seed: int = 0
) -> np.ndarray:
    """Complete hand-written application main program."""
    from repro.apps.particlefilter import make_video

    machine = by_name(platform)
    runtime = Runtime(machine, scheduler="dmda", seed=seed)
    codelet = build_codelet()
    frames, _ = make_video(8, 64, seed=seed)
    track = np.zeros(16, dtype=np.float32)
    particlefilter_call(runtime, codelet, frames, track, 8, 64, n_particles, seed)
    runtime.shutdown()
    return track
