"""HotSpot written directly against the runtime system (Table I "Direct")."""

from __future__ import annotations

import numpy as np

from repro.apps.hotspot import (
    cost_cpu,
    cost_cuda,
    cost_openmp,
    hotspot_cpu,
    hotspot_cuda,
    hotspot_openmp,
)
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _hotspot_cpu_task(ctx, *args):
    power, temp = args[0], args[1]
    rows, cols, iters = args[2], args[3], args[4]
    hotspot_cpu(power, temp, rows, cols, iters)


def _hotspot_openmp_task(ctx, *args):
    power, temp = args[0], args[1]
    rows, cols, iters = args[2], args[3], args[4]
    hotspot_openmp(power, temp, rows, cols, iters)


def _hotspot_cuda_task(ctx, *args):
    power, temp = args[0], args[1]
    rows, cols, iters = args[2], args[3], args[4]
    hotspot_cuda(power, temp, rows, cols, iters)


def build_codelet() -> Codelet:
    codelet = Codelet("hotspot")
    codelet.add_variant(
        ImplVariant(
            name="hotspot_cpu", arch=Arch.CPU, fn=_hotspot_cpu_task, cost_model=cost_cpu
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="hotspot_openmp",
            arch=Arch.OPENMP,
            fn=_hotspot_openmp_task,
            cost_model=cost_openmp,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="hotspot_cuda",
            arch=Arch.CUDA,
            fn=_hotspot_cuda_task,
            cost_model=cost_cuda,
        )
    )
    return codelet


def hotspot_call(
    runtime: Runtime,
    codelet: Codelet,
    power: np.ndarray,
    temp: np.ndarray,
    rows: int,
    cols: int,
    iters: int,
    sync: bool = True,
):
    """One hand-written hotspot invocation: register, pack, submit, flush."""
    h_power = runtime.register(power, "power")
    h_temp = runtime.register(temp, "temp")
    ctx = {"rows": rows, "cols": cols, "iters": iters}
    task = runtime.submit(
        codelet,
        [(h_power, "r"), (h_temp, "rw")],
        ctx=ctx,
        scalar_args=(rows, cols, iters),
        sync=sync,
        name="hotspot",
    )
    if sync:
        runtime.unregister(h_power)
        runtime.unregister(h_temp)
    return task


def main(platform: str = "c2050", size: int = 256, seed: int = 0) -> np.ndarray:
    """Complete hand-written application main program."""
    from repro.workloads.grids import hotspot_inputs

    machine = by_name(platform)
    runtime = Runtime(machine, scheduler="dmda", seed=seed)
    codelet = build_codelet()
    power, temp = hotspot_inputs(size, size, seed=seed)
    hotspot_call(runtime, codelet, power, temp, size, size, 16)
    runtime.shutdown()
    return temp
