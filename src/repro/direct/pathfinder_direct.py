"""PathFinder written directly against the runtime system."""

from __future__ import annotations

import numpy as np

from repro.apps.pathfinder import (
    cost_cpu,
    cost_cuda,
    cost_openmp,
    pathfinder_cpu,
    pathfinder_cuda,
    pathfinder_openmp,
)
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _pathfinder_cpu_task(ctx, *args):
    wall, result = args[0], args[1]
    rows, cols = args[2], args[3]
    pathfinder_cpu(wall, rows, cols, result)


def _pathfinder_openmp_task(ctx, *args):
    wall, result = args[0], args[1]
    rows, cols = args[2], args[3]
    pathfinder_openmp(wall, rows, cols, result)


def _pathfinder_cuda_task(ctx, *args):
    wall, result = args[0], args[1]
    rows, cols = args[2], args[3]
    pathfinder_cuda(wall, rows, cols, result)


def build_codelet() -> Codelet:
    codelet = Codelet("pathfinder")
    codelet.add_variant(
        ImplVariant(
            name="pathfinder_cpu",
            arch=Arch.CPU,
            fn=_pathfinder_cpu_task,
            cost_model=cost_cpu,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="pathfinder_openmp",
            arch=Arch.OPENMP,
            fn=_pathfinder_openmp_task,
            cost_model=cost_openmp,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="pathfinder_cuda",
            arch=Arch.CUDA,
            fn=_pathfinder_cuda_task,
            cost_model=cost_cuda,
        )
    )
    return codelet


def pathfinder_call(
    runtime: Runtime,
    codelet: Codelet,
    wall: np.ndarray,
    result: np.ndarray,
    rows: int,
    cols: int,
    sync: bool = True,
):
    """One hand-written invocation: register, pack, submit, flush."""
    h_wall = runtime.register(wall, "wall")
    h_result = runtime.register(result, "result")
    ctx = {"rows": rows, "cols": cols}
    task = runtime.submit(
        codelet,
        [(h_wall, "r"), (h_result, "w")],
        ctx=ctx,
        scalar_args=(rows, cols),
        sync=sync,
        name="pathfinder",
    )
    if sync:
        runtime.unregister(h_wall)
        runtime.unregister(h_result)
    return task


def main(platform: str = "c2050", cols: int = 100_000, seed: int = 0) -> np.ndarray:
    """Complete hand-written application main program."""
    from repro.workloads.grids import pathfinder_wall

    machine = by_name(platform)
    runtime = Runtime(machine, scheduler="dmda", seed=seed)
    codelet = build_codelet()
    wall = pathfinder_wall(50, cols, seed=seed)
    result = np.zeros(cols, dtype=np.int32)
    pathfinder_call(runtime, codelet, wall, result, 50, cols)
    runtime.shutdown()
    return result
