"""Hand-written runtime-system versions of every application.

The "Direct" column of Table I: what a programmer writes when targeting
the task runtime without the composition tool — backend wrappers,
codelet assembly, data registration, argument packing and explicit
synchronisation, all by hand.  Also supplies the single-backend builds
behind Figure 7's "Direct - CPU" / "Direct - CUDA" curves.
"""

from repro.direct import (
    bfs_direct,
    cfd_direct,
    hotspot_direct,
    lud_direct,
    nw_direct,
    odesolver_direct,
    particlefilter_direct,
    pathfinder_direct,
    sgemm_direct,
    spmv_direct,
)

DIRECT_MODULES = {
    "spmv": spmv_direct,
    "sgemm": sgemm_direct,
    "bfs": bfs_direct,
    "cfd": cfd_direct,
    "hotspot": hotspot_direct,
    "lud": lud_direct,
    "nw": nw_direct,
    "particlefilter": particlefilter_direct,
    "pathfinder": pathfinder_direct,
    "odesolver": odesolver_direct,
}

__all__ = ["DIRECT_MODULES"]
