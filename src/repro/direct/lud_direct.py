"""LUD written directly against the runtime system (Table I "Direct")."""

from __future__ import annotations

import numpy as np

from repro.apps.lud import cost_cpu, cost_cuda, cost_openmp, lud_cpu, lud_cuda, lud_openmp
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _lud_cpu_task(ctx, *args):
    A, n = args[0], args[1]
    lud_cpu(A, n)


def _lud_openmp_task(ctx, *args):
    A, n = args[0], args[1]
    lud_openmp(A, n)


def _lud_cuda_task(ctx, *args):
    A, n = args[0], args[1]
    lud_cuda(A, n)


def build_codelet() -> Codelet:
    codelet = Codelet("lud")
    codelet.add_variant(
        ImplVariant(name="lud_cpu", arch=Arch.CPU, fn=_lud_cpu_task, cost_model=cost_cpu)
    )
    codelet.add_variant(
        ImplVariant(
            name="lud_openmp",
            arch=Arch.OPENMP,
            fn=_lud_openmp_task,
            cost_model=cost_openmp,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="lud_cuda", arch=Arch.CUDA, fn=_lud_cuda_task, cost_model=cost_cuda
        )
    )
    return codelet


def lud_call(
    runtime: Runtime,
    codelet: Codelet,
    A: np.ndarray,
    n: int,
    sync: bool = True,
):
    """One hand-written lud invocation: register, pack, submit, flush."""
    h_a = runtime.register(A, "A")
    task = runtime.submit(
        codelet,
        [(h_a, "rw")],
        ctx={"n": n},
        scalar_args=(n,),
        sync=sync,
        name="lud",
    )
    if sync:
        runtime.unregister(h_a)
    return task


def main(platform: str = "c2050", n: int = 512, seed: int = 0) -> np.ndarray:
    """Complete hand-written application main program."""
    from repro.apps.lud import make_spd_matrix

    machine = by_name(platform)
    runtime = Runtime(machine, scheduler="dmda", seed=seed)
    codelet = build_codelet()
    A = make_spd_matrix(n, seed=seed)
    lud_call(runtime, codelet, A, n)
    runtime.shutdown()
    return A
