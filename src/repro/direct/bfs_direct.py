"""BFS written directly against the runtime system (Table I "Direct")."""

from __future__ import annotations

import numpy as np

from repro.apps.bfs import bfs_cpu, bfs_cuda, bfs_openmp, cost_cpu, cost_cuda, cost_openmp
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _bfs_cpu_task(ctx, *args):
    nodes, edges, costs = args[0], args[1], args[2]
    n_nodes, n_edges, source = args[3], args[4], args[5]
    bfs_cpu(nodes, edges, n_nodes, n_edges, source, costs)


def _bfs_openmp_task(ctx, *args):
    nodes, edges, costs = args[0], args[1], args[2]
    n_nodes, n_edges, source = args[3], args[4], args[5]
    bfs_openmp(nodes, edges, n_nodes, n_edges, source, costs)


def _bfs_cuda_task(ctx, *args):
    nodes, edges, costs = args[0], args[1], args[2]
    n_nodes, n_edges, source = args[3], args[4], args[5]
    bfs_cuda(nodes, edges, n_nodes, n_edges, source, costs)


def build_codelet() -> Codelet:
    codelet = Codelet("bfs")
    codelet.add_variant(
        ImplVariant(name="bfs_cpu", arch=Arch.CPU, fn=_bfs_cpu_task, cost_model=cost_cpu)
    )
    codelet.add_variant(
        ImplVariant(
            name="bfs_openmp",
            arch=Arch.OPENMP,
            fn=_bfs_openmp_task,
            cost_model=cost_openmp,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="bfs_cuda", arch=Arch.CUDA, fn=_bfs_cuda_task, cost_model=cost_cuda
        )
    )
    return codelet


def bfs_call(
    runtime: Runtime,
    codelet: Codelet,
    nodes: np.ndarray,
    edges: np.ndarray,
    costs: np.ndarray,
    source: int,
    sync: bool = True,
):
    """One hand-written bfs invocation: register, pack, submit, flush."""
    n_nodes = len(nodes) - 1
    n_edges = len(edges)
    h_nodes = runtime.register(nodes, "nodes")
    h_edges = runtime.register(edges, "edges")
    h_costs = runtime.register(costs, "costs")
    ctx = {"n_nodes": n_nodes, "n_edges": n_edges}
    task = runtime.submit(
        codelet,
        [(h_nodes, "r"), (h_edges, "r"), (h_costs, "w")],
        ctx=ctx,
        scalar_args=(n_nodes, n_edges, source),
        sync=sync,
        name="bfs",
    )
    if sync:
        runtime.unregister(h_nodes)
        runtime.unregister(h_edges)
        runtime.unregister(h_costs)
    return task


def main(platform: str = "c2050", n_nodes: int = 20_000, seed: int = 0) -> np.ndarray:
    """Complete hand-written application main program."""
    from repro.workloads.graphs import random_graph

    machine = by_name(platform)
    runtime = Runtime(machine, scheduler="dmda", seed=seed)
    codelet = build_codelet()
    nodes, edges = random_graph(n_nodes, 8, seed=seed)
    costs = np.zeros(n_nodes, dtype=np.int32)
    bfs_call(runtime, codelet, nodes, edges, costs, 0)
    runtime.shutdown()
    return costs
