"""CFD written directly against the runtime system (Table I "Direct")."""

from __future__ import annotations

import numpy as np

from repro.apps.cfd import cfd_cpu, cfd_cuda, cfd_openmp, cost_cpu, cost_cuda, cost_openmp, make_grid
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _cfd_cpu_task(ctx, *args):
    variables, neighbors = args[0], args[1]
    ncells, iters = args[2], args[3]
    cfd_cpu(variables, neighbors, ncells, iters)


def _cfd_openmp_task(ctx, *args):
    variables, neighbors = args[0], args[1]
    ncells, iters = args[2], args[3]
    cfd_openmp(variables, neighbors, ncells, iters)


def _cfd_cuda_task(ctx, *args):
    variables, neighbors = args[0], args[1]
    ncells, iters = args[2], args[3]
    cfd_cuda(variables, neighbors, ncells, iters)


def build_codelet() -> Codelet:
    codelet = Codelet("cfd")
    codelet.add_variant(
        ImplVariant(name="cfd_cpu", arch=Arch.CPU, fn=_cfd_cpu_task, cost_model=cost_cpu)
    )
    codelet.add_variant(
        ImplVariant(
            name="cfd_openmp",
            arch=Arch.OPENMP,
            fn=_cfd_openmp_task,
            cost_model=cost_openmp,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="cfd_cuda", arch=Arch.CUDA, fn=_cfd_cuda_task, cost_model=cost_cuda
        )
    )
    return codelet


def cfd_call(
    runtime: Runtime,
    codelet: Codelet,
    variables: np.ndarray,
    neighbors: np.ndarray,
    ncells: int,
    iters: int,
    sync: bool = True,
):
    """One hand-written cfd invocation: register, pack, submit, flush."""
    h_u = runtime.register(variables, "variables")
    h_nb = runtime.register(neighbors, "neighbors")
    ctx = {"ncells": ncells, "iters": iters}
    task = runtime.submit(
        codelet,
        [(h_u, "rw"), (h_nb, "r")],
        ctx=ctx,
        scalar_args=(ncells, iters),
        sync=sync,
        name="cfd",
    )
    if sync:
        runtime.unregister(h_u)
        runtime.unregister(h_nb)
    return task


def main(platform: str = "c2050", ncells: int = 20_000, seed: int = 0) -> np.ndarray:
    """Complete hand-written application main program."""
    machine = by_name(platform)
    runtime = Runtime(machine, scheduler="dmda", seed=seed)
    codelet = build_codelet()
    variables, neighbors = make_grid(ncells, seed=seed)
    cfd_call(runtime, codelet, variables, neighbors, ncells, 8)
    runtime.shutdown()
    return variables
