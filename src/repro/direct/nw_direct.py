"""Needleman-Wunsch written directly against the runtime system."""

from __future__ import annotations

import numpy as np

from repro.apps.nw import cost_cpu, cost_cuda, cost_openmp, nw_cpu, nw_cuda, nw_openmp
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _nw_cpu_task(ctx, *args):
    seq1, seq2, score = args[0], args[1], args[2]
    n, penalty = args[3], args[4]
    nw_cpu(seq1, seq2, score, n, penalty)


def _nw_openmp_task(ctx, *args):
    seq1, seq2, score = args[0], args[1], args[2]
    n, penalty = args[3], args[4]
    nw_openmp(seq1, seq2, score, n, penalty)


def _nw_cuda_task(ctx, *args):
    seq1, seq2, score = args[0], args[1], args[2]
    n, penalty = args[3], args[4]
    nw_cuda(seq1, seq2, score, n, penalty)


def build_codelet() -> Codelet:
    codelet = Codelet("nw")
    codelet.add_variant(
        ImplVariant(name="nw_cpu", arch=Arch.CPU, fn=_nw_cpu_task, cost_model=cost_cpu)
    )
    codelet.add_variant(
        ImplVariant(
            name="nw_openmp", arch=Arch.OPENMP, fn=_nw_openmp_task, cost_model=cost_openmp
        )
    )
    codelet.add_variant(
        ImplVariant(name="nw_cuda", arch=Arch.CUDA, fn=_nw_cuda_task, cost_model=cost_cuda)
    )
    return codelet


def nw_call(
    runtime: Runtime,
    codelet: Codelet,
    seq1: np.ndarray,
    seq2: np.ndarray,
    score: np.ndarray,
    n: int,
    penalty: int,
    sync: bool = True,
):
    """One hand-written nw invocation: register, pack, submit, flush."""
    h_s1 = runtime.register(seq1, "seq1")
    h_s2 = runtime.register(seq2, "seq2")
    h_score = runtime.register(score, "score")
    ctx = {"n": n, "penalty": penalty}
    task = runtime.submit(
        codelet,
        [(h_s1, "r"), (h_s2, "r"), (h_score, "w")],
        ctx=ctx,
        scalar_args=(n, penalty),
        sync=sync,
        name="nw",
    )
    if sync:
        runtime.unregister(h_s1)
        runtime.unregister(h_s2)
        runtime.unregister(h_score)
    return task


def main(platform: str = "c2050", n: int = 1024, seed: int = 0) -> np.ndarray:
    """Complete hand-written application main program."""
    from repro.apps.nw import make_sequences

    machine = by_name(platform)
    runtime = Runtime(machine, scheduler="dmda", seed=seed)
    codelet = build_codelet()
    seq1, seq2 = make_sequences(n, seed=seed)
    score = np.zeros((n + 1) * (n + 1), dtype=np.int32)
    nw_call(runtime, codelet, seq1, seq2, score, n, 2)
    runtime.shutdown()
    return score
