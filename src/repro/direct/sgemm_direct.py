"""SGEMM written directly against the runtime system (Table I "Direct")."""

from __future__ import annotations

import numpy as np

from repro.apps.sgemm import (
    cost_cpu,
    cost_cublas,
    cost_openmp,
    sgemm_cpu,
    sgemm_cublas,
    sgemm_openmp,
)
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _sgemm_cpu_task(ctx, *args):
    A, B, C = args[0], args[1], args[2]
    m, n, k, alpha, beta = args[3], args[4], args[5], args[6], args[7]
    sgemm_cpu(m, n, k, alpha, A, B, beta, C)


def _sgemm_openmp_task(ctx, *args):
    A, B, C = args[0], args[1], args[2]
    m, n, k, alpha, beta = args[3], args[4], args[5], args[6], args[7]
    sgemm_openmp(m, n, k, alpha, A, B, beta, C)


def _sgemm_cublas_task(ctx, *args):
    A, B, C = args[0], args[1], args[2]
    m, n, k, alpha, beta = args[3], args[4], args[5], args[6], args[7]
    sgemm_cublas(m, n, k, alpha, A, B, beta, C)


def build_codelet() -> Codelet:
    codelet = Codelet("sgemm")
    codelet.add_variant(
        ImplVariant(
            name="sgemm_cpu", arch=Arch.CPU, fn=_sgemm_cpu_task, cost_model=cost_cpu
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="sgemm_openmp",
            arch=Arch.OPENMP,
            fn=_sgemm_openmp_task,
            cost_model=cost_openmp,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="sgemm_cublas",
            arch=Arch.CUDA,
            fn=_sgemm_cublas_task,
            cost_model=cost_cublas,
        )
    )
    return codelet


def sgemm_call(
    runtime: Runtime,
    codelet: Codelet,
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    m: int,
    n: int,
    k: int,
    alpha: float,
    beta: float,
    sync: bool = True,
):
    """One hand-written sgemm invocation: register, pack, submit, flush."""
    h_a = runtime.register(A, "A")
    h_b = runtime.register(B, "B")
    h_c = runtime.register(C, "C")
    ctx = {"m": m, "n": n, "k": k}
    task = runtime.submit(
        codelet,
        [(h_a, "r"), (h_b, "r"), (h_c, "rw")],
        ctx=ctx,
        scalar_args=(m, n, k, alpha, beta),
        sync=sync,
        name="sgemm",
    )
    if sync:
        runtime.unregister(h_a)
        runtime.unregister(h_b)
        runtime.unregister(h_c)
    return task


def main(platform: str = "c2050", size: int = 512, seed: int = 0) -> np.ndarray:
    """Complete hand-written application main program."""
    from repro.workloads.dense import gemm_inputs

    machine = by_name(platform)
    runtime = Runtime(machine, scheduler="dmda", seed=seed)
    codelet = build_codelet()
    A, B, C = gemm_inputs(size, size, size, seed=seed)
    sgemm_call(runtime, codelet, A, B, C, size, size, size, 1.0, 0.0)
    runtime.shutdown()
    return C
