"""SpMV written directly against the runtime system (no composition tool).

This is the "Direct" column of Table I: everything the composition tool
generates — backend wrappers with the task-function calling convention,
codelet assembly, data registration and unregistration, context packing,
synchronisation — is written by hand here, exactly as a StarPU programmer
would.  The computational kernels themselves are shared with the
tool-mode component (they are identical code in both columns).
"""

from __future__ import annotations

import numpy as np

from repro.apps.spmv import (
    cost_cpu,
    cost_cuda,
    cost_openmp,
    spmv_cpu,
    spmv_cuda,
    spmv_openmp,
)
from repro.hw.presets import by_name
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


# hand-written backend wrappers: unpack the runtime's buffers/args layout
# and delegate to the kernel with its original C signature
def _spmv_cpu_task(ctx, *args):
    values, colidxs, rowptr, x, y = args[0], args[1], args[2], args[3], args[4]
    nnz, nrows, ncols, first = args[5], args[6], args[7], args[8]
    spmv_cpu(values, nnz, nrows, ncols, first, colidxs, rowptr, x, y)


def _spmv_openmp_task(ctx, *args):
    values, colidxs, rowptr, x, y = args[0], args[1], args[2], args[3], args[4]
    nnz, nrows, ncols, first = args[5], args[6], args[7], args[8]
    spmv_openmp(values, nnz, nrows, ncols, first, colidxs, rowptr, x, y)


def _spmv_cuda_task(ctx, *args):
    values, colidxs, rowptr, x, y = args[0], args[1], args[2], args[3], args[4]
    nnz, nrows, ncols, first = args[5], args[6], args[7], args[8]
    spmv_cuda(values, nnz, nrows, ncols, first, colidxs, rowptr, x, y)


def build_codelet() -> Codelet:
    """Hand-assembled codelet with one entry per backend."""
    codelet = Codelet("spmv")
    codelet.add_variant(
        ImplVariant(
            name="spmv_cpu",
            arch=Arch.CPU,
            fn=_spmv_cpu_task,
            cost_model=cost_cpu,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="spmv_openmp",
            arch=Arch.OPENMP,
            fn=_spmv_openmp_task,
            cost_model=cost_openmp,
        )
    )
    codelet.add_variant(
        ImplVariant(
            name="spmv_cuda_cusp",
            arch=Arch.CUDA,
            fn=_spmv_cuda_task,
            cost_model=cost_cuda,
        )
    )
    return codelet


def spmv_call(
    runtime: Runtime,
    codelet: Codelet,
    values: np.ndarray,
    colidxs: np.ndarray,
    rowptr: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    sync: bool = True,
):
    """One hand-written spmv invocation through the runtime API.

    Registers every operand, packs the scalar arguments and the call
    context, submits, and (synchronously) flushes results back to the
    host buffers before unregistering — the boilerplate the generated
    entry-wrapper hides.
    """
    nnz = len(values)
    nrows = len(rowptr) - 1
    ncols = len(x)
    h_values = runtime.register(values, "values")
    h_colidxs = runtime.register(colidxs, "colidxs")
    h_rowptr = runtime.register(rowptr, "rowptr")
    h_x = runtime.register(x, "x")
    h_y = runtime.register(y, "y")
    ctx = {"nnz": nnz, "nrows": nrows, "ncols": ncols, "first": 0}
    task = runtime.submit(
        codelet,
        [
            (h_values, "r"),
            (h_colidxs, "r"),
            (h_rowptr, "r"),
            (h_x, "r"),
            (h_y, "w"),
        ],
        ctx=ctx,
        scalar_args=(nnz, nrows, ncols, 0),
        sync=sync,
        name="spmv",
    )
    if sync:
        runtime.unregister(h_values)
        runtime.unregister(h_colidxs)
        runtime.unregister(h_rowptr)
        runtime.unregister(h_x)
        runtime.unregister(h_y)
    return task


def main(platform: str = "c2050", nrows: int = 4096, seed: int = 0) -> np.ndarray:
    """Complete hand-written application main program."""
    from repro.workloads.sparse import random_csr

    machine = by_name(platform)
    runtime = Runtime(machine, scheduler="dmda", seed=seed)
    codelet = build_codelet()
    matrix = random_csr(nrows, nrows, 8, seed=seed)
    x = np.ones(nrows, dtype=np.float32)
    y = np.zeros(nrows, dtype=np.float32)
    spmv_call(
        runtime, codelet, matrix.values, matrix.colidxs, matrix.rowptr, x, y
    )
    runtime.shutdown()
    return y
