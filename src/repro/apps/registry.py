"""One-stop registration of every PEPPHERized application.

The paper evaluates SpMV, SGEMM, seven Rodinia benchmarks and the
LibSolve Runge-Kutta ODE solver; this module builds repositories
containing any subset of them.
"""

from __future__ import annotations

from repro.apps import (
    bfs,
    cfd,
    hotspot,
    lud,
    nw,
    odesolver,
    particlefilter,
    pathfinder,
    sgemm,
    spmv,
)
from repro.components.repository import Repository

#: single-component applications (module exposes INTERFACE/IMPLEMENTATIONS)
SIMPLE_APPS = {
    "spmv": spmv,
    "sgemm": sgemm,
    "bfs": bfs,
    "cfd": cfd,
    "hotspot": hotspot,
    "lud": lud,
    "nw": nw,
    "particlefilter": particlefilter,
    "pathfinder": pathfinder,
}

#: all application names in the paper's Table I order
APP_NAMES = (
    "spmv",
    "sgemm",
    "bfs",
    "cfd",
    "hotspot",
    "lud",
    "nw",
    "particlefilter",
    "pathfinder",
    "odesolver",
)


def app_module(name: str):
    """The application module for a Table-I app name."""
    if name == "odesolver":
        return odesolver
    try:
        return SIMPLE_APPS[name]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; known: {APP_NAMES}") from None


def components_of(name: str) -> tuple[str, ...]:
    """Interface names one application contributes."""
    if name == "odesolver":
        return odesolver.COMPONENT_NAMES
    return (name,)


def make_repository(*apps: str) -> Repository:
    """A repository with the named apps registered (all by default)."""
    names = apps or APP_NAMES
    repo = Repository()
    for name in names:
        app_module(name).register(repo)
    return repo
