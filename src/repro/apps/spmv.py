"""Sparse matrix-vector multiplication (SpMV) — the paper's running example.

``y = A @ x`` for a CSR matrix.  The composition process for this
component is walked through in paper section V-A: skeletons are generated
from the C declaration::

    void spmv(float* values, int nnz, int nrows, int ncols, int first,
              size_t* colidxs, size_t* rowPtr, float* x, float* y);

with one serial C++ implementation for the CPU and the highly optimised
CUDA algorithm from NVIDIA's CUSP library.  We add an OpenMP variant (the
Rodinia-style evaluation of Figure 6 includes one per app).

Chunked calls (hybrid execution, Figure 5): ``first`` is the global index
of the chunk's first row and ``rowPtr`` holds absolute offsets, so each
chunk kernel rebases them — exactly how a blocked CSR SpMV partitions.
"""

from __future__ import annotations

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.hw.devices import AccessPattern

DECLARATION = (
    "void spmv(const float* values, int nnz, int nrows, int ncols, int first, "
    "const size_t* colidxs, const size_t* rowPtr, const float* x, float* y);"
)

# The utility-mode skeleton gets the access patterns right from the
# ``const`` qualifiers; the programmer then narrows ``y`` to write-only
# and declares context ranges — the "fill in missing information" step
# of paper section V-A.
INTERFACE = interface_from_decl(
    DECLARATION,
    write_params=("y",),
    context=(
        ContextParamDecl("nnz", "int", minimum=1, maximum=1 << 24),
        ContextParamDecl("nrows", "int", minimum=1, maximum=1 << 21),
    ),
)


# ---------------------------------------------------------------------------
# kernels (C signatures; identical results, different cost models)
# ---------------------------------------------------------------------------

def _csr_matvec(values, colidxs, rowptr, x, y, first):
    """Shared CSR row-block matvec: y[i] = sum_j values[j] * x[colidxs[j]]."""
    nrows = len(y)
    base = int(rowptr[0])
    counts = np.diff(rowptr).astype(np.int64)
    if counts.sum() != len(values):
        raise ValueError(
            f"CSR chunk inconsistent: rowPtr spans {counts.sum()} nonzeros "
            f"but values has {len(values)}"
        )
    contrib = values * x[colidxs]
    rows = np.repeat(np.arange(nrows), counts)
    y[:] = np.bincount(rows, weights=contrib, minlength=nrows).astype(y.dtype)


def spmv_cpu(values, nnz, nrows, ncols, first, colidxs, rowPtr, x, y):
    """Serial C++ CSR SpMV (reference algorithm)."""
    _csr_matvec(values, colidxs, rowPtr, x, y, first)


def spmv_openmp(values, nnz, nrows, ncols, first, colidxs, rowPtr, x, y):
    """OpenMP row-parallel CSR SpMV (same results as serial)."""
    _csr_matvec(values, colidxs, rowPtr, x, y, first)


def spmv_cuda(values, nnz, nrows, ncols, first, colidxs, rowPtr, x, y):
    """CUSP csr_vector-style CSR SpMV (same results as serial)."""
    _csr_matvec(values, colidxs, rowPtr, x, y, first)


# ---------------------------------------------------------------------------
# cost models (ground truth for the simulated devices)
# ---------------------------------------------------------------------------

def _flops(ctx) -> float:
    return 2.0 * float(ctx["nnz"])


def _bytes(ctx) -> float:
    nnz = float(ctx["nnz"])
    nrows = float(ctx["nrows"])
    # values (4B) + colidx (8B) + gathered x (4B) per nonzero;
    # rowptr (8B) + y (4B) per row
    return 16.0 * nnz + 12.0 * nrows


def cost_cpu(ctx, device) -> float:
    return serial_time(device, _flops(ctx), _bytes(ctx), AccessPattern.IRREGULAR)


def cost_openmp(ctx, device) -> float:
    return openmp_time(
        device, ncores_of(ctx), _flops(ctx), _bytes(ctx), AccessPattern.IRREGULAR
    )


def cost_cuda(ctx, device) -> float:
    # CUSP's csr_vector kernel is expert-tuned: beats a naive port
    return gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.IRREGULAR, library_factor=0.7
    )


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="spmv_cpu",
        provides="spmv",
        platform="cpu_serial",
        sources=("spmv_cpu.cpp",),
        kernel_ref="repro.apps.spmv:spmv_cpu",
        cost_ref="repro.apps.spmv:cost_cpu",
        prediction_ref="repro.apps.spmv:cost_cpu",
    ),
    ImplementationDescriptor(
        name="spmv_openmp",
        provides="spmv",
        platform="openmp",
        sources=("spmv_openmp.cpp",),
        kernel_ref="repro.apps.spmv:spmv_openmp",
        cost_ref="repro.apps.spmv:cost_openmp",
        prediction_ref="repro.apps.spmv:cost_openmp",
    ),
    ImplementationDescriptor(
        name="spmv_cuda_cusp",
        provides="spmv",
        platform="cuda",
        sources=("spmv_cuda.cu",),
        compile_cmd="nvcc -O3 -arch=sm_20 -c $< -o $@",
        kernel_ref="repro.apps.spmv:spmv_cuda",
        cost_ref="repro.apps.spmv:cost_cuda",
        prediction_ref="repro.apps.spmv:cost_cuda",
    ),
]


def register(repo) -> None:
    """Register the spmv component in a repository."""
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)


def training_operands(ctx, runtime):
    """Operand factory for off-line training executions.

    Materialises CSR operands matching a training scenario's context
    (nnz, nrows); contents are irrelevant for timing-only training runs,
    but the sizes drive the modeled transfers.
    """
    nnz = int(ctx["nnz"])
    nrows = int(ctx["nrows"])
    values = np.zeros(nnz, dtype=np.float32)
    colidxs = np.zeros(nnz, dtype=np.int64)
    rowptr = np.linspace(0, nnz, nrows + 1).astype(np.int64)
    x = np.zeros(nrows, dtype=np.float32)
    y = np.zeros(nrows, dtype=np.float32)
    operands = [
        (runtime.register(values, "values"), "r"),
        (runtime.register(colidxs, "colidxs"), "r"),
        (runtime.register(rowptr, "rowptr"), "r"),
        (runtime.register(x, "x"), "r"),
        (runtime.register(y, "y"), "w"),
    ]
    return operands, (nnz, nrows, nrows, 0)


# ---------------------------------------------------------------------------
# reference + partitioning helpers
# ---------------------------------------------------------------------------

def reference(values, colidxs, rowptr, x, nrows) -> np.ndarray:
    """Pure NumPy oracle for testing (no runtime involved)."""
    y = np.zeros(nrows, dtype=np.float32)
    _csr_matvec(values, colidxs, rowptr, x, y, 0)
    return y


def chunk_slices(rowptr: np.ndarray, n_chunks: int) -> list[tuple[int, int]]:
    """Partition rows into chunks with balanced nonzero counts.

    Equal-row splits are poor for skewed matrices; balancing by nnz
    (the actual work) is what a blocked SpMV does.
    """
    nrows = len(rowptr) - 1
    n_chunks = max(1, min(n_chunks, nrows))
    total = int(rowptr[-1] - rowptr[0])
    bounds = [0]
    for k in range(1, n_chunks):
        target = rowptr[0] + total * k / n_chunks
        row = int(np.searchsorted(rowptr, target, side="left"))
        row = min(max(row, bounds[-1] + 1), nrows - (n_chunks - k))
        bounds.append(row)
    bounds.append(nrows)
    return [(bounds[i], bounds[i + 1]) for i in range(n_chunks)]


def submit_partitioned(
    runtime,
    codelet,
    h_values,
    h_colidxs,
    h_rowptr,
    h_x,
    h_y,
    rowptr: np.ndarray,
    ncols: int,
    n_chunks: int,
):
    """Map one spmv invocation to multiple runtime sub-tasks.

    Intra-component parallelism (paper section IV-F): the row range is
    split into nnz-balanced chunks, each a task schedulable on any
    device; the final result is the concatenation of the chunk outputs.
    ``x`` stays a single shared read operand — a single transfer serves
    every GPU chunk, which is where hybrid execution saves communication.
    """
    spans = chunk_slices(rowptr, n_chunks)
    nnz_bounds = [int(rowptr[lo]) for lo, _ in spans] + [int(rowptr[spans[-1][1]])]
    val_children = h_values.partition_by_slices(
        [slice(nnz_bounds[i], nnz_bounds[i + 1]) for i in range(len(spans))]
    )
    col_children = h_colidxs.partition_by_slices(
        [slice(nnz_bounds[i], nnz_bounds[i + 1]) for i in range(len(spans))]
    )
    ptr_children = h_rowptr.partition_by_slices(
        [slice(lo, hi + 1) for lo, hi in spans]
    )
    y_children = h_y.partition_by_slices([slice(lo, hi) for lo, hi in spans])
    tasks = []
    for i, (lo, hi) in enumerate(spans):
        nnz_i = nnz_bounds[i + 1] - nnz_bounds[i]
        nrows_i = hi - lo
        # context: only the declared selection-relevant properties (nnz,
        # nrows) — offsets like `first` are plumbing, and keying
        # performance history on them would fragment it per chunk
        tasks.append(
            runtime.submit(
                codelet,
                [
                    (val_children[i], "r"),
                    (col_children[i], "r"),
                    (ptr_children[i], "r"),
                    (h_x, "r"),
                    (y_children[i], "w"),
                ],
                ctx={"nnz": nnz_i, "nrows": nrows_i},
                scalar_args=(nnz_i, nrows_i, ncols, lo),
                name=f"spmv[{lo}:{hi}]",
            )
        )
    return tasks
