"""Shared helper for building app interfaces from C declarations.

Mirrors the paper's workflow: the utility mode pre-fills the interface
descriptor from the declaration (access patterns from ``const``
semantics), and the programmer "fills in the missing information" —
refining output parameters to write-only and declaring context-parameter
ranges.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from repro.components.cdecl import parse_declaration, to_interface
from repro.components.context import ContextParamDecl
from repro.components.interface import InterfaceDescriptor
from repro.runtime.access import AccessMode


def interface_from_decl(
    declaration: str,
    write_params: Iterable[str] = (),
    rw_params: Iterable[str] = (),
    context: Iterable[ContextParamDecl] = (),
) -> InterfaceDescriptor:
    """Parse a declaration and apply the programmer's refinements."""
    iface = to_interface(parse_declaration(declaration))
    write_set = set(write_params)
    rw_set = set(rw_params)
    params = []
    for p in iface.params:
        if p.name in write_set:
            params.append(replace(p, access=AccessMode.W))
        elif p.name in rw_set:
            params.append(replace(p, access=AccessMode.RW))
        else:
            params.append(p)
    return replace(
        iface,
        params=tuple(params),
        context_params=tuple(context),
    )
