"""PEPPHERized applications (tool-mode components).

SpMV, SGEMM, seven Rodinia benchmarks (bfs, cfd, hotspot, lud, nw,
particlefilter, pathfinder) and a LibSolve-style Runge-Kutta ODE solver.
Each module provides: the interface descriptor built from the app's C
declaration, three implementation variants (serial CPU, OpenMP, CUDA)
computing identical results under different cost models, descriptor
objects for the composition tool, a pure-NumPy reference oracle, and —
where the paper exercises it — a partitioner for hybrid execution.
"""

from repro.apps.registry import APP_NAMES, app_module, components_of, make_repository

__all__ = ["APP_NAMES", "app_module", "components_of", "make_repository"]
