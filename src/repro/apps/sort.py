"""Generic sorting component (template expansion demonstration).

Paper section IV-B: "Component expansion supports genericity on the
component parameter types using C++ templates.  This enables writing
generic components such as sorting that can be used to sort different
types of data.  The expansion takes place statically."

The interface is generic in the element type ``T``; the composition
recipe binds concrete types (``sort_float``, ``sort_int`` ...), and all
instantiations share the same source module — exactly like C++ template
instantiation.  The CUDA variant carries a tunable ``tile`` parameter
(bitonic chunk length), so this component also exercises tunable
expansion, and a selectability constraint (the GPU variant only bids for
arrays that amortise its launch cost).
"""

from __future__ import annotations

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.constraints import RangeConstraint
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.components.tunables import TunableParam
from repro.hw.devices import AccessPattern

DECLARATION = "template <typename T> void sort(T* data, int n);"

INTERFACE = interface_from_decl(
    DECLARATION,
    context=(ContextParamDecl("n", "int", minimum=2, maximum=1 << 24),),
)


# ---------------------------------------------------------------------------
# kernels (shared by every type instantiation)
# ---------------------------------------------------------------------------

def sort_cpu(data, n):
    """Introsort-style serial sort."""
    data.sort()


def sort_openmp(data, n):
    """Parallel mergesort over the CPU gang (identical results)."""
    data.sort(kind="mergesort")


def sort_cuda(data, n):
    """Bitonic sort on the GPU (identical results)."""
    data.sort()


# ---------------------------------------------------------------------------
# cost models: n log n comparisons, streaming passes over the data
# ---------------------------------------------------------------------------

def _work(ctx) -> tuple[float, float]:
    n = float(ctx["n"])
    log_n = max(np.log2(max(n, 2.0)), 1.0)
    return 4.0 * n * log_n, 8.0 * n * log_n


def cost_cpu(ctx, device) -> float:
    flops, bytes_ = _work(ctx)
    return serial_time(device, flops, bytes_, AccessPattern.REGULAR)


def cost_openmp(ctx, device) -> float:
    flops, bytes_ = _work(ctx)
    # merge phases limit scaling: charge an extra pass
    return openmp_time(
        device, ncores_of(ctx), flops * 1.3, bytes_, AccessPattern.REGULAR
    )


def cost_cuda(ctx, device) -> float:
    n = float(ctx["n"])
    log_n = max(np.log2(max(n, 2.0)), 1.0)
    tile = float(ctx.get("tile", 1024))
    # bitonic: n log^2 n work, one kernel launch per merge stage; larger
    # tiles fuse stages into shared memory and save launches
    flops = 2.0 * n * log_n * log_n
    bytes_ = 8.0 * n * log_n
    launches = max(log_n * log_n / max(np.log2(tile), 1.0), 1.0)
    base = gpu_time(device, flops, bytes_, AccessPattern.REGULAR, library_factor=0.9)
    return base + launches * device.launch_overhead_s


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="sort_cpu",
        provides="sort",
        platform="cpu_serial",
        sources=("sort_cpu.cpp",),
        kernel_ref="repro.apps.sort:sort_cpu",
        cost_ref="repro.apps.sort:cost_cpu",
        prediction_ref="repro.apps.sort:cost_cpu",
    ),
    ImplementationDescriptor(
        name="sort_openmp",
        provides="sort",
        platform="openmp",
        sources=("sort_openmp.cpp",),
        kernel_ref="repro.apps.sort:sort_openmp",
        cost_ref="repro.apps.sort:cost_openmp",
        prediction_ref="repro.apps.sort:cost_openmp",
    ),
    ImplementationDescriptor(
        name="sort_bitonic_cuda",
        provides="sort",
        platform="cuda",
        sources=("sort_cuda.cu",),
        kernel_ref="repro.apps.sort:sort_cuda",
        cost_ref="repro.apps.sort:cost_cuda",
        prediction_ref="repro.apps.sort:cost_cuda",
        tunables=(TunableParam("tile", values=(256, 1024)),),
        constraints=(RangeConstraint("n", minimum=1024),),
    ),
]


def register(repo) -> None:
    """Register the *generic* sort component (expansion happens at
    composition time via the recipe's type bindings)."""
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)
