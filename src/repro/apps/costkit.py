"""Shared building blocks for application cost models.

Every implementation variant carries an analytic cost model — the ground
truth the simulated devices execute with (the runtime's schedulers never
see it; they learn from noisy observations).  The models are
roofline-style: ``launch_overhead + max(compute time, memory time)``
with device- and pattern-specific efficiencies from
:mod:`repro.hw.devices`.

Calibration targets the *relative* cost structure of the paper's
platforms: GPUs dominate large regular data-parallel kernels, CPUs win
small problems (launch overhead) and hold their own on irregular or
branchy kernels — especially against the cache-less C1060.
"""

from __future__ import annotations

from repro.hw.devices import AccessPattern, DeviceSpec

#: parallel efficiency of OpenMP loops (synchronisation, imbalance)
OPENMP_PAR_EFF = 0.85
#: memory bandwidth saturates after ~3 cores on the Nehalem socket
OPENMP_BW_SATURATION = 3.2
#: extra per-call overhead of an OpenMP parallel region (fork/join), s
OPENMP_REGION_OVERHEAD = 4e-6


def serial_time(
    device: DeviceSpec,
    flops: float,
    bytes_moved: float,
    pattern: AccessPattern = AccessPattern.REGULAR,
) -> float:
    """One CPU core executing the kernel sequentially."""
    return device.roofline_time(flops, bytes_moved, pattern)


def openmp_time(
    device: DeviceSpec,
    ncores: int,
    flops: float,
    bytes_moved: float,
    pattern: AccessPattern = AccessPattern.REGULAR,
    par_eff: float = OPENMP_PAR_EFF,
    bw_saturation: float = OPENMP_BW_SATURATION,
) -> float:
    """An OpenMP gang of ``ncores`` cores.

    Compute throughput scales nearly linearly with cores; memory
    bandwidth saturates at the socket level, so memory-bound kernels
    stop improving after a few cores — this is what lets the GPU win
    bandwidth-bound kernels even against the full CPU gang.
    """
    if ncores < 1:
        raise ValueError(f"ncores must be >= 1, got {ncores}")
    t_comp = flops / (device.effective_gflops(pattern) * 1e9 * ncores * par_eff)
    bw = device.effective_bandwidth_gbs(pattern) * 1e9 * min(ncores, bw_saturation)
    t_mem = bytes_moved / bw
    return device.launch_overhead_s + OPENMP_REGION_OVERHEAD + max(t_comp, t_mem)


def gpu_time(
    device: DeviceSpec,
    flops: float,
    bytes_moved: float,
    pattern: AccessPattern = AccessPattern.REGULAR,
    library_factor: float = 1.0,
    profile=None,
) -> float:
    """A whole GPU executing one kernel from device memory.

    ``library_factor < 1`` models expert-tuned library code (CUBLAS,
    CUSP) that beats the efficiency a naive kernel achieves — the paper
    uses such library variants for its CUDA components.  ``profile``
    optionally carries the kernel's launch shape and instruction mix
    (:class:`~repro.hw.model.KernelProfile`); detailed-tier devices
    price with it, coarse-tier devices ignore it.
    """
    if not 0 < library_factor <= 2.0:
        raise ValueError(f"library_factor {library_factor} outside (0, 2]")
    base = device.roofline_time(flops, bytes_moved, pattern, profile=profile)
    return device.launch_overhead_s + (base - device.launch_overhead_s) * library_factor


def ncores_of(ctx) -> int:
    """Gang size the engine injected for OpenMP variants (default 4)."""
    return int(ctx.get("ncores", 4))
