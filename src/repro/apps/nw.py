"""NW: Needleman-Wunsch sequence alignment (Rodinia benchmark).

Global alignment DP over an (n+1)x(n+1) score table with a gap penalty.
Parallelism is wavefront-shaped: cells along an anti-diagonal are
independent but diagonals are serial, so the GPU needs one (blocked)
kernel launch per diagonal strip and never reaches stencil-class
efficiency — on the C1060 the OpenMP variant wins (Figure 6).
"""

from __future__ import annotations

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.hw.devices import AccessPattern

DECLARATION = (
    "void nw(const int* seq1, const int* seq2, int* score, int n, int penalty);"
)

INTERFACE = interface_from_decl(
    DECLARATION,
    write_params=("score",),
    context=(
        ContextParamDecl("n", "int", minimum=16, maximum=8192),
        ContextParamDecl("penalty", "int", minimum=1, maximum=32),
    ),
)

#: BLOSUM-like match/mismatch scores
_MATCH = 5
_MISMATCH = -3


def _nw(seq1, seq2, score, n, penalty):
    """Anti-diagonal wavefront fill of the alignment table."""
    table = score.reshape(n + 1, n + 1)
    table[0, :] = -penalty * np.arange(n + 1)
    table[:, 0] = -penalty * np.arange(n + 1)
    sim_row = np.where(
        seq1[:, None] == seq2[None, :], _MATCH, _MISMATCH
    )  # (n, n) similarity; row i aligns seq1[i-1] with seq2[j-1]
    for d in range(2, 2 * n + 1):
        i_lo = max(1, d - n)
        i_hi = min(n, d - 1)
        i = np.arange(i_lo, i_hi + 1)
        j = d - i
        diag = table[i - 1, j - 1] + sim_row[i - 1, j - 1]
        up = table[i - 1, j] - penalty
        left = table[i, j - 1] - penalty
        table[i, j] = np.maximum(diag, np.maximum(up, left))


def nw_cpu(seq1, seq2, score, n, penalty):
    """Serial row-major DP fill."""
    _nw(seq1, seq2, score, n, penalty)


def nw_openmp(seq1, seq2, score, n, penalty):
    """OpenMP wavefront-parallel fill (identical results)."""
    _nw(seq1, seq2, score, n, penalty)


def nw_cuda(seq1, seq2, score, n, penalty):
    """Rodinia's blocked-diagonal CUDA kernel (identical results)."""
    _nw(seq1, seq2, score, n, penalty)


def _flops(ctx) -> float:
    return 7.0 * float(ctx["n"]) ** 2


def _bytes(ctx) -> float:
    return 16.0 * float(ctx["n"]) ** 2


def cost_cpu(ctx, device) -> float:
    return serial_time(device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR)


def cost_openmp(ctx, device) -> float:
    # wavefront sync after each diagonal strip costs a join per strip
    t = openmp_time(
        device, ncores_of(ctx), _flops(ctx), _bytes(ctx), AccessPattern.REGULAR
    )
    strips = 2.0 * float(ctx["n"]) / 16.0
    return t + strips * 1e-7


def cost_cuda(ctx, device) -> float:
    # one kernel launch per 16-wide diagonal strip; modest efficiency
    base = gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR, library_factor=1.4
    )
    strips = 2.0 * float(ctx["n"]) / 16.0
    return base + strips * device.launch_overhead_s


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="nw_cpu",
        provides="nw",
        platform="cpu_serial",
        sources=("nw_cpu.cpp",),
        kernel_ref="repro.apps.nw:nw_cpu",
        cost_ref="repro.apps.nw:cost_cpu",
        prediction_ref="repro.apps.nw:cost_cpu",
    ),
    ImplementationDescriptor(
        name="nw_openmp",
        provides="nw",
        platform="openmp",
        sources=("nw_openmp.cpp",),
        kernel_ref="repro.apps.nw:nw_openmp",
        cost_ref="repro.apps.nw:cost_openmp",
        prediction_ref="repro.apps.nw:cost_openmp",
    ),
    ImplementationDescriptor(
        name="nw_cuda",
        provides="nw",
        platform="cuda",
        sources=("nw_cuda.cu",),
        kernel_ref="repro.apps.nw:nw_cuda",
        cost_ref="repro.apps.nw:cost_cuda",
        prediction_ref="repro.apps.nw:cost_cuda",
    ),
]


def register(repo) -> None:
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)


def make_sequences(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 4, size=n).astype(np.int32),
        rng.integers(0, 4, size=n).astype(np.int32),
    )


def reference(seq1, seq2, n, penalty) -> np.ndarray:
    """Cell-by-cell oracle (small n only)."""
    table = np.zeros((n + 1, n + 1), dtype=np.int32)
    table[0, :] = -penalty * np.arange(n + 1)
    table[:, 0] = -penalty * np.arange(n + 1)
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            sim = _MATCH if seq1[i - 1] == seq2[j - 1] else _MISMATCH
            table[i, j] = max(
                table[i - 1, j - 1] + sim,
                table[i - 1, j] - penalty,
                table[i, j - 1] - penalty,
            )
    return table.reshape(-1)
