"""BFS: breadth-first search (Rodinia benchmark).

Level-synchronous BFS over a CSR graph, computing hop distances from a
source node.  Graph traversal is the canonical *irregular* workload:
gather/scatter on edge lists, data-dependent frontier sizes, one kernel
launch per level on the GPU.  This is the app class where the cache-less
C1060 collapses and the CPU stays competitive (Figure 6).
"""

from __future__ import annotations

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.hw.devices import AccessPattern

DECLARATION = (
    "void bfs(const int* nodes, const int* edges, int n_nodes, int n_edges, "
    "int source, int* costs);"
)

#: expected BFS depth of the random graphs we generate (cost models need
#: a level estimate; random graphs have logarithmic diameter)
TYPICAL_LEVELS = 10

INTERFACE = interface_from_decl(
    DECLARATION,
    write_params=("costs",),
    context=(
        ContextParamDecl("n_nodes", "int", minimum=64, maximum=1 << 22),
        ContextParamDecl("n_edges", "int", minimum=64, maximum=1 << 24),
    ),
)


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

def _bfs(nodes, edges, n_nodes, source, costs):
    """Shared level-synchronous traversal (frontier expansion)."""
    costs[:] = -1
    costs[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    starts = nodes[:-1]
    degrees = np.diff(nodes)
    while len(frontier):
        level += 1
        # gather all outgoing edges of the frontier, vectorised
        deg = degrees[frontier]
        total = int(deg.sum())
        if total == 0:
            break
        base = np.repeat(starts[frontier], deg)
        offsets = np.arange(total) - np.repeat(
            np.cumsum(deg) - deg, deg
        )
        neighbours = edges[base + offsets]
        fresh = neighbours[costs[neighbours] < 0]
        if len(fresh) == 0:
            break
        costs[fresh] = level
        frontier = np.unique(fresh)


def bfs_cpu(nodes, edges, n_nodes, n_edges, source, costs):
    """Serial queue-based BFS."""
    _bfs(nodes, edges, n_nodes, source, costs)


def bfs_openmp(nodes, edges, n_nodes, n_edges, source, costs):
    """OpenMP frontier-parallel BFS (identical results)."""
    _bfs(nodes, edges, n_nodes, source, costs)


def bfs_cuda(nodes, edges, n_nodes, n_edges, source, costs):
    """Rodinia-style CUDA BFS, one kernel launch per level."""
    _bfs(nodes, edges, n_nodes, source, costs)


# ---------------------------------------------------------------------------
# cost models
# ---------------------------------------------------------------------------

def _flops(ctx) -> float:
    return 2.0 * float(ctx["n_edges"])


def _bytes(ctx) -> float:
    return 12.0 * float(ctx["n_edges"]) + 16.0 * float(ctx["n_nodes"])


def cost_cpu(ctx, device) -> float:
    return serial_time(device, _flops(ctx), _bytes(ctx), AccessPattern.IRREGULAR)


def cost_openmp(ctx, device) -> float:
    return openmp_time(
        device, ncores_of(ctx), _flops(ctx), _bytes(ctx), AccessPattern.IRREGULAR
    )


def cost_cuda(ctx, device) -> float:
    # naive Rodinia kernel (not library grade) + one launch per level
    base = gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.IRREGULAR,
        library_factor=1.25,
    )
    return base + TYPICAL_LEVELS * device.launch_overhead_s


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="bfs_cpu",
        provides="bfs",
        platform="cpu_serial",
        sources=("bfs_cpu.cpp",),
        kernel_ref="repro.apps.bfs:bfs_cpu",
        cost_ref="repro.apps.bfs:cost_cpu",
        prediction_ref="repro.apps.bfs:cost_cpu",
    ),
    ImplementationDescriptor(
        name="bfs_openmp",
        provides="bfs",
        platform="openmp",
        sources=("bfs_openmp.cpp",),
        kernel_ref="repro.apps.bfs:bfs_openmp",
        cost_ref="repro.apps.bfs:cost_openmp",
        prediction_ref="repro.apps.bfs:cost_openmp",
    ),
    ImplementationDescriptor(
        name="bfs_cuda",
        provides="bfs",
        platform="cuda",
        sources=("bfs_cuda.cu",),
        kernel_ref="repro.apps.bfs:bfs_cuda",
        cost_ref="repro.apps.bfs:cost_cuda",
        prediction_ref="repro.apps.bfs:cost_cuda",
    ),
]


def register(repo) -> None:
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)


def reference(nodes, edges, n_nodes, source) -> np.ndarray:
    """Dijkstra-free oracle via repeated relaxation (small graphs)."""
    costs = np.full(n_nodes, -1, dtype=np.int32)
    _bfs(nodes, edges, n_nodes, source, costs)
    return costs
