"""PathFinder: grid dynamic programming (Rodinia benchmark).

Finds the minimum-cost path from the top row to the bottom row of a
weight grid, moving straight or diagonally.  Row-by-row DP: each row
depends on the previous one, but within a row everything is independent
— wide regular parallelism with a short serial chain, memory-bound.
"""

from __future__ import annotations

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.hw.devices import AccessPattern

DECLARATION = (
    "void pathfinder(const int* wall, int rows, int cols, int* result);"
)

INTERFACE = interface_from_decl(
    DECLARATION,
    write_params=("result",),
    context=(
        ContextParamDecl("rows", "int", minimum=2, maximum=4096),
        ContextParamDecl("cols", "int", minimum=16, maximum=1 << 20),
    ),
)


def _pathfinder(wall, rows, cols, result):
    w = wall.reshape(rows, cols)
    dist = w[0].astype(np.int64)
    for r in range(1, rows):
        left = np.concatenate(([np.iinfo(np.int64).max // 2], dist[:-1]))
        right = np.concatenate((dist[1:], [np.iinfo(np.int64).max // 2]))
        dist = w[r] + np.minimum(dist, np.minimum(left, right))
    result[:] = dist.astype(result.dtype)


def pathfinder_cpu(wall, rows, cols, result):
    """Serial row-sweep DP."""
    _pathfinder(wall, rows, cols, result)


def pathfinder_openmp(wall, rows, cols, result):
    """OpenMP column-parallel row sweep (identical results)."""
    _pathfinder(wall, rows, cols, result)


def pathfinder_cuda(wall, rows, cols, result):
    """Rodinia's ghost-zone CUDA kernel (identical results)."""
    _pathfinder(wall, rows, cols, result)


def _flops(ctx) -> float:
    return 4.0 * float(ctx["rows"]) * float(ctx["cols"])


def _bytes(ctx) -> float:
    return 12.0 * float(ctx["rows"]) * float(ctx["cols"])


def cost_cpu(ctx, device) -> float:
    return serial_time(device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR)


def cost_openmp(ctx, device) -> float:
    return openmp_time(
        device, ncores_of(ctx), _flops(ctx), _bytes(ctx), AccessPattern.REGULAR
    )


def cost_cuda(ctx, device) -> float:
    # ghost-zone blocking: one launch per pyramid of rows
    base = gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR, library_factor=0.9
    )
    launches = max(float(ctx["rows"]) / 8.0, 1.0)
    return base + launches * device.launch_overhead_s


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="pathfinder_cpu",
        provides="pathfinder",
        platform="cpu_serial",
        sources=("pathfinder_cpu.cpp",),
        kernel_ref="repro.apps.pathfinder:pathfinder_cpu",
        cost_ref="repro.apps.pathfinder:cost_cpu",
        prediction_ref="repro.apps.pathfinder:cost_cpu",
    ),
    ImplementationDescriptor(
        name="pathfinder_openmp",
        provides="pathfinder",
        platform="openmp",
        sources=("pathfinder_openmp.cpp",),
        kernel_ref="repro.apps.pathfinder:pathfinder_openmp",
        cost_ref="repro.apps.pathfinder:cost_openmp",
        prediction_ref="repro.apps.pathfinder:cost_openmp",
    ),
    ImplementationDescriptor(
        name="pathfinder_cuda",
        provides="pathfinder",
        platform="cuda",
        sources=("pathfinder_cuda.cu",),
        kernel_ref="repro.apps.pathfinder:pathfinder_cuda",
        cost_ref="repro.apps.pathfinder:cost_cuda",
        prediction_ref="repro.apps.pathfinder:cost_cuda",
    ),
]


def register(repo) -> None:
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)


def reference(wall, rows, cols) -> np.ndarray:
    out = np.zeros(cols, dtype=np.int32)
    _pathfinder(wall, rows, cols, out)
    return out
