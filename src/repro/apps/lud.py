"""LUD: blocked LU decomposition (Rodinia benchmark).

In-place LU factorisation without pivoting, right-looking blocked
algorithm (diagonal factor, triangular panel solves, trailing GEMM
update).  Compute-bound like SGEMM but with a serial dependency chain
along the diagonal, which taxes the GPU's launch overhead — the CPU
variants stay closer than for pure GEMM (Figure 6).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.hw.devices import AccessPattern

DECLARATION = "void lud(float* A, int n);"

INTERFACE = interface_from_decl(
    DECLARATION,
    rw_params=("A",),
    context=(ContextParamDecl("n", "int", minimum=16, maximum=4096),),
)

#: blocking factor of the right-looking algorithm
BLOCK = 64


def _lud(A, n):
    a = A.reshape(n, n)
    for k0 in range(0, n, BLOCK):
        k1 = min(k0 + BLOCK, n)
        # unblocked factorisation of the diagonal block
        d = a[k0:k1, k0:k1]
        for j in range(k1 - k0 - 1):
            pivot = d[j, j]
            if pivot == 0.0:
                raise ZeroDivisionError("LU without pivoting hit a zero pivot")
            d[j + 1:, j] /= pivot
            d[j + 1:, j + 1:] -= np.outer(d[j + 1:, j], d[j, j + 1:])
        if k1 == n:
            break
        # panel solves: L21 = A21 * U11^-1, U12 = L11^-1 * A12
        a[k1:, k0:k1] = scipy.linalg.solve_triangular(
            d, a[k1:, k0:k1].T, lower=False, trans="T"
        ).T
        a[k0:k1, k1:] = scipy.linalg.solve_triangular(
            d, a[k0:k1, k1:], lower=True, unit_diagonal=True
        )
        # trailing update
        a[k1:, k1:] -= a[k1:, k0:k1] @ a[k0:k1, k1:]


def lud_cpu(A, n):
    """Serial blocked LU."""
    _lud(A, n)


def lud_openmp(A, n):
    """OpenMP-parallel trailing updates (identical results)."""
    _lud(A, n)


def lud_cuda(A, n):
    """Rodinia's CUDA LUD (diagonal/perimeter/internal kernels)."""
    _lud(A, n)


def _flops(ctx) -> float:
    return (2.0 / 3.0) * float(ctx["n"]) ** 3


def _bytes(ctx) -> float:
    n = float(ctx["n"])
    # each trailing block is re-read once per panel step
    return 4.0 * n * n * max(n / BLOCK / 8.0, 1.0)


def cost_cpu(ctx, device) -> float:
    return serial_time(device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR)


def cost_openmp(ctx, device) -> float:
    return openmp_time(
        device, ncores_of(ctx), _flops(ctx), _bytes(ctx), AccessPattern.REGULAR
    )


def cost_cuda(ctx, device) -> float:
    # three kernel launches per panel step + the serial diagonal chain
    base = gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR, library_factor=1.1
    )
    steps = max(float(ctx["n"]) / BLOCK, 1.0)
    return base + 3.0 * steps * device.launch_overhead_s


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="lud_cpu",
        provides="lud",
        platform="cpu_serial",
        sources=("lud_cpu.cpp",),
        kernel_ref="repro.apps.lud:lud_cpu",
        cost_ref="repro.apps.lud:cost_cpu",
        prediction_ref="repro.apps.lud:cost_cpu",
    ),
    ImplementationDescriptor(
        name="lud_openmp",
        provides="lud",
        platform="openmp",
        sources=("lud_openmp.cpp",),
        kernel_ref="repro.apps.lud:lud_openmp",
        cost_ref="repro.apps.lud:cost_openmp",
        prediction_ref="repro.apps.lud:cost_openmp",
    ),
    ImplementationDescriptor(
        name="lud_cuda",
        provides="lud",
        platform="cuda",
        sources=("lud_cuda.cu",),
        kernel_ref="repro.apps.lud:lud_cuda",
        cost_ref="repro.apps.lud:cost_cuda",
        prediction_ref="repro.apps.lud:cost_cuda",
    ),
]


def register(repo) -> None:
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)


def make_spd_matrix(n: int, seed: int = 0) -> np.ndarray:
    """Diagonally dominant matrix (LU without pivoting stays stable)."""
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)).astype(np.float32)
    a += n * np.eye(n, dtype=np.float32)
    return a.reshape(-1)


def reference(A0, n) -> np.ndarray:
    a = A0.reshape(n, n).astype(np.float64).copy()
    for j in range(n - 1):
        a[j + 1:, j] /= a[j, j]
        a[j + 1:, j + 1:] -= np.outer(a[j + 1:, j], a[j, j + 1:])
    return a.reshape(-1).astype(np.float32)
