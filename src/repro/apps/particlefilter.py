"""ParticleFilter: sequential Monte-Carlo object tracking (Rodinia).

Tracks a target through a synthetic video: per frame, particles
propagate with process noise, are weighted by a likelihood computed from
pixels around each particle, normalised, and systematically resampled.
The resampling step is branch-heavy and serialises poorly — the workload
class where GPUs (especially the cache-less, divergence-sensitive C1060)
lose their edge (Figure 6).
"""

from __future__ import annotations

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.hw.devices import AccessPattern

DECLARATION = (
    "void particlefilter(const float* frames, int n_frames, int dim, "
    "int n_particles, int seed, float* track);"
)

INTERFACE = interface_from_decl(
    DECLARATION,
    write_params=("track",),
    context=(
        ContextParamDecl("n_frames", "int", minimum=1, maximum=128),
        ContextParamDecl("dim", "int", minimum=16, maximum=1024),
        ContextParamDecl("n_particles", "int", minimum=64, maximum=1 << 20),
    ),
)


def _particlefilter(frames, n_frames, dim, n_particles, seed, track):
    """SIR particle filter (deterministic given the seed)."""
    rng = np.random.default_rng(int(seed))
    video = frames.reshape(n_frames, dim, dim)
    px = np.full(n_particles, dim / 2.0)
    py = np.full(n_particles, dim / 2.0)
    out = track.reshape(n_frames, 2)
    for f in range(n_frames):
        # propagate with process noise
        px = np.clip(px + rng.normal(1.0, 2.0, n_particles), 0, dim - 1)
        py = np.clip(py + rng.normal(0.5, 2.0, n_particles), 0, dim - 1)
        # likelihood: brightness at the particle (bright object on dark bg)
        ix = px.astype(np.int64)
        iy = py.astype(np.int64)
        lik = video[f, iy, ix]
        w = np.exp(4.0 * (lik - lik.max()))
        w /= w.sum()
        # estimate before resampling
        out[f, 0] = np.dot(w, px)
        out[f, 1] = np.dot(w, py)
        # systematic resampling (the branchy part on real hardware)
        positions = (rng.random() + np.arange(n_particles)) / n_particles
        idx = np.searchsorted(np.cumsum(w), positions)
        idx = np.clip(idx, 0, n_particles - 1)
        px = px[idx]
        py = py[idx]


def particlefilter_cpu(frames, n_frames, dim, n_particles, seed, track):
    """Serial SIR filter."""
    _particlefilter(frames, n_frames, dim, n_particles, seed, track)


def particlefilter_openmp(frames, n_frames, dim, n_particles, seed, track):
    """OpenMP particle-parallel filter (identical results)."""
    _particlefilter(frames, n_frames, dim, n_particles, seed, track)


def particlefilter_cuda(frames, n_frames, dim, n_particles, seed, track):
    """Rodinia's float CUDA filter (identical results)."""
    _particlefilter(frames, n_frames, dim, n_particles, seed, track)


def _flops(ctx) -> float:
    return 90.0 * float(ctx["n_particles"]) * float(ctx["n_frames"])


def _bytes(ctx) -> float:
    return 56.0 * float(ctx["n_particles"]) * float(ctx["n_frames"])


def cost_cpu(ctx, device) -> float:
    return serial_time(device, _flops(ctx), _bytes(ctx), AccessPattern.BRANCHY)


def cost_openmp(ctx, device) -> float:
    # the resampling scan limits scaling; charge a reduction per frame
    t = openmp_time(
        device, ncores_of(ctx), _flops(ctx), _bytes(ctx), AccessPattern.BRANCHY
    )
    return t + float(ctx["n_frames"]) * 2e-6


def cost_cuda(ctx, device) -> float:
    # divergent resampling + several launches per frame
    base = gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.BRANCHY, library_factor=1.3
    )
    return base + 4.0 * float(ctx["n_frames"]) * device.launch_overhead_s


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="particlefilter_cpu",
        provides="particlefilter",
        platform="cpu_serial",
        sources=("particlefilter_cpu.cpp",),
        kernel_ref="repro.apps.particlefilter:particlefilter_cpu",
        cost_ref="repro.apps.particlefilter:cost_cpu",
        prediction_ref="repro.apps.particlefilter:cost_cpu",
    ),
    ImplementationDescriptor(
        name="particlefilter_openmp",
        provides="particlefilter",
        platform="openmp",
        sources=("particlefilter_openmp.cpp",),
        kernel_ref="repro.apps.particlefilter:particlefilter_openmp",
        cost_ref="repro.apps.particlefilter:cost_openmp",
        prediction_ref="repro.apps.particlefilter:cost_openmp",
    ),
    ImplementationDescriptor(
        name="particlefilter_cuda",
        provides="particlefilter",
        platform="cuda",
        sources=("particlefilter_cuda.cu",),
        kernel_ref="repro.apps.particlefilter:particlefilter_cuda",
        cost_ref="repro.apps.particlefilter:cost_cuda",
        prediction_ref="repro.apps.particlefilter:cost_cuda",
    ),
]


def register(repo) -> None:
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)


def make_video(
    n_frames: int, dim: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic video of a bright blob moving diagonally; returns
    (frames, true positions)."""
    rng = np.random.default_rng(seed)
    frames = 0.1 * rng.random((n_frames, dim, dim)).astype(np.float32)
    truth = np.zeros((n_frames, 2), dtype=np.float32)
    x, y = dim / 2.0, dim / 2.0
    yy, xx = np.mgrid[0:dim, 0:dim]
    for f in range(n_frames):
        x = np.clip(x + 1.0, 2, dim - 3)
        y = np.clip(y + 0.5, 2, dim - 3)
        blob = np.exp(-((xx - x) ** 2 + (yy - y) ** 2) / 8.0)
        frames[f] += blob.astype(np.float32)
        truth[f] = (x, y)
    return frames.reshape(-1), truth


def reference(frames, n_frames, dim, n_particles, seed) -> np.ndarray:
    track = np.zeros(n_frames * 2, dtype=np.float32)
    _particlefilter(frames, n_frames, dim, n_particles, seed, track)
    return track
