"""HotSpot: thermal simulation stencil (Rodinia benchmark).

Iterative 5-point stencil modelling on-chip temperature from a power
map.  Regular, bandwidth-bound, trivially data-parallel — the archetypal
GPU-friendly kernel, where the tiled CUDA implementation dominates both
CPU variants at size (Figure 6).
"""

from __future__ import annotations

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.hw.devices import AccessPattern

DECLARATION = (
    "void hotspot(const float* power, float* temp, int rows, int cols, "
    "int iters);"
)

INTERFACE = interface_from_decl(
    DECLARATION,
    rw_params=("temp",),
    context=(
        ContextParamDecl("rows", "int", minimum=16, maximum=8192),
        ContextParamDecl("cols", "int", minimum=16, maximum=8192),
        ContextParamDecl("iters", "int", minimum=1, maximum=1024),
    ),
)

#: physical constants of the Rodinia model (scaled for a unit grid)
_CAP = 0.5
_RX, _RY, _RZ = 1.0, 1.0, 4.0
_AMB = 80.0


def _step(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    """One explicit Euler step of the heat equation on the chip grid."""
    up = np.vstack([temp[:1], temp[:-1]])
    down = np.vstack([temp[1:], temp[-1:]])
    left = np.hstack([temp[:, :1], temp[:, :-1]])
    right = np.hstack([temp[:, 1:], temp[:, -1:]])
    delta = (
        power
        + (up + down - 2.0 * temp) / _RY
        + (left + right - 2.0 * temp) / _RX
        + (_AMB - temp) / _RZ
    ) / _CAP
    return temp + 0.05 * delta


def _hotspot(power, temp, rows, cols, iters):
    t = temp.reshape(rows, cols)
    p = power.reshape(rows, cols)
    for _ in range(int(iters)):
        t[:] = _step(t, p)


def hotspot_cpu(power, temp, rows, cols, iters):
    """Serial row-major stencil sweep."""
    _hotspot(power, temp, rows, cols, iters)


def hotspot_openmp(power, temp, rows, cols, iters):
    """OpenMP row-parallel sweep (identical results)."""
    _hotspot(power, temp, rows, cols, iters)


def hotspot_cuda(power, temp, rows, cols, iters):
    """Rodinia's tiled, shared-memory CUDA kernel (identical results)."""
    _hotspot(power, temp, rows, cols, iters)


def hotspot_opencl(power, temp, rows, cols, iters):
    """Rodinia's OpenCL port (identical results, portable kernel)."""
    _hotspot(power, temp, rows, cols, iters)


def _flops(ctx) -> float:
    return 12.0 * float(ctx["rows"]) * float(ctx["cols"]) * float(ctx["iters"])


def _bytes(ctx) -> float:
    return 12.0 * float(ctx["rows"]) * float(ctx["cols"]) * float(ctx["iters"])


def cost_cpu(ctx, device) -> float:
    return serial_time(device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR)


def cost_openmp(ctx, device) -> float:
    return openmp_time(
        device, ncores_of(ctx), _flops(ctx), _bytes(ctx), AccessPattern.REGULAR
    )


def cost_cuda(ctx, device) -> float:
    # tiled shared-memory kernel: near-library efficiency, one launch
    # per pyramid of iterations
    base = gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR, library_factor=0.8
    )
    launches = max(float(ctx["iters"]) / 4.0, 1.0)  # 4 time steps per launch
    return base + launches * device.launch_overhead_s


def cost_opencl(ctx, device) -> float:
    # the portable OpenCL port lacks the CUDA kernel's tuning and pays a
    # heavier per-launch cost through the driver stack
    base = gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR, library_factor=1.0
    )
    launches = max(float(ctx["iters"]) / 4.0, 1.0)
    return base + 2.0 * launches * device.launch_overhead_s


#: optional portable variant — not registered by default (the paper's
#: Figure 6 builds use OpenMP/CUDA); used to exercise the OpenCL backend
OPENCL_IMPLEMENTATION = ImplementationDescriptor(
    name="hotspot_opencl",
    provides="hotspot",
    platform="opencl",
    sources=("hotspot_opencl.cl",),
    kernel_ref="repro.apps.hotspot:hotspot_opencl",
    cost_ref="repro.apps.hotspot:cost_opencl",
    prediction_ref="repro.apps.hotspot:cost_opencl",
)


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="hotspot_cpu",
        provides="hotspot",
        platform="cpu_serial",
        sources=("hotspot_cpu.cpp",),
        kernel_ref="repro.apps.hotspot:hotspot_cpu",
        cost_ref="repro.apps.hotspot:cost_cpu",
        prediction_ref="repro.apps.hotspot:cost_cpu",
    ),
    ImplementationDescriptor(
        name="hotspot_openmp",
        provides="hotspot",
        platform="openmp",
        sources=("hotspot_openmp.cpp",),
        kernel_ref="repro.apps.hotspot:hotspot_openmp",
        cost_ref="repro.apps.hotspot:cost_openmp",
        prediction_ref="repro.apps.hotspot:cost_openmp",
    ),
    ImplementationDescriptor(
        name="hotspot_cuda",
        provides="hotspot",
        platform="cuda",
        sources=("hotspot_cuda.cu",),
        kernel_ref="repro.apps.hotspot:hotspot_cuda",
        cost_ref="repro.apps.hotspot:cost_cuda",
        prediction_ref="repro.apps.hotspot:cost_cuda",
    ),
]


def register(repo) -> None:
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)


def reference(power, temp0, rows, cols, iters) -> np.ndarray:
    """Pure NumPy oracle (does not modify its inputs)."""
    temp = temp0.reshape(rows, cols).copy()
    p = power.reshape(rows, cols)
    for _ in range(int(iters)):
        temp = _step(temp, p)
    return temp.reshape(-1)
