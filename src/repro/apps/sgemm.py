"""SGEMM: single-precision dense matrix-matrix multiplication.

``C = alpha * A @ B + beta * C`` — one of the paper's two scientific
kernels (Table I, Figure 6).  The CUDA variant stands in for CUBLAS
(the paper uses CUBLAS components for CUDA implementations); the serial
variant is a blocked C++ triple loop, the OpenMP variant its
loop-parallel version.  Large GEMMs are strongly compute-bound, which is
why the GPU dominates at size and the CPU wins only tiny problems.
"""

from __future__ import annotations

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.hw.devices import AccessPattern

DECLARATION = (
    "void sgemm(int m, int n, int k, float alpha, const float* A, "
    "const float* B, float beta, float* C);"
)

INTERFACE = interface_from_decl(
    DECLARATION,
    context=(
        ContextParamDecl("m", "int", minimum=16, maximum=4096),
        ContextParamDecl("n", "int", minimum=16, maximum=4096),
        ContextParamDecl("k", "int", minimum=16, maximum=4096),
    ),
)


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

def _gemm(m, n, k, alpha, A, B, beta, C):
    a = A.reshape(m, k)
    b = B.reshape(k, n)
    c = C.reshape(m, n)
    # in-place so the write lands in the registered payload
    c *= beta
    c += alpha * (a @ b).astype(c.dtype, copy=False)


def sgemm_cpu(m, n, k, alpha, A, B, beta, C):
    """Blocked serial C++ GEMM."""
    _gemm(m, n, k, alpha, A, B, beta, C)


def sgemm_openmp(m, n, k, alpha, A, B, beta, C):
    """OpenMP loop-parallel GEMM (identical results)."""
    _gemm(m, n, k, alpha, A, B, beta, C)


def sgemm_cublas(m, n, k, alpha, A, B, beta, C):
    """CUBLAS sgemm (identical results)."""
    _gemm(m, n, k, alpha, A, B, beta, C)


# ---------------------------------------------------------------------------
# cost models
# ---------------------------------------------------------------------------

def _flops(ctx) -> float:
    return 2.0 * float(ctx["m"]) * float(ctx["n"]) * float(ctx["k"])


def _bytes(ctx) -> float:
    m, n, k = float(ctx["m"]), float(ctx["n"]), float(ctx["k"])
    return 4.0 * (m * k + k * n + 2.0 * m * n)


def cost_cpu(ctx, device) -> float:
    return serial_time(device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR)


def cost_openmp(ctx, device) -> float:
    return openmp_time(
        device, ncores_of(ctx), _flops(ctx), _bytes(ctx), AccessPattern.REGULAR
    )


def cost_cublas(ctx, device) -> float:
    # CUBLAS reaches a much larger fraction of peak than a naive kernel
    return gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.REGULAR, library_factor=0.55
    )


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="sgemm_cpu",
        provides="sgemm",
        platform="cpu_serial",
        sources=("sgemm_cpu.cpp",),
        kernel_ref="repro.apps.sgemm:sgemm_cpu",
        cost_ref="repro.apps.sgemm:cost_cpu",
        prediction_ref="repro.apps.sgemm:cost_cpu",
    ),
    ImplementationDescriptor(
        name="sgemm_openmp",
        provides="sgemm",
        platform="openmp",
        sources=("sgemm_openmp.cpp",),
        kernel_ref="repro.apps.sgemm:sgemm_openmp",
        cost_ref="repro.apps.sgemm:cost_openmp",
        prediction_ref="repro.apps.sgemm:cost_openmp",
    ),
    ImplementationDescriptor(
        name="sgemm_cublas",
        provides="sgemm",
        platform="cuda",
        sources=("sgemm_cuda.cu",),
        compile_cmd="nvcc -O3 -lcublas -c $< -o $@",
        kernel_ref="repro.apps.sgemm:sgemm_cublas",
        cost_ref="repro.apps.sgemm:cost_cublas",
        prediction_ref="repro.apps.sgemm:cost_cublas",
    ),
]


def register(repo) -> None:
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)


def reference(m, n, k, alpha, A, B, beta, C0) -> np.ndarray:
    """Pure NumPy oracle (does not touch its inputs)."""
    return beta * C0.reshape(m, n) + alpha * (
        A.reshape(m, k) @ B.reshape(k, n)
    )


def training_operands(ctx, runtime):
    """Operand factory for off-line training executions."""
    m, n, k = int(ctx["m"]), int(ctx["n"]), int(ctx["k"])
    a = np.zeros((m, k), dtype=np.float32)
    b = np.zeros((k, n), dtype=np.float32)
    c = np.zeros((m, n), dtype=np.float32)
    operands = [
        (runtime.register(a, "A"), "r"),
        (runtime.register(b, "B"), "r"),
        (runtime.register(c, "C"), "rw"),
    ]
    return operands, (m, n, k, 1.0, 0.0)


def submit_partitioned(runtime, codelet, h_a, h_b, h_c, m, n, k, alpha, beta, n_chunks):
    """Blocked matrix multiplication as multiple sub-tasks.

    Row-blocks of A and C form independent tasks sharing B (the paper's
    canonical intra-component-parallelism example: "the final result can
    be produced by just simple concatenation ... (e.g. blocked matrix
    multiplication)").
    """
    a_children = h_a.partition_equal(n_chunks, axis=0)
    c_children = h_c.partition_equal(n_chunks, axis=0)
    tasks = []
    for i, (a_i, c_i) in enumerate(zip(a_children, c_children)):
        m_i = a_i.array.shape[0] if a_i.array.ndim == 2 else len(a_i.array) // k
        tasks.append(
            runtime.submit(
                codelet,
                [(a_i, "r"), (h_b, "r"), (c_i, "rw")],
                ctx={"m": m_i, "n": n, "k": k},
                scalar_args=(m_i, n, k, alpha, beta),
                name=f"sgemm[{i}]",
            )
        )
    return tasks
