"""Runge-Kutta ODE solver (LibSolve stand-in).

The paper PEPPHERizes the Runge-Kutta solver from Korch & Rauber's
LibSolve library: 9 distinct components invoked ~10600 times over one
integration, with tight data dependencies between component calls that
make execution almost sequential — the stress test for per-invocation
runtime overhead (Figure 7) and the largest row of the LOC study
(Table I).

We integrate a 1D Brusselator-like reaction-diffusion system with a
low-storage (2N-register) Runge-Kutta scheme (Carpenter-Kennedy RK4(5)),
decomposed into the classic LibSolve vector operations, one PEPPHER
component each:

===============  =========================================================
component        operation
===============  =========================================================
ode_init         initial condition fill
ode_rhs          k = f(t, y)                      (the expensive stage)
ode_accum        du = a * du + h * k              (stage accumulator)
ode_update       y += b * du                      (solution update)
ode_err_accum    err += c * du                    (embedded error build)
ode_reset        v = 0                            (error reset per step)
ode_norm         result = weighted RMS of err     (reduction -> scalar)
ode_copy         dst = src                        (checkpointing)
ode_output       sample = y[::stride]             (observable extraction)
===============  =========================================================

The solver driver is parameterised by an *invoke table* mapping component
names to callables with the entry-wrapper signature, so the same driver
runs through tool-generated stubs, hand-written runtime code, or plain
local kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.components.interface import InterfaceDescriptor
from repro.hw.devices import AccessPattern

#: Carpenter-Kennedy low-storage RK4(5) coefficients
CK_A = (0.0, -0.4178904745, -1.192151694643, -1.697784692471, -1.514183444257)
CK_B = (0.1496590219993, 0.3792103129999, 0.8229550293869, 0.6994504559488, 0.1530572479681)
#: weights of the embedded error accumulator (synthetic pair)
CK_C = (0.02, -0.01, 0.015, -0.02, 0.005)

#: Brusselator reaction parameters
_BR_A, _BR_B, _DIFF = 1.0, 3.0, 0.02


# ---------------------------------------------------------------------------
# component declarations
# ---------------------------------------------------------------------------

_DECLS: dict[str, tuple[str, dict]] = {
    "ode_init": (
        "void ode_init(float* y, int n);",
        {"write_params": ("y",)},
    ),
    "ode_rhs": (
        "void ode_rhs(const float* y, float* k, int n, float t);",
        {"write_params": ("k",)},
    ),
    "ode_accum": (
        "void ode_accum(float* du, const float* k, float a, float h, int n);",
        {"rw_params": ("du",)},
    ),
    "ode_update": (
        "void ode_update(float* y, const float* du, float b, int n);",
        {"rw_params": ("y",)},
    ),
    "ode_err_accum": (
        "void ode_err_accum(float* err, const float* du, float c, int n);",
        {"rw_params": ("err",)},
    ),
    "ode_reset": (
        "void ode_reset(float* v, int n);",
        {"write_params": ("v",)},
    ),
    "ode_norm": (
        "void ode_norm(const float* err, const float* y, float* result, int n);",
        {"write_params": ("result",)},
    ),
    "ode_copy": (
        "void ode_copy(const float* src, float* dst, int n);",
        {"write_params": ("dst",)},
    ),
    "ode_output": (
        "void ode_output(const float* y, float* sample, int n, int stride);",
        {"write_params": ("sample",)},
    ),
}


def _iface(name: str) -> InterfaceDescriptor:
    decl, kw = _DECLS[name]
    return interface_from_decl(
        decl,
        context=(ContextParamDecl("n", "int", minimum=2, maximum=1 << 22),),
        **kw,
    )


INTERFACES: dict[str, InterfaceDescriptor] = {name: _iface(name) for name in _DECLS}


# ---------------------------------------------------------------------------
# kernels (shared computation across variants)
# ---------------------------------------------------------------------------

def ode_init_kernel(y, n):
    idx = np.arange(n)
    y[:] = (1.0 + 0.5 * np.sin(2.0 * np.pi * idx / n)).astype(y.dtype)


def ode_rhs_kernel(y, k, n, t):
    # Brusselator-like reaction + diffusion on a ring
    left = np.roll(y, 1)
    right = np.roll(y, -1)
    k[:] = (
        _BR_A
        + y * y * (_BR_B / (1.0 + y * y))
        - y
        + _DIFF * (left - 2.0 * y + right)
    ).astype(k.dtype)


def ode_accum_kernel(du, k, a, h, n):
    du *= a
    du += h * k


def ode_update_kernel(y, du, b, n):
    y += b * du


def ode_err_accum_kernel(err, du, c, n):
    err += c * du


def ode_reset_kernel(v, n):
    v[:] = 0.0


def ode_norm_kernel(err, y, result, n):
    scale = 1e-6 + 1e-3 * np.abs(y)
    result[0] = float(np.sqrt(np.mean((err / scale) ** 2)))


def ode_copy_kernel(src, dst, n):
    dst[:] = src


def ode_output_kernel(y, sample, n, stride):
    m = len(sample)
    sample[:] = y[:: int(stride)][:m]


# ---------------------------------------------------------------------------
# cost models — all components are streaming vector operations
# ---------------------------------------------------------------------------

def _vec_cost(flops_per_elem: float, bytes_per_elem: float):
    def make(kind: str):
        if kind == "cpu":

            def cost(ctx, device):
                n = float(ctx["n"])
                return serial_time(
                    device, flops_per_elem * n, bytes_per_elem * n,
                    AccessPattern.REGULAR,
                )

        elif kind == "openmp":

            def cost(ctx, device):
                n = float(ctx["n"])
                return openmp_time(
                    device, ncores_of(ctx), flops_per_elem * n,
                    bytes_per_elem * n, AccessPattern.REGULAR,
                )

        else:

            def cost(ctx, device):
                n = float(ctx["n"])
                return gpu_time(
                    device, flops_per_elem * n, bytes_per_elem * n,
                    AccessPattern.REGULAR, library_factor=0.9,
                )

        return cost

    return make


_COST_SHAPES = {
    "ode_init": _vec_cost(3.0, 4.0),
    "ode_rhs": _vec_cost(14.0, 16.0),
    "ode_accum": _vec_cost(3.0, 12.0),
    "ode_update": _vec_cost(2.0, 12.0),
    "ode_err_accum": _vec_cost(2.0, 12.0),
    "ode_reset": _vec_cost(0.5, 4.0),
    "ode_norm": _vec_cost(6.0, 8.0),
    "ode_copy": _vec_cost(0.5, 8.0),
    "ode_output": _vec_cost(0.5, 8.0),
}

# module-level cost functions so descriptors can reference them by name
for _name, _make in _COST_SHAPES.items():
    globals()[f"{_name}_cost_cpu"] = _make("cpu")
    globals()[f"{_name}_cost_openmp"] = _make("openmp")
    globals()[f"{_name}_cost_cuda"] = _make("cuda")


def _impls(name: str) -> list[ImplementationDescriptor]:
    mod = "repro.apps.odesolver"
    out = []
    for platform, suffix in (
        ("cpu_serial", "cpu"),
        ("openmp", "openmp"),
        ("cuda", "cuda"),
    ):
        out.append(
            ImplementationDescriptor(
                name=f"{name}_{suffix}",
                provides=name,
                platform=platform,
                sources=(f"{name}_{suffix}.{'cu' if suffix == 'cuda' else 'cpp'}",),
                kernel_ref=f"{mod}:{name}_kernel",
                cost_ref=f"{mod}:{name}_cost_{suffix}",
                prediction_ref=f"{mod}:{name}_cost_{suffix}",
            )
        )
    return out


IMPLEMENTATIONS: dict[str, list[ImplementationDescriptor]] = {
    name: _impls(name) for name in _DECLS
}

COMPONENT_NAMES = tuple(_DECLS)


def register(repo) -> None:
    """Register all nine solver components."""
    for name in COMPONENT_NAMES:
        repo.add_interface(INTERFACES[name])
        for impl in IMPLEMENTATIONS[name]:
            repo.add_implementation(impl)


# ---------------------------------------------------------------------------
# the solver driver
# ---------------------------------------------------------------------------

@dataclass
class SolveResult:
    """Outcome of one integration."""

    y: np.ndarray  # final state (host copy)
    sample: np.ndarray  # observables extracted by ode_output
    invocations: int  # component calls performed
    norms: list[float]  # per-sampled-step error norms


def solve(
    invoke: Mapping[str, Callable],
    containers: Mapping[str, object],
    n: int,
    steps: int = 588,
    h: float = 1e-3,
    sample_every: int = 10,
    read_norm: Callable[[], float] | None = None,
) -> int:
    """Drive one integration through component entry points.

    ``invoke[name](...)`` must accept the component's C-signature
    arguments (containers/handles for operands).  ``containers`` provides
    the operand objects: ``y``, ``k``, ``du``, ``err``, ``norm`` (length
    1), ``sample``.  Returns the number of component invocations.

    The dependency structure is intentionally tight (each stage consumes
    the previous stage's output), so asynchronous submission yields an
    almost sequential schedule — as the paper observes for this app.
    """
    y = containers["y"]
    k = containers["k"]
    du = containers["du"]
    err = containers["err"]
    norm = containers["norm"]
    sample = containers["sample"]
    calls = 0
    invoke["ode_init"](y, n)
    calls += 1
    invoke["ode_copy"](y, du, n)  # du starts as a copy, then is scaled out
    calls += 1
    t = 0.0
    for step in range(steps):
        invoke["ode_reset"](err, n)
        calls += 1
        for stage in range(5):
            invoke["ode_rhs"](y, k, n, t + h * stage / 5.0)
            invoke["ode_accum"](du, k, CK_A[stage], h, n)
            invoke["ode_update"](y, du, CK_B[stage], n)
            calls += 3
        invoke["ode_err_accum"](err, du, CK_C[step % 5], n)
        invoke["ode_norm"](err, y, norm, n)
        calls += 2
        if read_norm is not None:
            read_norm()  # host inspects the step error (blocking read)
        if (step + 1) % sample_every == 0:
            invoke["ode_output"](y, sample, n, max(n // max(len_of(sample), 1), 1))
            calls += 1
        t += h
    return calls


def len_of(obj) -> int:
    """Length of a container or array operand."""
    try:
        return len(obj)
    except TypeError:
        return int(getattr(obj, "size", 0))


def local_invoke_table() -> dict[str, Callable]:
    """Kernels callable directly on NumPy arrays (no runtime) —
    the 'sequential legacy application' starting point of Figure 1."""
    return {
        "ode_init": lambda y, n: ode_init_kernel(np.asarray(y), n),
        "ode_rhs": lambda y, k, n, t: ode_rhs_kernel(np.asarray(y), np.asarray(k), n, t),
        "ode_accum": lambda du, k, a, h, n: ode_accum_kernel(
            np.asarray(du), np.asarray(k), a, h, n
        ),
        "ode_update": lambda y, du, b, n: ode_update_kernel(
            np.asarray(y), np.asarray(du), b, n
        ),
        "ode_err_accum": lambda err, du, c, n: ode_err_accum_kernel(
            np.asarray(err), np.asarray(du), c, n
        ),
        "ode_reset": lambda v, n: ode_reset_kernel(np.asarray(v), n),
        "ode_norm": lambda err, y, r, n: ode_norm_kernel(
            np.asarray(err), np.asarray(y), np.asarray(r), n
        ),
        "ode_copy": lambda s, d, n: ode_copy_kernel(np.asarray(s), np.asarray(d), n),
        "ode_output": lambda y, s, n, stride: ode_output_kernel(
            np.asarray(y), np.asarray(s), n, stride
        ),
    }


def reference_solution(n: int, steps: int, h: float = 1e-3) -> np.ndarray:
    """Plain NumPy integration (oracle for all execution paths)."""
    y = np.empty(n, dtype=np.float32)
    ode_init_kernel(y, n)
    du = y.copy()
    k = np.empty_like(y)
    t = 0.0
    for _ in range(steps):
        for stage in range(5):
            ode_rhs_kernel(y, k, n, t + h * stage / 5.0)
            ode_accum_kernel(du, k, CK_A[stage], h, n)
            ode_update_kernel(y, du, CK_B[stage], n)
        t += h
    return y
