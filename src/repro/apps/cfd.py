"""CFD: Euler-equation flux solver (Rodinia ``cfd``/euler3d benchmark).

Rodinia's cfd computes compressible-flow fluxes over an *unstructured*
grid: per cell, gather the four neighbours through an index array,
evaluate the flux contributions, and update the conserved variables
(density, momentum, energy).  We reproduce that computational pattern —
state arrays of 4 conserved variables per cell, an explicit neighbour
index table (so the memory access stays indirect/irregular like the
original), and a fixed number of Runge-Kutta-style sweeps per call.
"""

from __future__ import annotations

import numpy as np

from repro.apps._ifhelp import interface_from_decl
from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components.context import ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.hw.devices import AccessPattern

DECLARATION = (
    "void cfd(float* variables, const int* neighbors, int ncells, int iters);"
)

INTERFACE = interface_from_decl(
    DECLARATION,
    rw_params=("variables",),
    context=(
        ContextParamDecl("ncells", "int", minimum=64, maximum=1 << 21),
        ContextParamDecl("iters", "int", minimum=1, maximum=64),
    ),
)

#: conserved variables per cell (density, 2x momentum, energy)
NVAR = 4
#: neighbours per cell in the synthetic unstructured grid
NNB = 4
_GAMMA = 1.4


def _flux_sweep(u: np.ndarray, nb: np.ndarray) -> np.ndarray:
    """One flux-accumulation sweep (gather neighbours, update state)."""
    rho = u[:, 0]
    mx = u[:, 1]
    my = u[:, 2]
    en = u[:, 3]
    pressure = np.maximum(
        (_GAMMA - 1.0) * (en - 0.5 * (mx * mx + my * my) / np.maximum(rho, 1e-6)),
        1e-6,
    )
    flux = np.zeros_like(u)
    for j in range(NNB):  # fixed small neighbour count, vectorised per side
        un = u[nb[:, j]]
        pn = pressure[nb[:, j]]
        flux[:, 0] += un[:, 1] - mx
        flux[:, 1] += (un[:, 1] ** 2 / np.maximum(un[:, 0], 1e-6) + pn) - (
            mx * mx / np.maximum(rho, 1e-6) + pressure
        )
        flux[:, 2] += un[:, 2] - my
        flux[:, 3] += (un[:, 3] + pn) - (en + pressure)
    return u + 0.001 * flux


def _cfd(variables, neighbors, ncells, iters):
    u = variables.reshape(ncells, NVAR)
    nb = neighbors.reshape(ncells, NNB)
    for _ in range(int(iters)):
        u[:] = _flux_sweep(u, nb)


def cfd_cpu(variables, neighbors, ncells, iters):
    """Serial per-cell flux solver."""
    _cfd(variables, neighbors, ncells, iters)


def cfd_openmp(variables, neighbors, ncells, iters):
    """OpenMP cell-parallel flux solver (identical results)."""
    _cfd(variables, neighbors, ncells, iters)


def cfd_cuda(variables, neighbors, ncells, iters):
    """Rodinia's CUDA euler3d kernel (identical results)."""
    _cfd(variables, neighbors, ncells, iters)


def _flops(ctx) -> float:
    return 140.0 * float(ctx["ncells"]) * float(ctx["iters"])


def _bytes(ctx) -> float:
    # state read/write + 4 neighbour gathers of 4 variables, per sweep
    return (2 + NNB) * NVAR * 4.0 * float(ctx["ncells"]) * float(ctx["iters"])


def cost_cpu(ctx, device) -> float:
    return serial_time(device, _flops(ctx), _bytes(ctx), AccessPattern.IRREGULAR)


def cost_openmp(ctx, device) -> float:
    return openmp_time(
        device, ncores_of(ctx), _flops(ctx), _bytes(ctx), AccessPattern.IRREGULAR
    )


def cost_cuda(ctx, device) -> float:
    # Rodinia's euler3d is a well-tuned kernel despite the gathers
    return gpu_time(
        device, _flops(ctx), _bytes(ctx), AccessPattern.IRREGULAR, library_factor=0.85
    )


IMPLEMENTATIONS = [
    ImplementationDescriptor(
        name="cfd_cpu",
        provides="cfd",
        platform="cpu_serial",
        sources=("cfd_cpu.cpp",),
        kernel_ref="repro.apps.cfd:cfd_cpu",
        cost_ref="repro.apps.cfd:cost_cpu",
        prediction_ref="repro.apps.cfd:cost_cpu",
    ),
    ImplementationDescriptor(
        name="cfd_openmp",
        provides="cfd",
        platform="openmp",
        sources=("cfd_openmp.cpp",),
        kernel_ref="repro.apps.cfd:cfd_openmp",
        cost_ref="repro.apps.cfd:cost_openmp",
        prediction_ref="repro.apps.cfd:cost_openmp",
    ),
    ImplementationDescriptor(
        name="cfd_cuda",
        provides="cfd",
        platform="cuda",
        sources=("cfd_cuda.cu",),
        kernel_ref="repro.apps.cfd:cfd_cuda",
        cost_ref="repro.apps.cfd:cost_cuda",
        prediction_ref="repro.apps.cfd:cost_cuda",
    ),
]


def register(repo) -> None:
    repo.add_interface(INTERFACE)
    for impl in IMPLEMENTATIONS:
        repo.add_implementation(impl)


def make_grid(ncells: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic unstructured grid: initial state + neighbour table."""
    rng = np.random.default_rng(seed)
    u = np.ones((ncells, NVAR), dtype=np.float32)
    u[:, 0] = 1.0 + 0.1 * rng.random(ncells)
    u[:, 1] = 0.1 * rng.standard_normal(ncells)
    u[:, 2] = 0.1 * rng.standard_normal(ncells)
    u[:, 3] = 2.5 + 0.1 * rng.random(ncells)
    # neighbours: ring topology plus random far links (unstructured feel)
    nb = np.empty((ncells, NNB), dtype=np.int32)
    idx = np.arange(ncells)
    nb[:, 0] = (idx + 1) % ncells
    nb[:, 1] = (idx - 1) % ncells
    nb[:, 2] = rng.integers(0, ncells, size=ncells)
    nb[:, 3] = rng.integers(0, ncells, size=ncells)
    return u.reshape(-1), nb.reshape(-1)


def reference(variables, neighbors, ncells, iters) -> np.ndarray:
    u = variables.reshape(ncells, NVAR).copy()
    nb = neighbors.reshape(ncells, NNB)
    for _ in range(int(iters)):
        u = _flux_sweep(u, nb)
    return u.reshape(-1)
