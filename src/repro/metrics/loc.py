"""Logical lines-of-code counting (Table I's metric).

The paper counts "standard LOC" per Park's SEI framework for counting
source statements: comments and blank lines are excluded, and a logical
statement spanning several physical lines counts once.  This module
implements that for Python sources: it tokenises the code and counts
*logical lines* (NEWLINE tokens with content), which handles multi-line
statements, docstrings (excluded as comments/documentation) and string
continuation correctly.
"""

from __future__ import annotations

import io
import inspect
import token as token_mod
import tokenize
from pathlib import Path


def count_logical_lines(source: str) -> int:
    """Number of logical (SEI-style) source lines in Python code."""
    count = 0
    pending_content = False
    depth_doc_candidate = True  # next statement could be a docstring
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    statement_tokens: list[tokenize.TokenInfo] = []
    for tok in tokens:
        if tok.type in (
            token_mod.COMMENT,
            token_mod.NL,
            token_mod.INDENT,
            token_mod.DEDENT,
            token_mod.ENCODING,
            token_mod.ENDMARKER,
        ):
            continue
        if tok.type == token_mod.NEWLINE:
            if statement_tokens:
                if not _is_docstring(statement_tokens):
                    count += 1
                statement_tokens = []
            continue
        statement_tokens.append(tok)
    if statement_tokens and not _is_docstring(statement_tokens):
        count += 1
    return count


def _is_docstring(statement_tokens: list[tokenize.TokenInfo]) -> bool:
    """A statement that is a bare string literal is documentation."""
    return (
        len(statement_tokens) == 1
        and statement_tokens[0].type == token_mod.STRING
    )


def count_file(path: str | Path) -> int:
    """Logical LOC of one source file."""
    return count_logical_lines(Path(path).read_text())


def count_object(obj) -> int:
    """Logical LOC of a Python object's source (function, class, module)."""
    return count_logical_lines(inspect.getsource(obj))


def count_files(paths) -> int:
    """Total logical LOC over several files."""
    return sum(count_file(p) for p in paths)
