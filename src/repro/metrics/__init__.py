"""Measurement utilities: SEI-style LOC counting for the Table I study."""

from repro.metrics.loc import count_file, count_files, count_logical_lines, count_object

__all__ = ["count_file", "count_files", "count_logical_lines", "count_object"]
