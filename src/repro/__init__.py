"""repro — a reproduction of the PEPPHER composition tool (MuCoCoS/SC 2012).

The package provides:

- :mod:`repro.hw` — a simulated heterogeneous machine (CPUs + GPUs) with
  calibrated analytical device cost models and a virtual clock.
- :mod:`repro.runtime` — a StarPU-like task-based runtime: data handles with
  MSI coherence over memory nodes, implicit dependency inference from data
  access modes, asynchronous task submission and performance-aware
  schedulers, driven by a discrete-event engine.
- :mod:`repro.containers` — PEPPHER smart containers (Scalar, Vector,
  Matrix) that keep operand data coherent across memory units and make
  data accesses from the application program block only when necessary.
- :mod:`repro.components` — the PEPPHER component model: interface /
  implementation / platform / main descriptors (real XML), repositories,
  call contexts, prediction functions, tunables and constraints.
- :mod:`repro.composer` — the composition tool itself: descriptor
  exploration, component-tree IR, generic component expansion, user-guided
  static narrowing, static composition with dispatch tables, and code
  generation (entry/backend wrapper stubs, a ``peppher`` header module and
  a Makefile-analog build plan).
- :mod:`repro.apps` / :mod:`repro.direct` — ten PEPPHERized applications
  (SpMV, SGEMM, Rodinia kernels, a Runge-Kutta ODE solver) in both
  tool-mode and hand-written-runtime form.
- :mod:`repro.exec` — real-concurrency execution backends (thread and
  process pools) behind the codelet API: kernels genuinely overlap, are
  wall-clock timed, and feed the performance model's ``measured``
  provenance; ``Session.submit_async`` exposes an asyncio surface.

See ``DESIGN.md`` for the system inventory and the per-experiment index and
``EXPERIMENTS.md`` for paper-vs-measured results.
"""

from repro._version import __version__

#: headline API, re-exported for convenience:
#: ``from repro import Runtime, Vector, Composer, Recipe, ...``
from repro.components import MainDescriptor, Repository
from repro.composer import ComposedApplication, Composer, Recipe
from repro.containers import Matrix, Scalar, Vector
from repro.hw import (
    MachineDescription,
    by_name,
    machine,
    platform_c1060,
    platform_c2050,
)
from repro.obs import MetricsRegistry, MetricsSuite
from repro.runtime import Runtime
from repro.runtime.events import EngineEvents
from repro.session import Session
from repro.tuning import PerfModelStore

# entry-point subpackages, imported last (they consume the core above)
from repro import check, serve  # noqa: E402  isort: skip

__all__ = [
    "ComposedApplication",
    "Composer",
    "EngineEvents",
    "MachineDescription",
    "Matrix",
    "MainDescriptor",
    "MetricsRegistry",
    "MetricsSuite",
    "PerfModelStore",
    "Recipe",
    "Repository",
    "Runtime",
    "Scalar",
    "Session",
    "Vector",
    "__version__",
    "by_name",
    "check",
    "machine",
    "platform_c1060",
    "platform_c2050",
    "serve",
]
