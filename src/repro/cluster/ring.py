"""Consistent-hash ring: stable tenant -> node routing.

Tenants hash onto the same ring as the nodes' virtual points; a
tenant's *preference list* is the distinct-node order encountered
walking clockwise from its hash.  The first entry is the primary, the
next ``replication - 1`` are its failover replicas, and the rest is the
spillover order under correlated failures.  Consistent hashing gives
the two properties the cluster needs: removing a node only remaps the
tenants that hashed to it (placement stays re-optimizable without a
global reshuffle, per the Optimized Composition follow-up's motivation),
and the mapping is a pure function of the key and the member set — two
same-seed runs route identically.

Hashing uses BLAKE2b (stdlib, stable across processes and platforms —
``hash()`` is salted per process and would break replay).
"""

from __future__ import annotations

import bisect
import hashlib


def _h(s: str) -> int:
    """Stable 64-bit hash of a string."""
    return int.from_bytes(
        hashlib.blake2b(s.encode(), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over integer node ids."""

    def __init__(self, nodes=(), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._members: set[int] = set()
        #: sorted virtual points: parallel arrays (hash, owner)
        self._hashes: list[int] = []
        self._owners: list[int] = []
        for n in nodes:
            self.add(n)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: int) -> bool:
        return node in self._members

    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    def _points(self, node: int) -> list[int]:
        return [_h(f"node-{node}#{v}") for v in range(self.vnodes)]

    def add(self, node: int) -> None:
        if node in self._members:
            return
        self._members.add(node)
        for p in self._points(node):
            i = bisect.bisect(self._hashes, p)
            self._hashes.insert(i, p)
            self._owners.insert(i, node)

    def remove(self, node: int) -> None:
        if node not in self._members:
            return
        self._members.discard(node)
        points = set(self._points(node))
        keep = [
            (h, o)
            for h, o in zip(self._hashes, self._owners)
            if not (o == node and h in points)
        ]
        self._hashes = [h for h, _ in keep]
        self._owners = [o for _, o in keep]

    def preference(self, key: str, n: int | None = None) -> list[int]:
        """Distinct nodes in clockwise walk order from ``key``'s hash.

        Returns at most ``n`` nodes (all members when ``n`` is None).
        """
        if not self._hashes:
            return []
        want = len(self._members) if n is None else min(n, len(self._members))
        out: list[int] = []
        seen: set[int] = set()
        start = bisect.bisect(self._hashes, _h(key))
        size = len(self._hashes)
        for i in range(size):
            owner = self._owners[(start + i) % size]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) >= want:
                    break
        return out

    def primary(self, key: str) -> int | None:
        pref = self.preference(key, 1)
        return pref[0] if pref else None
