"""Cluster-level execution records: attempts, requests, control events.

The cluster layer accounts work at a coarser grain than the per-node
engines: a *request* (one tenant invocation, identified by its
idempotency key ``(tenant, req_id)``) fans out into one or more
*attempts* (dispatches of that request to a node — the primary, then
failover retries and latency hedges), and the control plane's own
actions (crashes, detector verdicts, failovers, brown-out toggles) are
recorded as *events*.  Together the three streams form the
:class:`ClusterTrace`, which is fully deterministic for a fixed seed:
its canonical-JSON digest is the identity the chaos experiments compare
across same-seed runs.

Attempt outcome vocabulary:

- ``applied`` — the attempt's completion reached the router first and
  was counted; exactly one per completed request (the invariant
  ``cluster.exactly-once`` in :mod:`repro.check.cluster`).
- ``duplicate`` — the attempt completed, but another attempt had
  already been applied (hedge loser, or a failed-over attempt whose
  response surfaced after a partition healed); suppressed, never
  double-applied.
- ``lost`` — the attempt was outstanding on a node the failure detector
  declared dead and no completion was ever delivered.
- ``failed`` — the node answered with a failure (its own device-level
  fault recovery exhausted its retry budget).
- ``pending`` — not yet resolved (only ever observed mid-run).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

from repro.runtime.stats import RequestRecord

#: attempt outcomes (see module docstring)
ATTEMPT_OUTCOMES = ("pending", "applied", "duplicate", "lost", "failed")

#: request outcomes
REQUEST_OUTCOMES = ("completed", "shed", "failed")

#: control-plane event kinds
CLUSTER_EVENT_KINDS = (
    "crash",  # ground truth: a node stopped executing, silently
    "slowdown",  # ground truth: a node's kernels got slower (straggler)
    "partition",  # ground truth: a node became unreachable (still alive)
    "heal",  # ground truth: the partition ended
    "suspect",  # detector: phi crossed the suspicion threshold
    "dead",  # detector: phi crossed the death threshold; failover begins
    "alive",  # detector: a suspected/dead node's heartbeats resumed
    "failover",  # one outstanding request rerouted off a dead node
    "hedge",  # a latency hedge dispatched to a second replica
    "duplicate",  # a duplicate completion suppressed (exactly-once)
    "brownout_on",  # cluster-wide shed of the lowest priority class began
    "brownout_off",  # pressure receded; all tenants admitted again
    "drain_start",  # planned removal: node stops taking new requests
    "drain_done",  # in-flight work finished; node left the ring
)


@dataclass
class AttemptRecord:
    """One dispatch of a request to one node."""

    tenant: str
    req_id: int
    #: 0 = primary dispatch; retries and hedges increment
    attempt: int
    node: int
    dispatch_time: float
    #: True for latency hedges (raced against a still-live attempt)
    hedge: bool = False
    #: engine-task times on the node (NaN if the attempt never executed:
    #: the dispatch was blackholed by a crash or partition)
    start_time: float = float("nan")
    end_time: float = float("nan")
    #: when the completion reached the router (>= end_time; a healed
    #: partition delivers late), NaN if never delivered
    deliver_time: float = float("nan")
    #: when the router resolved the attempt (delivery or failover)
    resolved_time: float = float("nan")
    outcome: str = "pending"
    #: the engine task's per-node submission index (``Task.submit_seq``
    #: — stable across runs, unlike the process-global ``task_id``
    #: counter); None if the dispatch never reached an engine
    task_seq: int | None = None
    batch_size: int = 1

    @property
    def ran(self) -> bool:
        """Did the attempt actually execute on its node's engine?"""
        return self.task_seq is not None

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "req_id": self.req_id,
            "attempt": self.attempt,
            "node": self.node,
            "hedge": self.hedge,
            "dispatch_time": self.dispatch_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "deliver_time": self.deliver_time,
            "resolved_time": self.resolved_time,
            "outcome": self.outcome,
            "task_seq": self.task_seq,
            "batch_size": self.batch_size,
        }


@dataclass(frozen=True)
class ClusterRequestRecord:
    """Final accounting of one request (idempotency key ``tenant:req_id``)."""

    tenant: str
    req_id: int
    priority: int
    codelet: str
    arrival_time: float
    outcome: str  # completed | shed | failed
    #: why a shed request was rejected ("brownout", "admission", "no-node")
    shed_reason: str = ""
    #: first dispatch to any node (NaN if shed)
    dispatch_time: float = float("nan")
    #: applied attempt's engine start (NaN unless completed)
    start_time: float = float("nan")
    #: delivery time of the applied completion (NaN unless completed)
    end_time: float = float("nan")
    #: node whose attempt was applied
    served_by: int | None = None
    n_attempts: int = 0
    n_hedges: int = 0
    #: at least one failover (retry on another node) happened
    failed_over: bool = False
    batch_size: int = 1

    @property
    def completed(self) -> bool:
        return self.outcome == "completed"

    @property
    def latency(self) -> float:
        return self.end_time - self.arrival_time

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "req_id": self.req_id,
            "priority": self.priority,
            "codelet": self.codelet,
            "arrival_time": self.arrival_time,
            "outcome": self.outcome,
            "shed_reason": self.shed_reason,
            "dispatch_time": self.dispatch_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "served_by": self.served_by,
            "n_attempts": self.n_attempts,
            "n_hedges": self.n_hedges,
            "failed_over": self.failed_over,
            "batch_size": self.batch_size,
        }

    def as_request_record(self) -> RequestRecord:
        """Project onto the serving layer's :class:`RequestRecord`, so the
        per-tenant SLO machinery (:func:`repro.serve.slo.tenant_slo`)
        aggregates cluster records unchanged."""
        return RequestRecord.make(
            tenant=self.tenant,
            req_id=self.req_id,
            codelet=self.codelet,
            arrival_time=self.arrival_time,
            shed=self.outcome == "shed",
            failed=self.outcome == "failed",
            dispatch_time=self.dispatch_time,
            start_time=self.start_time,
            end_time=self.end_time,
            batch_size=self.batch_size,
        )


@dataclass(frozen=True)
class ClusterEventRecord:
    """One control-plane event (ground-truth fault or router reaction)."""

    kind: str
    time: float
    node: int | None = None
    tenant: str = ""
    req_id: int = -1
    detail: str = ""
    seq: int = -1

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "time": self.time,
            "node": self.node,
            "tenant": self.tenant,
            "req_id": self.req_id,
            "detail": self.detail,
            "seq": self.seq,
        }


@dataclass
class ClusterTrace:
    """Deterministic record of one cluster run."""

    requests: list[ClusterRequestRecord] = field(default_factory=list)
    attempts: list[AttemptRecord] = field(default_factory=list)
    events: list[ClusterEventRecord] = field(default_factory=list)

    def tenants(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.requests:
            seen.setdefault(r.tenant)
        return list(seen)

    def requests_for(self, tenant: str) -> list[ClusterRequestRecord]:
        return [r for r in self.requests if r.tenant == tenant]

    def events_of(self, kind: str) -> list[ClusterEventRecord]:
        return [e for e in self.events if e.kind == kind]

    # -- aggregates ---------------------------------------------------------

    @property
    def n_failovers(self) -> int:
        return len(self.events_of("failover"))

    @property
    def n_hedges(self) -> int:
        return len(self.events_of("hedge"))

    @property
    def n_duplicates_suppressed(self) -> int:
        return len(self.events_of("duplicate"))

    @property
    def n_completed(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "completed")

    @property
    def n_shed(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "shed")

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "failed")

    # -- identity -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "requests": [r.to_dict() for r in self.requests],
            "attempts": [a.to_dict() for a in self.attempts],
            "events": [e.to_dict() for e in self.events],
        }

    def digest(self) -> str:
        """SHA-256 of the canonical JSON serialization.

        Floats serialize via ``repr`` (shortest round-trip), so two
        runs produce the same digest iff every recorded time, outcome
        and ordering is bit-identical — the replay-compatibility bar
        the chaos experiment asserts for same-seed runs.
        """
        blob = json.dumps(
            self.to_dict(),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()


def completed_latencies(
    trace: ClusterTrace, tenants: "set[str] | None" = None
) -> list[tuple[float, float]]:
    """(completion time, latency) pairs, optionally tenant-filtered —
    the windowed-percentile basis for recovery-time measurement."""
    out = [
        (r.end_time, r.latency)
        for r in trace.requests
        if r.outcome == "completed"
        and not math.isnan(r.end_time)
        and (tenants is None or r.tenant in tenants)
    ]
    out.sort()
    return out
