"""The cluster facade: consistent-hash routing, failover, hedging,
brown-out — a simulated multi-node deployment of the composition server.

:class:`Cluster` owns O(10) :class:`~repro.cluster.node.ClusterNode`\\ s
(each a full single-machine runtime) and drives them from one global
discrete-event loop.  The loop's heap carries six event kinds; at equal
times completions resolve before control/heartbeat processing, which
runs before retries, hedges and new arrivals — so capacity freed at
time *t* is visible to routing decisions at *t*, and a crash taking
effect at *t* is seen before anything is dispatched at *t*.

Request lifecycle: arrival → (brown-out gate) → consistent-hash routing
to the first believed-alive replica → per-node admission → the node's
coalescing batch queue → engine execution → completion delivered back
to the router.  Failures re-enter the loop through the phi-accrual
failure detector: when a node is declared dead, its queued requests are
re-routed immediately and its outstanding attempts are retried on the
next replica after a jittered backoff (reusing
:class:`~repro.runtime.engine.RecoveryPolicy` — the same policy shape
that governs device-level retries inside each node).  Every request is
identified by its idempotency key ``(tenant, req_id)``; the router
applies **exactly one** completion per key and suppresses the rest
(hedge losers, responses surfacing after a partition heals), so a
failed-over invocation is never double-applied.

All randomness (arrival schedules, retry jitter) is drawn from hashed,
order-independent streams — two same-seed runs produce byte-identical
:class:`~repro.cluster.records.ClusterTrace` digests even under chaos.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from itertools import count
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cluster.detector import NodeState, PhiAccrualDetector
from repro.cluster.faults import NodeFaultModel
from repro.cluster.node import ClusterNode
from repro.cluster.records import (
    AttemptRecord,
    ClusterEventRecord,
    ClusterRequestRecord,
    ClusterTrace,
)
from repro.cluster.ring import HashRing
from repro.errors import PeppherError, UnrecoverableTaskError
from repro.hw import presets
from repro.hw.faults import FaultModel
from repro.runtime.engine import RecoveryPolicy
from repro.serve.admission import AdmissionOutcome, AdmissionPolicy
from repro.serve.batching import BatchPolicy, Coalescer
from repro.serve.client import TenantSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.metrics import ClusterMetrics

# event kinds, in processing order at equal times (completions free
# capacity first; control/detection next so nothing routes to a node
# that died "now"; retries and hedges before fresh arrivals)
_COMPLETION, _CONTROL, _HEARTBEAT, _RETRY, _HEDGE, _ARRIVAL = range(6)


@dataclass(frozen=True)
class ClusterTenant(TenantSpec):
    """A tenant of the cluster: a :class:`TenantSpec` plus the two
    knobs the robustness machinery keys on."""

    #: brown-out shedding order: under cluster-wide pressure the lowest
    #: priority class present is shed first (0 = best effort)
    priority: int = 1
    #: latency objective used by SLO-under-failure reporting
    slo_ms: float = float("inf")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.priority < 0:
            raise PeppherError(
                f"tenant {self.name!r}: priority must be >= 0"
            )
        if self.slo_ms <= 0:
            raise PeppherError(f"tenant {self.name!r}: slo_ms must be > 0")


@dataclass(frozen=True)
class HedgePolicy:
    """Tail-latency hedging: race a second replica when slow."""

    #: dispatch a hedge if no completion arrived this long after dispatch
    after_s: float
    #: hedges allowed per request
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.after_s <= 0:
            raise ValueError(f"after_s must be > 0, got {self.after_s}")
        if self.max_hedges < 1:
            raise ValueError(
                f"max_hedges must be >= 1, got {self.max_hedges}"
            )


@dataclass(frozen=True)
class BrownoutPolicy:
    """Cluster-wide graceful degradation under lost capacity.

    Pressure is outstanding work (dispatch slots occupied plus queued
    requests) over the believed-alive dispatch capacity.  Crossing
    ``high_water`` sheds the lowest-priority tenant class at admission
    until pressure falls back under ``low_water`` (hysteresis, so the
    gate does not flap)."""

    high_water: float = 2.0
    low_water: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.low_water <= self.high_water:
            raise ValueError(
                f"need 0 < low_water <= high_water, got "
                f"({self.low_water}, {self.high_water})"
            )


class _ReqState:
    """Router-side mutable state of one request (one idempotency key)."""

    __slots__ = (
        "spec",
        "tenant_idx",
        "req_id",
        "key",
        "arrival_s",
        "priority",
        "codelet",
        "attempts",
        "outstanding",
        "tried",
        "n_dispatches",
        "n_hedges",
        "completed",
        "finalized",
        "first_dispatch",
        "start_time",
        "end_time",
        "served_by",
        "batch_size",
        "failed_over",
        "admitted_node",
    )

    def __init__(
        self, spec: TenantSpec, tenant_idx: int, req_id: int, arrival_s: float
    ) -> None:
        self.spec = spec
        self.tenant_idx = tenant_idx
        self.req_id = req_id
        self.key = (spec.name, req_id)
        self.arrival_s = arrival_s
        self.priority = int(getattr(spec, "priority", 1))
        self.codelet = spec.workload
        self.attempts: list[AttemptRecord] = []
        self.outstanding: list[AttemptRecord] = []
        self.tried: set[int] = set()
        self.n_dispatches = 0
        self.n_hedges = 0
        self.completed = False
        self.finalized = False
        self.first_dispatch = float("nan")
        self.start_time = float("nan")
        self.end_time = float("nan")
        self.served_by: int | None = None
        self.batch_size = 1
        self.failed_over = False
        self.admitted_node: int | None = None


class Cluster:
    """Simulated multi-node composition service with failure handling.

    Parameters (the robustness knobs; the rest mirror
    :class:`~repro.serve.server.CompositionServer`):

    - ``node_faults`` — scripted node-level chaos
      (:class:`~repro.cluster.faults.NodeFaultModel`).
    - ``device_faults`` — per-node device-level
      :class:`~repro.hw.faults.FaultModel`; a single model is re-seeded
      per node so nodes fault independently.
    - ``failover`` — cluster-level retry policy: total dispatches per
      request are capped at ``1 + failover.max_retries``, retries are
      delayed by its (jittered) backoff.
    - ``replication`` — size of each tenant's replica set on the hash
      ring (primary + failover targets; overflow spills to the rest of
      the preference order).
    - ``hedge`` / ``brownout`` — optional tail-latency hedging and
      graceful brown-out policies.
    """

    def __init__(
        self,
        n_nodes: int,
        tenants: Sequence[TenantSpec],
        *,
        machine="c2050",
        replication: int = 2,
        scheduler: str = "dmda",
        seed: int = 0,
        node_faults: NodeFaultModel | None = None,
        device_faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        failover: RecoveryPolicy | None = None,
        heartbeat_s: float = 1e-3,
        suspect_phi: float = 1.0,
        dead_phi: float = 2.0,
        hedge: HedgePolicy | None = None,
        brownout: BrownoutPolicy | None = None,
        admission: AdmissionPolicy | None = None,
        batching: BatchPolicy | None = None,
        max_inflight: int = 4,
        noise_sigma: float = 0.0,
        run_kernels: bool = False,
        store_root: "str | Path | None" = None,
        vnodes: int = 32,
        dispatch_overhead_s: float = 5e-6,
        metrics: "bool | ClusterMetrics" = False,
        check: bool | None = None,
    ) -> None:
        if n_nodes < 1:
            raise PeppherError(f"n_nodes must be >= 1, got {n_nodes}")
        if not tenants:
            raise PeppherError("cluster needs at least one tenant")
        names = [s.name for s in tenants]
        if len(set(names)) != len(names):
            raise PeppherError(f"duplicate tenant names: {sorted(names)}")
        if replication < 1:
            raise PeppherError(f"replication must be >= 1, got {replication}")
        self.tenants = list(tenants)
        self.replication = min(replication, n_nodes)
        self.seed = int(seed)
        self.heartbeat_s = float(heartbeat_s)
        self.hedge = hedge
        self.brownout = brownout
        self.failover = failover or RecoveryPolicy(
            max_retries=3,
            backoff_base_s=2e-4,
            backoff_factor=2.0,
            backoff_cap_s=5e-3,
            backoff_jitter=0.3,
        )
        self.node_faults = node_faults or NodeFaultModel()
        self.node_faults.validate_for(n_nodes)
        self.check = check

        self.nodes: dict[int, ClusterNode] = {}
        for i in range(n_nodes):
            self.nodes[i] = ClusterNode(
                i,
                self._make_machine(machine, i),
                scheduler=scheduler,
                seed=self.seed + 7919 * i,
                noise_sigma=noise_sigma,
                run_kernels=run_kernels,
                faults=self._node_device_faults(device_faults, i),
                recovery=recovery,
                store=self._node_store(store_root, i),
                admission=admission,
                batching=batching,
                max_inflight=max_inflight,
                dispatch_overhead_s=dispatch_overhead_s,
            )
        self.ring = HashRing(range(n_nodes), vnodes=vnodes)
        self.detector = PhiAccrualDetector(
            self.heartbeat_s, suspect_phi=suspect_phi, dead_phi=dead_phi
        )
        self._belief: dict[int, NodeState] = {
            i: NodeState.ALIVE for i in range(n_nodes)
        }
        self.trace = ClusterTrace()
        self.metrics: "ClusterMetrics | None"
        if metrics is True:
            from repro.cluster.metrics import ClusterMetrics

            self.metrics = ClusterMetrics()
        else:
            self.metrics = metrics or None

        # brown-out shed class: the lowest priority present, but only
        # when the mix is heterogeneous (shedding everyone is an outage,
        # not a brown-out)
        prios = sorted({int(getattr(s, "priority", 1)) for s in tenants})
        self._shed_priority = prios[0] if len(prios) > 1 else None
        self._brownout_active = False

        self._heap: list[tuple[float, int, int, object]] = []
        self._heap_seq = count()
        self._ev_seq = count()
        self._reqs: dict[tuple[str, int], _ReqState] = {}
        self._node_outstanding: dict[int, list[AttemptRecord]] = {
            i: [] for i in range(n_nodes)
        }
        #: (key, node) pairs whose queued dispatch is a hedge
        self._queued_hedge: set[tuple[tuple[str, int], int]] = set()
        self._issued: dict[int, int] = {}
        self._total_offered = sum(s.n_requests for s in tenants)
        self._finalized = 0
        self._planned_drains: list[tuple[float, int]] = []
        self._now = 0.0
        self._ran = False

    # -- construction helpers -----------------------------------------------

    @staticmethod
    def _make_machine(machine, node_id: int):
        if isinstance(machine, str):
            return presets.by_name(machine)
        if callable(machine):
            return machine()
        import copy

        return copy.deepcopy(machine)

    def _node_device_faults(
        self, base: FaultModel | None, node_id: int
    ) -> FaultModel | None:
        """Each node faults independently: same rates, per-node seed."""
        if base is None:
            return None
        return FaultModel(
            kernel_fault_rate=base.kernel_fault_rate,
            transfer_fault_rate=base.transfer_fault_rate,
            device_loss_rate=base.device_loss_rate,
            device_loss_at=base.device_loss_at,
            seed=base.seed + 101 * node_id + 1,
        )

    @staticmethod
    def _node_store(root, node_id: int):
        if root is None:
            return None
        from repro.tuning.store import PerfModelStore

        return PerfModelStore(Path(root) / f"node{node_id}")

    # -- public API ----------------------------------------------------------

    def drain(self, node_id: int, at: float) -> None:
        """Schedule a planned removal: at ``at`` the node stops taking
        new requests, finishes its in-flight work, then leaves the
        ring.  Must be called before :meth:`run`."""
        if self._ran:
            raise PeppherError("drain() must be scheduled before run()")
        if node_id not in self.nodes:
            raise PeppherError(f"unknown node {node_id}")
        if at < 0:
            raise PeppherError(f"drain time must be >= 0, got {at}")
        self._planned_drains.append((float(at), node_id))

    def run(self) -> ClusterTrace:
        """Drive the whole workload; returns the cluster trace."""
        if self._ran:
            raise PeppherError("cluster already ran; build a fresh Cluster")
        self._ran = True
        self._schedule_initial_events()
        while self._heap:
            t, _, kind, payload = heapq.heappop(self._heap)
            self._now = t
            if kind == _COMPLETION:
                self._on_completion(t, *payload)
            elif kind == _CONTROL:
                self._on_control(t, payload)
            elif kind == _HEARTBEAT:
                self._on_heartbeat(t, payload)
            elif kind == _RETRY:
                self._on_retry(t, payload)
            elif kind == _HEDGE:
                self._on_hedge(t, payload)
            else:
                self._on_arrival(t, *payload)
        self._finalize_leftovers()
        if self._resolve_check():
            from repro.check.cluster import assert_cluster_legal

            assert_cluster_legal(self)
        return self.trace

    def shutdown(self) -> None:
        """Close every node (persists per-node perf-model stores)."""
        for node in self.nodes.values():
            node.close()

    @property
    def alive_nodes(self) -> list[int]:
        return [
            i
            for i, n in self.nodes.items()
            if not n.removed and self._belief[i] is not NodeState.DEAD
        ]

    # -- setup ---------------------------------------------------------------

    def _resolve_check(self) -> bool:
        if self.check is not None:
            return self.check
        from repro.check.config import default_check

        return default_check()

    def _schedule_initial_events(self) -> None:
        n = len(self.nodes)
        for idx, nid in enumerate(self.nodes):
            self.detector.register(nid, 0.0)
            # phase-staggered first beats: the fleet never heartbeats in
            # lockstep, so detection sweeps interleave with the workload
            self._push(
                self.heartbeat_s * (idx + 1) / (n + 1), _HEARTBEAT, nid
            )
        for idx, spec in enumerate(self.tenants):
            if spec.rate_hz is not None:
                rng = np.random.default_rng(spec.seed + 0xC11E)
                gaps = rng.exponential(
                    1.0 / spec.rate_hz, size=spec.n_requests
                )
                for i, t in enumerate(np.cumsum(gaps)):
                    self._push(float(t), _ARRIVAL, (idx, i))
            else:
                rng = np.random.default_rng(spec.seed + 0xC105ED)
                first = min(spec.concurrency, spec.n_requests)
                for i in range(first):
                    self._push(
                        float(rng.exponential(1e-4)), _ARRIVAL, (idx, i)
                    )
                self._issued[idx] = first
        for nid, t in sorted(self.node_faults.crash_at.items()):
            self._push(t, _CONTROL, ("crash", nid))
        for nid, (t, factor) in sorted(self.node_faults.slow_at.items()):
            self._push(t, _CONTROL, ("slow", nid, factor))
        for nid, (t0, t1) in sorted(self.node_faults.partition_at.items()):
            self._push(t0, _CONTROL, ("partition", nid, t0, t1))
            if math.isfinite(t1):
                self._push(t1, _CONTROL, ("heal", nid))
        for t, nid in sorted(self._planned_drains):
            self._push(t, _CONTROL, ("drain", nid))

    # -- event plumbing ------------------------------------------------------

    def _push(self, t: float, kind: int, payload: object) -> None:
        heapq.heappush(self._heap, (t, next(self._heap_seq), kind, payload))

    def _event(
        self,
        kind: str,
        t: float,
        node: int | None = None,
        tenant: str = "",
        req_id: int = -1,
        detail: str = "",
    ) -> None:
        self.trace.events.append(
            ClusterEventRecord(
                kind=kind,
                time=t,
                node=node,
                tenant=tenant,
                req_id=req_id,
                detail=detail,
                seq=next(self._ev_seq),
            )
        )

    # -- routing -------------------------------------------------------------

    def _routable(self, nid: int, allow_suspect: bool) -> bool:
        node = self.nodes[nid]
        if node.removed or node.draining:
            return False
        belief = self._belief[nid]
        if belief is NodeState.DEAD:
            return False
        if belief is NodeState.SUSPECT and not allow_suspect:
            return False
        return True

    def _route(self, tenant: str, exclude: "set[int] | frozenset" = frozenset()) -> int | None:
        """First usable node in the tenant's preference order: replicas
        first, then spillover; suspected nodes only as a last resort."""
        pref = self.ring.preference(tenant)
        replicas = pref[: self.replication]
        rest = pref[self.replication:]
        for allow_suspect in (False, True):
            for tier in (replicas, rest):
                for nid in tier:
                    if nid in exclude:
                        continue
                    if self._routable(nid, allow_suspect):
                        return nid
        return None

    # -- arrivals ------------------------------------------------------------

    def _on_arrival(self, t: float, tenant_idx: int, req_id: int) -> None:
        spec = self.tenants[tenant_idx]
        st = _ReqState(spec, tenant_idx, req_id, t)
        self._reqs[st.key] = st
        self._update_brownout(t)
        if (
            self._brownout_active
            and self._shed_priority is not None
            and st.priority <= self._shed_priority
        ):
            self._finalize(st, t, "shed", shed_reason="brownout")
            return
        nid = self._route(spec.name, st.tried)
        if nid is None:
            self._finalize(st, t, "shed", shed_reason="no-node")
            return
        self._dispatch(st, nid, t, hedge=False)

    # -- dispatch ------------------------------------------------------------

    def _dispatch(
        self, st: _ReqState, nid: int, t: float, *, hedge: bool
    ) -> None:
        node = self.nodes[nid]
        spec = st.spec
        if hedge:
            st.n_hedges += 1
        else:
            st.n_dispatches += 1
        st.tried.add(nid)
        if math.isnan(st.first_dispatch):
            st.first_dispatch = t
        req = node.make_request(spec, st.req_id, st.arrival_s)
        st.codelet = req.codelet_name
        if st.admitted_node is None:
            outcome = node.admission.decide(
                spec.name,
                now=t,
                arrival_s=st.arrival_s,
                predicted_backlog_s=node.backlog_seconds(t),
            )
            if outcome is AdmissionOutcome.SHED:
                node.admission.note_shed()
                self._finalize(st, t, "shed", shed_reason="admission")
                return
            # DELAY degrades to ADMIT: the node's batch queue is the
            # cluster's backpressure buffer
            node.admission.note_admitted(spec.name)
            st.admitted_node = nid
        if hedge:
            self._queued_hedge.add((st.key, nid))
        node.coalescer.push(req)
        if not hedge and self.hedge is not None:
            self._push(t + self.hedge.after_s, _HEDGE, st.key)
        self._pump(nid, t)

    def _pump(self, nid: int, t: float) -> None:
        node = self.nodes[nid]
        if node.removed:
            return
        while node.inflight < node.max_inflight and not node.coalescer.empty:
            batch = node.coalescer.take_greedy()
            if not batch:
                break
            self._submit_batch(node, batch, t)

    def _new_attempt(
        self,
        st: _ReqState,
        nid: int,
        t: float,
        *,
        hedge: bool,
        batch_size: int = 1,
    ) -> AttemptRecord:
        a = AttemptRecord(
            tenant=st.spec.name,
            req_id=st.req_id,
            attempt=len(st.attempts),
            node=nid,
            dispatch_time=t,
            hedge=hedge,
            batch_size=batch_size,
        )
        st.attempts.append(a)
        self.trace.attempts.append(a)
        return a

    def _submit_batch(self, node: ClusterNode, batch, t: float) -> None:
        nid = node.node_id
        if not node.reachable(t):
            # the dispatch RPC is blackholed (crash or partition): the
            # attempts never touch the engine and sit outstanding until
            # the failure detector resolves them
            for req in batch:
                st = self._reqs[(req.tenant, req.req_id)]
                hedge = (st.key, nid) in self._queued_hedge
                self._queued_hedge.discard((st.key, nid))
                a = self._new_attempt(
                    st, nid, t, hedge=hedge, batch_size=len(batch)
                )
                node.inflight += 1
                st.outstanding.append(a)
                self._node_outstanding[nid].append(a)
            return
        for req, res in node.submit_batch(list(batch), t):
            st = self._reqs[(req.tenant, req.req_id)]
            hedge = (st.key, nid) in self._queued_hedge
            self._queued_hedge.discard((st.key, nid))
            a = self._new_attempt(
                st, nid, t, hedge=hedge, batch_size=len(batch)
            )
            if isinstance(res, UnrecoverableTaskError):
                # the node answered with a failure (its device-level
                # retries are exhausted); eligible for failover
                a.outcome = "failed"
                a.resolved_time = t
                if not st.outstanding and not st.finalized:
                    st.failed_over = True
                    self._event(
                        "failover",
                        t,
                        node=nid,
                        tenant=st.spec.name,
                        req_id=st.req_id,
                        detail="node fault budget exhausted",
                    )
                    if self.metrics:
                        self.metrics.note_failover(st.spec.name)
                    self._schedule_retry(st, t)
                continue
            task = res
            a.start_time = task.start_time
            a.end_time = task.end_time
            a.task_seq = task.submit_seq
            node.inflight += 1
            st.outstanding.append(a)
            self._node_outstanding[nid].append(a)
            self._push(task.end_time, _COMPLETION, (nid, a, False))

    # -- completions ---------------------------------------------------------

    def _on_completion(
        self, t: float, nid: int, attempt: AttemptRecord, redelivery: bool
    ) -> None:
        node = self.nodes[nid]
        if attempt.outcome in ("applied", "duplicate"):
            return
        if not redelivery:
            if node.crashed_at is not None and attempt.end_time > node.crashed_at:
                # the node died mid-execution; nothing ever finished
                return
            if node.partitioned(t):
                t0, t1 = node.partition
                if math.isinf(t1):
                    return  # the response never gets out
                # completed on the node, delivered when the link heals
                self._push(t1, _COMPLETION, (nid, attempt, True))
                return
        elif node.crashed_at is not None and node.crashed_at <= t:
            return  # node died before the healed link could deliver
        self._deliver(node, attempt, t)

    def _release_slot(self, node: ClusterNode, attempt: AttemptRecord) -> None:
        pending = self._node_outstanding[node.node_id]
        if attempt in pending:
            pending.remove(attempt)
            node.inflight = max(node.inflight - 1, 0)

    def _deliver(
        self, node: ClusterNode, attempt: AttemptRecord, t: float
    ) -> None:
        st = self._reqs[(attempt.tenant, attempt.req_id)]
        attempt.deliver_time = t
        if math.isnan(attempt.resolved_time):
            attempt.resolved_time = t
        # else: the attempt was already resolved ("lost" at death
        # declaration) and this is a late redelivery — the outcome is
        # updated below but the resolution instant stands, so failover
        # retries dispatched after the declaration do not read as
        # overlapping.
        self._release_slot(node, attempt)
        if attempt in st.outstanding:
            st.outstanding.remove(attempt)
        if st.finalized:
            # exactly-once: the key was already completed (or failed) —
            # suppress, count, never double-apply
            attempt.outcome = "duplicate"
            self._event(
                "duplicate",
                t,
                node=node.node_id,
                tenant=st.spec.name,
                req_id=st.req_id,
                detail="hedge loser" if attempt.hedge else "late response",
            )
            if self.metrics:
                self.metrics.note_duplicate(st.spec.name)
        else:
            attempt.outcome = "applied"
            self._complete(st, attempt, t)
        self._maybe_finish_drain(node, t)
        self._pump(node.node_id, t)

    def _complete(
        self, st: _ReqState, attempt: AttemptRecord, t: float
    ) -> None:
        st.completed = True
        st.start_time = attempt.start_time
        st.end_time = t
        st.served_by = attempt.node
        st.batch_size = attempt.batch_size
        self._finalize(st, t, "completed")
        spec = st.spec
        if spec.rate_hz is None:
            issued = self._issued.get(st.tenant_idx, 0)
            if issued < spec.n_requests:
                self._issued[st.tenant_idx] = issued + 1
                self._push(
                    t + spec.think_time_s, _ARRIVAL, (st.tenant_idx, issued)
                )

    def _finalize(
        self, st: _ReqState, t: float, outcome: str, shed_reason: str = ""
    ) -> None:
        if st.finalized:
            return
        st.finalized = True
        self._finalized += 1
        if st.admitted_node is not None:
            self.nodes[st.admitted_node].admission.note_finished(st.spec.name)
        rec = ClusterRequestRecord(
            tenant=st.spec.name,
            req_id=st.req_id,
            priority=st.priority,
            codelet=st.codelet,
            arrival_time=st.arrival_s,
            outcome=outcome,
            shed_reason=shed_reason,
            dispatch_time=st.first_dispatch,
            start_time=st.start_time,
            end_time=st.end_time if outcome == "completed" else float("nan"),
            served_by=st.served_by,
            n_attempts=st.n_dispatches,
            n_hedges=st.n_hedges,
            failed_over=st.failed_over,
            batch_size=st.batch_size,
        )
        self.trace.requests.append(rec)
        if self.metrics:
            self.metrics.note_request(rec)

    # -- failure detection and failover --------------------------------------

    def _on_heartbeat(self, t: float, nid: int) -> None:
        node = self.nodes[nid]
        if not node.removed and node.alive(t):
            if not node.partitioned(t):
                self.detector.heartbeat(nid, t)
            if self._finalized < self._total_offered:
                self._push(t + self.heartbeat_s, _HEARTBEAT, nid)
        self._sweep(t)

    def _sweep(self, t: float) -> None:
        for nid, node in self.nodes.items():
            if node.removed:
                continue
            state = self.detector.state(nid, t)
            prev = self._belief[nid]
            if state is prev:
                continue
            self._belief[nid] = state
            if self.metrics:
                self.metrics.set_node_state(nid, state)
            phi = self.detector.phi(nid, t)
            if state is NodeState.DEAD:
                self._event("dead", t, node=nid, detail=f"phi={phi:.2f}")
                self._handle_death(nid, t)
            elif state is NodeState.SUSPECT and prev is NodeState.ALIVE:
                self._event("suspect", t, node=nid, detail=f"phi={phi:.2f}")
            elif state is NodeState.ALIVE:
                # heartbeats resumed (a healed partition): rejoin
                self._event("alive", t, node=nid)

    def _handle_death(self, nid: int, t: float) -> None:
        node = self.nodes[nid]
        # queued-but-never-dispatched requests re-route immediately
        queued = list(node.coalescer.iter_requests())
        node.coalescer = Coalescer(node.coalescer.policy)
        for req in queued:
            st = self._reqs[(req.tenant, req.req_id)]
            self._queued_hedge.discard((st.key, nid))
            if st.finalized:
                continue
            self._failover(st, nid, t, detail="requeued from dead node")
        # outstanding attempts (blackholed or lost mid-execution) fail over
        for a in list(self._node_outstanding[nid]):
            self._node_outstanding[nid].remove(a)
            st = self._reqs[(a.tenant, a.req_id)]
            a.outcome = "lost"
            a.resolved_time = t
            if a in st.outstanding:
                st.outstanding.remove(a)
            if st.finalized or st.outstanding:
                continue  # completed already, or a live hedge still races
            self._failover(st, nid, t, detail="outstanding on dead node")
        node.inflight = 0
        self._update_brownout(t)

    def _failover(
        self, st: _ReqState, nid: int, t: float, detail: str
    ) -> None:
        st.failed_over = True
        self._event(
            "failover",
            t,
            node=nid,
            tenant=st.spec.name,
            req_id=st.req_id,
            detail=detail,
        )
        if self.metrics:
            self.metrics.note_failover(st.spec.name)
        self._schedule_retry(st, t)

    def _schedule_retry(self, st: _ReqState, t: float) -> None:
        n = st.n_dispatches  # dispatches so far; the retry is n + 1
        if n > self.failover.max_retries:
            self._finalize(st, t, "failed")
            return
        u = None
        if self.failover.backoff_jitter > 0.0:
            u = float(
                np.random.default_rng(
                    (self.seed, 0xFA11, st.tenant_idx, st.req_id, n)
                ).random()
            )
        self._push(t + self.failover.backoff(n, u), _RETRY, st.key)
        if self.metrics:
            self.metrics.note_retry(st.spec.name)

    def _on_retry(self, t: float, key: tuple[str, int]) -> None:
        st = self._reqs[key]
        if st.finalized or st.outstanding:
            return
        nid = self._route(st.spec.name, st.tried)
        if nid is None:
            self._finalize(st, t, "failed")
            return
        self._dispatch(st, nid, t, hedge=False)

    def _on_hedge(self, t: float, key: tuple[str, int]) -> None:
        st = self._reqs[key]
        if st.finalized or not st.outstanding:
            return  # completed, or mid-failover (the retry path owns it)
        if self.hedge is None or st.n_hedges >= self.hedge.max_hedges:
            return
        nid = self._route(st.spec.name, st.tried)
        if nid is None:
            return
        self._event(
            "hedge", t, node=nid, tenant=st.spec.name, req_id=st.req_id
        )
        if self.metrics:
            self.metrics.note_hedge(st.spec.name)
        self._dispatch(st, nid, t, hedge=True)

    # -- control plane -------------------------------------------------------

    def _on_control(self, t: float, cmd: tuple) -> None:
        kind = cmd[0]
        nid = cmd[1]
        node = self.nodes[nid]
        if kind == "crash":
            node.crashed_at = t
            self._event("crash", t, node=nid)
        elif kind == "slow":
            factor = cmd[2]
            node.apply_slowdown(t, factor)
            self._event("slowdown", t, node=nid, detail=f"x{factor:g}")
        elif kind == "partition":
            node.partition = (cmd[2], cmd[3])
            self._event(
                "partition",
                t,
                node=nid,
                detail=f"until t={cmd[3]:.6f}"
                if math.isfinite(cmd[3])
                else "never heals",
            )
        elif kind == "heal":
            self._event("heal", t, node=nid)
            self._pump(nid, t)
        elif kind == "drain":
            self._start_drain(node, t)

    def _start_drain(self, node: ClusterNode, t: float) -> None:
        if node.removed or node.draining:
            return
        node.draining = True
        self._event("drain_start", t, node=node.node_id)
        queued = list(node.coalescer.iter_requests())
        node.coalescer = Coalescer(node.coalescer.policy)
        for req in queued:
            st = self._reqs[(req.tenant, req.req_id)]
            self._queued_hedge.discard((st.key, node.node_id))
            if st.finalized:
                continue
            nxt = self._route(st.spec.name, st.tried)
            if nxt is None:
                self._finalize(st, t, "failed")
            else:
                self._dispatch(st, nxt, t, hedge=False)
        self._maybe_finish_drain(node, t)

    def _maybe_finish_drain(self, node: ClusterNode, t: float) -> None:
        if (
            node.draining
            and not node.removed
            and node.inflight == 0
            and node.coalescer.empty
        ):
            node.removed = True
            self.ring.remove(node.node_id)
            self._event("drain_done", t, node=node.node_id)

    # -- brown-out -----------------------------------------------------------

    def _update_brownout(self, t: float) -> None:
        if self.brownout is None or self._shed_priority is None:
            return
        capacity = 0
        load = 0
        for nid, node in self.nodes.items():
            if node.removed or self._belief[nid] is NodeState.DEAD:
                continue
            capacity += node.max_inflight
            load += node.queue_depth()
        pressure = load / capacity if capacity else float("inf")
        if not self._brownout_active and pressure >= self.brownout.high_water:
            self._brownout_active = True
            self._event("brownout_on", t, detail=f"pressure={pressure:.2f}")
            if self.metrics:
                self.metrics.set_brownout(True)
        elif self._brownout_active and pressure <= self.brownout.low_water:
            self._brownout_active = False
            self._event("brownout_off", t, detail=f"pressure={pressure:.2f}")
            if self.metrics:
                self.metrics.set_brownout(False)

    # -- teardown ------------------------------------------------------------

    def _finalize_leftovers(self) -> None:
        """Resolve requests still open when the event heap drains (every
        replica dead, or a never-healing partition ate the response)."""
        t = self._now
        for st in self._reqs.values():
            if st.finalized:
                continue
            for a in list(st.outstanding):
                a.outcome = "lost"
                a.resolved_time = t
                self._release_slot(self.nodes[a.node], a)
            st.outstanding.clear()
            self._finalize(st, t, "failed")
