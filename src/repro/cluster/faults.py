"""Node-level fault plans: crashes, stragglers, partitions.

PR 1's :class:`~repro.hw.faults.FaultModel` injects *device-level*
faults inside one machine (kernel faults, transfer corruption, device
loss).  A cluster adds a coarser failure domain: the whole node.  The
:class:`NodeFaultModel` scripts three node-level fault kinds against
the cluster's global virtual clock:

- **crash** — the node stops executing at ``t`` and is silent forever:
  no heartbeats, no responses, nothing dispatched to it ever runs.
- **straggler slowdown** — from ``t`` on, kernels dispatched to the
  node take ``factor`` times longer (a thermally throttled or
  oversubscribed box: alive, reachable, slow — the case hedging exists
  for).
- **partition** — between ``t0`` and ``t1`` the node is unreachable:
  heartbeats and responses are dropped, dispatches are blackholed, but
  work already on the node keeps executing and its completions are
  delivered when the partition heals (the duplicate-suppression path).

Everything is scripted (or derived from a seed via
:func:`chaos_schedule`), never drawn from a shared RNG mid-run, so a
chaos run is exactly reproducible — the property the same-seed digest
check in ``experiments/cluster.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np


@dataclass(frozen=True)
class NodeFaultModel:
    """Scripted node-level fault schedule for one cluster run."""

    #: node id -> virtual time the node crashes (silent stop)
    crash_at: Mapping[int, float] = field(default_factory=dict)
    #: node id -> (virtual time, slowdown factor >= 1)
    slow_at: Mapping[int, tuple[float, float]] = field(default_factory=dict)
    #: node id -> (start, heal) of an unreachability window; ``heal``
    #: may be ``inf`` for a partition that never heals
    partition_at: Mapping[int, tuple[float, float]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "crash_at", dict(self.crash_at))
        object.__setattr__(
            self,
            "slow_at",
            {n: (float(t), float(f)) for n, (t, f) in self.slow_at.items()},
        )
        object.__setattr__(
            self,
            "partition_at",
            {
                n: (float(t0), float(t1))
                for n, (t0, t1) in self.partition_at.items()
            },
        )
        for node, t in self.crash_at.items():
            if t < 0:
                raise ValueError(f"crash_at[{node}] must be >= 0, got {t}")
        for node, (t, f) in self.slow_at.items():
            if t < 0:
                raise ValueError(f"slow_at[{node}] time must be >= 0, got {t}")
            if f < 1.0:
                raise ValueError(
                    f"slow_at[{node}] factor must be >= 1, got {f}"
                )
        for node, (t0, t1) in self.partition_at.items():
            if t0 < 0 or t1 < t0:
                raise ValueError(
                    f"partition_at[{node}] must satisfy 0 <= start <= heal, "
                    f"got ({t0}, {t1})"
                )

    @property
    def enabled(self) -> bool:
        return bool(self.crash_at or self.slow_at or self.partition_at)

    def validate_for(self, n_nodes: int) -> None:
        """Reject schedules naming nodes the cluster does not have."""
        for label, mapping in (
            ("crash_at", self.crash_at),
            ("slow_at", self.slow_at),
            ("partition_at", self.partition_at),
        ):
            for node in mapping:
                if not 0 <= node < n_nodes:
                    raise ValueError(
                        f"{label} names node {node}, but the cluster has "
                        f"nodes 0..{n_nodes - 1}"
                    )


def chaos_schedule(
    n_nodes: int,
    *,
    at: float,
    kill: int = 1,
    slow: int = 0,
    slow_factor: float = 4.0,
    partition: int = 0,
    partition_for: float = 0.0,
    stagger_s: float = 0.0,
    seed: int = 0,
) -> NodeFaultModel:
    """Derive a deterministic chaos plan from a seed.

    Victims are distinct nodes drawn from a seeded permutation (crashes
    first, then stragglers, then partitions), each fault ``stagger_s``
    after the previous so the control plane handles them as separate
    incidents.  Raises if more victims are requested than nodes exist.
    """
    if kill + slow + partition > n_nodes:
        raise ValueError(
            f"{kill + slow + partition} victims requested but the cluster "
            f"has only {n_nodes} nodes"
        )
    if at < 0:
        raise ValueError(f"at must be >= 0, got {at}")
    order = np.random.default_rng((int(seed), 0xC405)).permutation(n_nodes)
    victims = [int(v) for v in order]
    t = float(at)
    crash_at: dict[int, float] = {}
    slow_at: dict[int, tuple[float, float]] = {}
    partition_at: dict[int, tuple[float, float]] = {}
    for _ in range(kill):
        crash_at[victims.pop(0)] = t
        t += stagger_s
    for _ in range(slow):
        slow_at[victims.pop(0)] = (t, slow_factor)
        t += stagger_s
    for _ in range(partition):
        partition_at[victims.pop(0)] = (t, t + partition_for)
        t += stagger_s
    return NodeFaultModel(
        crash_at=crash_at, slow_at=slow_at, partition_at=partition_at
    )
