"""Cluster-scale serving: a simulated multi-node deployment of the
composition server with failure detection, tenant failover, hedging and
graceful brown-out.

Each :class:`~repro.cluster.node.ClusterNode` is a full single-machine
runtime (engine + machine description + perf-model store + device-level
fault model); the :class:`~repro.cluster.router.Cluster` facade routes
tenants across them with a consistent-hash ring, detects node failures
with a phi-accrual heartbeat detector, and retries/hedges requests
under an exactly-once completion guarantee.  Chaos plans are scripted
via :class:`~repro.cluster.faults.NodeFaultModel` (or derived from a
seed with :func:`~repro.cluster.faults.chaos_schedule`), and everything
is deterministic: same seed, same chaos, byte-identical trace digest.

>>> from repro.cluster import Cluster, ClusterTenant, chaos_schedule
>>> tenants = [ClusterTenant(name="t0", workload="sgemm", n_requests=50,
...                          priority=2, slo_ms=50.0)]
>>> cluster = Cluster(4, tenants, seed=7,
...                   node_faults=chaos_schedule(4, at=0.05, kill=1))
>>> trace = cluster.run()
"""

from repro.cluster.detector import NodeState, PhiAccrualDetector
from repro.cluster.faults import NodeFaultModel, chaos_schedule
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import ClusterNode
from repro.cluster.records import (
    ATTEMPT_OUTCOMES,
    CLUSTER_EVENT_KINDS,
    REQUEST_OUTCOMES,
    AttemptRecord,
    ClusterEventRecord,
    ClusterRequestRecord,
    ClusterTrace,
    completed_latencies,
)
from repro.cluster.ring import HashRing
from repro.cluster.router import (
    BrownoutPolicy,
    Cluster,
    ClusterTenant,
    HedgePolicy,
)
from repro.cluster.slo import (
    RecoveryStats,
    cluster_slo_report,
    recovery_stats,
    windowed_p99,
)

__all__ = [
    "ATTEMPT_OUTCOMES",
    "CLUSTER_EVENT_KINDS",
    "REQUEST_OUTCOMES",
    "AttemptRecord",
    "BrownoutPolicy",
    "Cluster",
    "ClusterEventRecord",
    "ClusterMetrics",
    "ClusterNode",
    "ClusterRequestRecord",
    "ClusterTenant",
    "ClusterTrace",
    "HashRing",
    "HedgePolicy",
    "NodeFaultModel",
    "NodeState",
    "PhiAccrualDetector",
    "RecoveryStats",
    "chaos_schedule",
    "cluster_slo_report",
    "completed_latencies",
    "recovery_stats",
    "windowed_p99",
]
