"""Phi-accrual failure detection over heartbeats.

Every node emits a heartbeat each ``interval_s`` of virtual time;
crashed nodes fall silent and partitioned nodes' beats are dropped in
flight.  Instead of a binary timeout, the detector accrues *suspicion*:
``phi(node, now)`` is ``-log10`` of the probability that a healthy node
would still be silent after the observed gap, under an exponential
model of heartbeat interarrivals whose mean is tracked per node with an
exponentially weighted moving average.  phi rises continuously with
silence, so the cluster can act at two thresholds: ``suspect_phi``
(stop preferring the node for new work) and ``dead_phi`` (declare it
dead and fail over its outstanding requests).  A declared-dead node
whose beats resume (a healed partition) drops back below threshold and
transitions to ALIVE — failover must therefore tolerate the "dead" node
answering later, which is what idempotent completion keys are for.
"""

from __future__ import annotations

import math
from enum import Enum


class NodeState(Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


class PhiAccrualDetector:
    """Suspicion-accruing heartbeat failure detector."""

    def __init__(
        self,
        interval_s: float,
        suspect_phi: float = 1.0,
        dead_phi: float = 2.0,
        ewma_alpha: float = 0.2,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if not 0 < suspect_phi <= dead_phi:
            raise ValueError(
                f"need 0 < suspect_phi <= dead_phi, got "
                f"({suspect_phi}, {dead_phi})"
            )
        if not 0 < ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.interval_s = float(interval_s)
        self.suspect_phi = float(suspect_phi)
        self.dead_phi = float(dead_phi)
        self.ewma_alpha = float(ewma_alpha)
        #: node -> time of last heartbeat seen
        self._last: dict[int, float] = {}
        #: node -> EWMA of heartbeat interarrival
        self._mean: dict[int, float] = {}

    def register(self, node: int, now: float) -> None:
        """Start monitoring ``node``; the mean starts at the nominal
        interval so the very first silence is judged sanely."""
        self._last[node] = now
        self._mean[node] = self.interval_s

    def heartbeat(self, node: int, now: float) -> None:
        if node not in self._last:
            self.register(node, now)
            return
        gap = max(now - self._last[node], 0.0)
        a = self.ewma_alpha
        self._mean[node] = (1 - a) * self._mean[node] + a * gap
        self._last[node] = now

    def phi(self, node: int, now: float) -> float:
        """Suspicion level: ``-log10 P(silence >= observed | alive)``."""
        if node not in self._last:
            return 0.0
        elapsed = max(now - self._last[node], 0.0)
        mean = max(self._mean[node], 1e-12)
        # exponential interarrival model: P(X >= t) = exp(-t / mean)
        return elapsed / (mean * math.log(10.0))

    def state(self, node: int, now: float) -> NodeState:
        p = self.phi(node, now)
        if p >= self.dead_phi:
            return NodeState.DEAD
        if p >= self.suspect_phi:
            return NodeState.SUSPECT
        return NodeState.ALIVE

    def silence_to_die_s(self, node: int) -> float:
        """Silence needed for ``phi`` to reach ``dead_phi`` — the
        detection latency bound the experiments report against."""
        mean = self._mean.get(node, self.interval_s)
        return self.dead_phi * mean * math.log(10.0)
