"""Cluster-level SLO aggregation and recovery-time measurement.

Per-tenant SLO accounting reuses the single-machine serving layer's
machinery verbatim: each :class:`ClusterRequestRecord` projects onto a
:class:`~repro.runtime.stats.RequestRecord`, so
:func:`repro.serve.slo.tenant_slo` aggregates cluster traffic exactly
like one server's — the cluster report is the same shape operators
already read, just fed from N nodes.

The chaos-specific addition is the *recovery-time* measurement: after a
node crash, tail latency spikes (failed-over requests pay detection
latency plus retry backoff) and then settles as the survivors absorb
the traffic.  :func:`recovery_stats` computes a sliding-window p99
series over completion times and reports when — measured from the
crash instant — the tail returned under the tenants' latency budget
*and stayed there*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.records import ClusterTrace, completed_latencies
from repro.serve.slo import SloReport, percentile, tenant_slo


def cluster_slo_report(
    trace: ClusterTrace, window_s: float | None = None
) -> SloReport:
    """Per-tenant SLO report across all nodes of a cluster run.

    ``window_s`` defaults to the offered-load window (first arrival to
    the later of last arrival and last completion), matching
    :func:`repro.serve.slo.slo_report`.
    """
    if window_s is None:
        if trace.requests:
            t0 = min(r.arrival_time for r in trace.requests)
            t1 = max(
                [r.arrival_time for r in trace.requests]
                + [r.end_time for r in trace.requests if r.completed]
            )
            window_s = max(t1 - t0, 0.0)
        else:
            window_s = 0.0
    report = SloReport(window_s=window_s)
    for tenant in trace.tenants():
        records = [r.as_request_record() for r in trace.requests_for(tenant)]
        report.tenants.append(tenant_slo(tenant, records, window_s))
    return report


def windowed_p99(
    trace: ClusterTrace,
    *,
    window_s: float,
    step_s: float,
    tenants: "set[str] | None" = None,
) -> list[tuple[float, float]]:
    """Sliding-window p99 latency series: ``(t, p99 over completions in
    (t - window_s, t])`` sampled every ``step_s``.  Windows with no
    completions yield NaN (plotted as gaps, skipped by recovery logic).
    """
    if window_s <= 0 or step_s <= 0:
        raise ValueError("window_s and step_s must be > 0")
    pairs = completed_latencies(trace, tenants)
    if not pairs:
        return []
    t_end = pairs[-1][0]
    out: list[tuple[float, float]] = []
    lo = 0
    hi = 0
    n_steps = int(math.ceil(t_end / step_s)) + 1
    for k in range(1, n_steps + 1):
        t = k * step_s
        while hi < len(pairs) and pairs[hi][0] <= t:
            hi += 1
        while lo < hi and pairs[lo][0] <= t - window_s:
            lo += 1
        lat = [latency for _, latency in pairs[lo:hi]]
        out.append((t, percentile(lat, 99)))
        if t >= t_end:
            break
    return out


@dataclass(frozen=True)
class RecoveryStats:
    """How the tail behaved around a fault, for one tenant set."""

    #: the fault instant recovery is measured from
    fault_time: float
    #: the latency budget (seconds) the tail is judged against
    slo_s: float
    #: sliding-window p99 at the last sample before the fault
    p99_before_s: float
    #: worst sliding-window p99 at/after the fault
    p99_peak_s: float
    #: earliest time >= fault_time from which p99 stays under budget
    #: (inf if it never settles)
    recovered_at: float
    #: steady-state p99 after recovery (last sample; NaN if never)
    p99_after_s: float

    @property
    def recovery_s(self) -> float:
        """Seconds from the fault until the tail is durably back under
        budget — the headline the chaos experiment reports."""
        return self.recovered_at - self.fault_time

    @property
    def recovered(self) -> bool:
        return math.isfinite(self.recovered_at)

    def to_dict(self) -> dict:
        return {
            "fault_time": self.fault_time,
            "slo_ms": self.slo_s * 1e3,
            "p99_before_ms": self.p99_before_s * 1e3,
            "p99_peak_ms": self.p99_peak_s * 1e3,
            "recovered_at": self.recovered_at,
            "recovery_ms": self.recovery_s * 1e3,
            "recovered": self.recovered,
            "p99_after_ms": self.p99_after_s * 1e3,
        }


def recovery_stats(
    trace: ClusterTrace,
    *,
    fault_time: float,
    slo_s: float,
    window_s: float,
    step_s: float,
    tenants: "set[str] | None" = None,
) -> RecoveryStats:
    """Measure tail recovery after a fault.

    ``recovered_at`` is the earliest sample time at/after ``fault_time``
    such that every later sample's windowed p99 is under ``slo_s`` — a
    sustained recovery, not the first lucky quiet window.  Empty windows
    (NaN) are treated as healthy: no completions means no tail.
    """
    series = windowed_p99(
        trace, window_s=window_s, step_s=step_s, tenants=tenants
    )
    before = [p for t, p in series if t < fault_time]
    after = [(t, p) for t, p in series if t >= fault_time]
    p99_before = before[-1] if before else float("nan")
    finite_after = [p for _, p in after if not math.isnan(p)]
    p99_peak = max(finite_after) if finite_after else float("nan")
    recovered_at = float("inf")
    # scan backwards: the recovery point is where the "all later samples
    # under budget" suffix begins
    for t, p in reversed(after):
        if math.isnan(p) or p <= slo_s:
            recovered_at = t
        else:
            break
    p99_after = finite_after[-1] if finite_after else float("nan")
    return RecoveryStats(
        fault_time=fault_time,
        slo_s=slo_s,
        p99_before_s=p99_before,
        p99_peak_s=p99_peak,
        recovered_at=recovered_at,
        p99_after_s=p99_after,
    )
