"""One cluster node: a full composition runtime behind an RPC boundary.

Each node owns the whole single-machine stack from the earlier PRs —
its own machine description, engine, perf-model (optionally warmed from
a per-node :class:`~repro.tuning.store.PerfModelStore` directory),
device-level :class:`~repro.hw.faults.FaultModel` and
:class:`~repro.runtime.engine.RecoveryPolicy` — plus the serving-layer
building blocks the router drives remotely: an admission controller and
a coalescing batch queue.  The router never reaches into another node's
engine; everything crosses the (simulated) network as a dispatch or a
completion, which is what makes crashes and partitions meaningful.

Ground-truth fault state lives here (``crashed_at``, ``partition``,
``slowdown``): the *router* only ever learns about it through the
failure detector.  A crashed node executes nothing after its crash
instant — dispatches that arrive later are blackholed without touching
the engine, which is exactly the invariant
``cluster.dead-node-execution`` checks after the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import UnrecoverableTaskError
from repro.runtime.runtime import Runtime
from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.batching import BatchPolicy, Coalescer
from repro.serve.client import WORKLOADS, Request, TenantSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.faults import FaultModel
    from repro.hw.description import Machine
    from repro.runtime.engine import RecoveryPolicy
    from repro.runtime.task import Task
    from repro.tuning.store import PerfModelStore


class _ScaledNoise:
    """Mutable straggler wrapper around a node's noise model.

    The engine computes task timelines eagerly at dispatch, so a
    slowdown cannot rewrite history — but scaling every perturbation
    from the slowdown instant on makes all *later* dispatches slower,
    which is how a straggling node degrades in a discrete-event world.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.scale = 1.0

    def perturb(self, duration: float) -> float:
        return self._inner.perturb(duration) * self.scale


class ClusterNode:
    """One simulated serving node addressed by the cluster router."""

    def __init__(
        self,
        node_id: int,
        machine: "Machine",
        *,
        scheduler: str = "dmda",
        seed: int = 0,
        noise_sigma: float = 0.0,
        run_kernels: bool = False,
        faults: "FaultModel | None" = None,
        recovery: "RecoveryPolicy | None" = None,
        store: "PerfModelStore | None" = None,
        admission: AdmissionPolicy | None = None,
        batching: BatchPolicy | None = None,
        max_inflight: int = 4,
        dispatch_overhead_s: float = 5e-6,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.node_id = node_id
        self.runtime = Runtime(
            machine,
            scheduler=scheduler,
            seed=seed,
            noise_sigma=noise_sigma,
            run_kernels=run_kernels,
            faults=faults,
            recovery=recovery,
            store=store,
            check=False,
        )
        self.engine = self.runtime.engine
        # install the straggler hook around whatever noise the engine built
        self.engine.noise = _ScaledNoise(self.engine.noise)
        self.admission = AdmissionController(admission)
        self.coalescer = Coalescer(batching)
        self.max_inflight = int(max_inflight)
        self.dispatch_overhead_s = float(dispatch_overhead_s)
        #: router-visible occupied dispatch slots (blackholed dispatches
        #: hold a slot until the failure detector resolves them)
        self.inflight = 0
        #: lazily created per-tenant sessions (shared read-only inputs)
        self._sessions: dict[str, object] = {}
        # -- ground-truth fault state (the router must not read these;
        #    it learns through heartbeats) --------------------------------
        self.crashed_at: float | None = None
        self.partition: tuple[float, float] | None = None
        self.slowdown: tuple[float, float] | None = None
        # -- membership state --------------------------------------------
        self.draining = False
        self.removed = False
        self._closed = False

    # -- ground truth --------------------------------------------------------

    def alive(self, t: float) -> bool:
        return self.crashed_at is None or t < self.crashed_at

    def partitioned(self, t: float) -> bool:
        if self.partition is None:
            return False
        t0, t1 = self.partition
        return t0 <= t < t1

    def reachable(self, t: float) -> bool:
        return self.alive(t) and not self.partitioned(t)

    def apply_slowdown(self, t: float, factor: float) -> None:
        self.slowdown = (t, factor)
        self.engine.noise.scale = factor

    # -- request materialization --------------------------------------------

    def make_request(
        self, spec: TenantSpec, req_id: int, arrival_s: float
    ) -> Request:
        """Materialize the tenant's invocation against *this* node's
        runtime (each node holds its own copy of the shared inputs, so
        a failed-over request re-binds to the target node's session)."""
        session = self._sessions.get(spec.name)
        if session is None:
            session = WORKLOADS[spec.workload](self.runtime, spec)
            self._sessions[spec.name] = session
        return session.make_request(req_id, arrival_s)

    # -- execution -----------------------------------------------------------

    def submit_batch(
        self, batch: list[Request], t: float
    ) -> "list[tuple[Request, Task | UnrecoverableTaskError]]":
        """Execute a coalesced batch on the node's engine at global time
        ``t``; the per-batch dispatch overhead serializes on the node's
        host clock exactly like the single-machine server's.  A request
        whose device-level fault recovery is exhausted yields its
        :class:`UnrecoverableTaskError` instead of a task (the node
        answers the RPC with a failure; the router may fail it over)."""
        clock = self.engine.clock
        clock.advance_to(t)
        clock.advance(self.dispatch_overhead_s)
        out: list[tuple[Request, object]] = []
        for req in batch:
            try:
                out.append((req, req.submit(self.runtime)))
            except UnrecoverableTaskError as err:
                out.append((req, err))
        return out

    def backlog_seconds(self, t: float) -> float:
        return self.engine.backlog_seconds(t)

    def queue_depth(self) -> int:
        return self.inflight + len(self.coalescer)

    def close(self) -> None:
        """Shut the node's runtime down (persists its perf-model store)."""
        if not self._closed:
            self._closed = True
            self.runtime.shutdown()
