"""Cluster-level metrics on the live observability layer.

Bridges the cluster router's control plane into the ``repro.obs``
metrics registry so the same scrape/export path that serves per-node
engine metrics also exposes the distributed-systems signals: failovers,
hedges, suppressed duplicates, per-node membership/suspicion state and
the brown-out gate.  Pass ``metrics=True`` (or a :class:`ClusterMetrics`
wrapping a shared registry) to :class:`~repro.cluster.router.Cluster`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.cluster.detector import NodeState
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.records import ClusterRequestRecord

#: NodeState -> numeric gauge value (0 alive, 1 suspect, 2 dead)
_STATE_VALUE = {
    NodeState.ALIVE: 0.0,
    NodeState.SUSPECT: 1.0,
    NodeState.DEAD: 2.0,
}


class ClusterMetrics:
    """The cluster router's metric surface."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry()
        r = self.registry
        self.requests = r.counter(
            "cluster_requests_total",
            help="finalized requests by tenant and outcome",
            labelnames=("tenant", "outcome"),
        )
        self.failovers = r.counter(
            "cluster_failovers_total",
            help="requests rerouted off a node declared dead",
            labelnames=("tenant",),
        )
        self.retries = r.counter(
            "cluster_retries_total",
            help="cluster-level retry dispatches scheduled",
            labelnames=("tenant",),
        )
        self.hedges = r.counter(
            "cluster_hedges_total",
            help="latency hedges dispatched to a second replica",
            labelnames=("tenant",),
        )
        self.duplicates = r.counter(
            "cluster_duplicates_suppressed_total",
            help="completions suppressed by the exactly-once gate",
            labelnames=("tenant",),
        )
        self.latency = r.histogram(
            "cluster_request_latency_seconds",
            help="end-to-end latency of completed requests",
            unit="s",
            labelnames=("tenant",),
        )
        self.node_state = r.gauge(
            "cluster_node_state",
            help="believed node state (0 alive, 1 suspect, 2 dead)",
            labelnames=("node",),
        )
        self.brownout = r.gauge(
            "cluster_brownout_active",
            help="1 while the cluster sheds its lowest priority class",
        )

    # -- router hooks --------------------------------------------------------

    def note_request(self, rec: "ClusterRequestRecord") -> None:
        self.requests.inc(1, tenant=rec.tenant, outcome=rec.outcome)
        if rec.completed and not math.isnan(rec.latency):
            self.latency.observe(rec.latency, tenant=rec.tenant)

    def note_failover(self, tenant: str) -> None:
        self.failovers.inc(1, tenant=tenant)

    def note_retry(self, tenant: str) -> None:
        self.retries.inc(1, tenant=tenant)

    def note_hedge(self, tenant: str) -> None:
        self.hedges.inc(1, tenant=tenant)

    def note_duplicate(self, tenant: str) -> None:
        self.duplicates.inc(1, tenant=tenant)

    def set_node_state(self, node: int, state: NodeState) -> None:
        self.node_state.set(_STATE_VALUE[state], node=str(node))

    def set_brownout(self, active: bool) -> None:
        self.brownout.set(1.0 if active else 0.0)
