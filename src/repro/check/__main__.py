"""``python -m repro.check`` — validate saved traces offline.

Reads one or more lossless trace JSON files (written by
``Session.save_trace_json`` / ``repro.runtime.trace_export
.save_trace_json``; the machine summary travels inside the file) and
reports every invariant violation.  Exit status 0 when all traces are
legal, 1 when any violation is found, 2 on unreadable input.
"""

from __future__ import annotations

import argparse
import sys

from repro.check.invariants import check_trace
from repro.errors import PeppherError
from repro.runtime.trace_export import load_trace_json


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="check saved execution traces against run invariants",
    )
    parser.add_argument(
        "traces", nargs="+", metavar="TRACE.json",
        help="lossless trace JSON file(s) to validate",
    )
    parser.add_argument(
        "--max-violations", type=int, default=20, metavar="N",
        help="print at most N violations per trace (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    status = 0
    for path in args.traces:
        try:
            trace, info = load_trace_json(path)
        except (OSError, ValueError, KeyError, PeppherError) as exc:
            print(f"{path}: unreadable trace: {exc}", file=sys.stderr)
            return 2
        violations = check_trace(trace, info)
        n_records = (
            len(trace.tasks)
            + len(trace.transfers)
            + len(trace.evictions)
            + len(trace.accesses)
            + len(trace.faults)
            + len(trace.requests)
        )
        if not violations:
            print(
                f"{path}: OK — {n_records} records on machine "
                f"{info.name!r}, no invariant violations"
            )
            continue
        status = 1
        print(
            f"{path}: {len(violations)} invariant violation(s) in "
            f"{n_records} records on machine {info.name!r}:",
            file=sys.stderr,
        )
        for v in violations[: args.max_violations]:
            print(f"  - {v}", file=sys.stderr)
        if len(violations) > args.max_violations:
            print(
                f"  ... and {len(violations) - args.max_violations} more",
                file=sys.stderr,
            )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
