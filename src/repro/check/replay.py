"""Deterministic replay of scheduling decisions.

Recording wraps any scheduler and logs every ``choose`` call — task
codelet, chosen variant, worker ids — in call order into a compact,
JSON-serializable :class:`DecisionLog`.  The ``replay`` scheduler
re-executes such a log verbatim: run the same workload again with it and
the engine makes bit-identical placements, so the resulting trace (after
canonical renumbering) must equal the recorded one exactly.  Divergence
— a different task stream, an unknown variant, an exhausted log — raises
:class:`~repro.errors.ReplayDivergence` instead of silently improvising.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import ReplayDivergence
from repro.runtime.schedulers.base import Decision, EngineView, Scheduler
from repro.runtime.stats import ExecutionTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task

#: format marker of saved decision logs
LOG_FORMAT = "repro-decisions"
LOG_VERSION = 1


@dataclass(frozen=True)
class DecisionRecord:
    """One recorded ``Scheduler.choose`` outcome."""

    codelet: str
    variant: str
    worker_ids: tuple[int, ...]


class DecisionLog:
    """Ordered list of scheduling decisions with JSON round-trip."""

    def __init__(self, entries: Iterable[DecisionRecord] = ()) -> None:
        self.entries: list[DecisionRecord] = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[DecisionRecord]:
        return iter(self.entries)

    def append(self, entry: DecisionRecord) -> None:
        self.entries.append(entry)

    def to_jsonable(self) -> dict:
        return {
            "format": LOG_FORMAT,
            "version": LOG_VERSION,
            "decisions": [asdict(e) for e in self.entries],
        }

    @classmethod
    def from_jsonable(cls, doc: dict) -> "DecisionLog":
        if doc.get("format") != LOG_FORMAT:
            raise ReplayDivergence(
                "replay.log-format",
                "not a decision-log document (missing format marker)",
            )
        if doc.get("version") != LOG_VERSION:
            raise ReplayDivergence(
                "replay.log-version",
                f"decision-log version {doc.get('version')!r} not supported "
                f"(this build reads version {LOG_VERSION})",
            )
        return cls(
            DecisionRecord(
                codelet=e["codelet"],
                variant=e["variant"],
                worker_ids=tuple(e["worker_ids"]),
            )
            for e in doc.get("decisions", [])
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_jsonable(), indent=1))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DecisionLog":
        return cls.from_jsonable(json.loads(Path(path).read_text()))


class RecordingScheduler(Scheduler):
    """Wrap any scheduler and log every decision it makes."""

    name = "recording"

    def __init__(self, inner: Scheduler, log: DecisionLog | None = None) -> None:
        self.inner = inner
        self.log = log if log is not None else DecisionLog()

    def choose(self, task: "Task", view: EngineView) -> Decision:
        decision = self.inner.choose(task, view)
        self.log.append(
            DecisionRecord(
                codelet=task.codelet.name,
                variant=decision.variant.name,
                worker_ids=tuple(u.unit_id for u in decision.workers),
            )
        )
        return decision


class DecisionRecorder:
    """Record scheduling decisions from the engine's typed event stream.

    The engine emits one ``schedule`` event per ``Scheduler.choose``
    call (fault-recovery retries included), so subscribing this observer
    yields exactly the decision stream :class:`RecordingScheduler` used
    to capture by wrapping the policy — without touching the scheduler
    object at all.  ``Runtime(record=True)`` attaches one automatically.
    """

    def __init__(self, log: DecisionLog | None = None) -> None:
        self.log = log if log is not None else DecisionLog()

    def on_schedule(self, event) -> None:
        self.log.append(
            DecisionRecord(
                codelet=event.task.codelet.name,
                variant=event.decision.variant.name,
                worker_ids=tuple(
                    u.unit_id for u in event.decision.workers
                ),
            )
        )

    def attach(self, engine) -> "DecisionRecorder":
        """Subscribe to ``engine``'s event stream; returns self."""
        engine.events.attach(self)
        return self


class ReplayScheduler(Scheduler):
    """Re-execute a recorded decision log, one entry per ``choose``.

    Constructible without a log (the policy registry instantiates every
    policy with no arguments); actually scheduling against an empty log
    raises :class:`ReplayDivergence` immediately, with a hint to load
    one.  Assign :attr:`log` (or pass it) before running a workload.

    To replay a run recorded under a bulk policy (``"lookahead"``), pass
    the recorded scheduler's ``window_size``: the replay must buffer and
    flush windows at the same points, or task commit order — and with it
    the engine's event tie-breaking — diverges from the recording.  The
    planning step itself is a no-op; ``choose`` pops the log in commit
    order, which equals the recorded flush order.
    """

    name = "replay"

    def __init__(
        self,
        log: DecisionLog | None = None,
        window_size: int | None = None,
    ) -> None:
        self.log = log if log is not None else DecisionLog()
        self._cursor = 0
        if window_size is not None:
            self.is_bulk = True
            self.window_size = int(window_size)

    def plan_window(self, tasks, view) -> None:
        """Bulk-mode hook: nothing to plan, the log already decides."""

    def choose(self, task: "Task", view: EngineView) -> Decision:
        if self._cursor >= len(self.log.entries):
            raise ReplayDivergence(
                "replay.log-exhausted",
                f"decision log has {len(self.log.entries)} entries but the "
                f"run asks for decision {self._cursor + 1} "
                f"(task {task.name!r}); the replayed workload diverged from "
                "the recorded one" + ("" if self.log.entries else
                                     " — was a log loaded at all?"),
                (f"task#{task.task_id}",),
            )
        entry = self.log.entries[self._cursor]
        self._cursor += 1
        if entry.codelet != task.codelet.name:
            raise ReplayDivergence(
                "replay.codelet-mismatch",
                f"decision {self._cursor} was recorded for codelet "
                f"{entry.codelet!r} but the run submits {task.codelet.name!r}",
                (f"task#{task.task_id}",),
            )
        variant = next(
            (v for v in task.codelet.variants if v.name == entry.variant), None
        )
        if variant is None:
            raise ReplayDivergence(
                "replay.unknown-variant",
                f"decision {self._cursor} picks variant {entry.variant!r} "
                f"which codelet {task.codelet.name!r} does not provide "
                f"({[v.name for v in task.codelet.variants]})",
                (f"task#{task.task_id}",),
            )
        try:
            workers = tuple(view.machine.unit(u) for u in entry.worker_ids)
        except Exception:
            raise ReplayDivergence(
                "replay.unknown-worker",
                f"decision {self._cursor} places on workers "
                f"{entry.worker_ids} which the machine "
                f"{view.machine.name!r} does not have",
                (f"task#{task.task_id}",),
            ) from None
        return Decision(variant=variant, workers=workers)


# ---------------------------------------------------------------------------
# trace comparison
# ---------------------------------------------------------------------------

#: counters that may legitimately differ between a recorded run and its
#: replay (the replay scheduler never explores)
_REPLAY_IGNORED = ("n_exploration_decisions",)


def _comparable(trace: ExecutionTrace, ignore: tuple[str, ...]) -> dict:
    doc = trace.canonicalized().state_dict()
    for name in ignore:
        doc.pop(name, None)
    return doc


def assert_traces_identical(
    recorded: ExecutionTrace,
    replayed: ExecutionTrace,
    ignore: tuple[str, ...] = _REPLAY_IGNORED,
) -> None:
    """Raise :class:`ReplayDivergence` unless the canonicalized traces
    are bit-identical (modulo the ``ignore``\\ d counters)."""
    a = _comparable(recorded, ignore)
    b = _comparable(replayed, ignore)
    if a == b:
        return
    for key in a:
        va, vb = a[key], b[key]
        if va == vb:
            continue
        if isinstance(va, list) and isinstance(vb, list):
            if len(va) != len(vb):
                raise ReplayDivergence(
                    "replay.trace-mismatch",
                    f"{key}: recorded run has {len(va)} records, replay "
                    f"has {len(vb)}",
                    (key,),
                )
            for i, (ra, rb) in enumerate(zip(va, vb)):
                if ra != rb:
                    diff = {
                        k: (ra[k], rb[k]) for k in ra if ra[k] != rb[k]
                    }
                    raise ReplayDivergence(
                        "replay.trace-mismatch",
                        f"{key}[{i}] differs between recorded run and "
                        f"replay: {diff}",
                        (f"{key}[{i}]",),
                    )
        raise ReplayDivergence(
            "replay.trace-mismatch",
            f"{key}: recorded {va!r} != replayed {vb!r}",
            (key,),
        )
    raise ReplayDivergence(  # pragma: no cover - defensive
        "replay.trace-mismatch", "traces differ"
    )


def record_and_replay(run, machine_factory=None, **runtime_kwargs):
    """Convenience: execute ``run(runtime)`` twice — once recording, once
    replaying — and assert the traces are bit-identical.

    ``run`` receives a freshly-built :class:`~repro.runtime.runtime
    .Runtime` and drives a workload against it; this helper shuts the
    runtime down.  Pass either ``machine_factory`` (a zero-argument
    callable — each of the two runs gets its own machine) or a
    ``machine`` in ``runtime_kwargs`` (shared by both).  Returns
    ``(recorded_trace, replayed_trace, log)``.
    """
    from repro.runtime.runtime import Runtime

    if machine_factory is not None:
        if "machine" in runtime_kwargs:
            raise TypeError("pass machine_factory or machine, not both")
        make_machine = machine_factory
    else:
        machine = runtime_kwargs.pop("machine")
        make_machine = lambda: machine  # noqa: E731

    rt = Runtime(make_machine(), record=True, **runtime_kwargs)
    run(rt)
    rt.shutdown()
    recorded, log = rt.trace, rt.decision_log
    assert log is not None
    replay_kwargs = dict(runtime_kwargs)
    replay_kwargs.pop("scheduler", None)
    replay_kwargs.pop("scheduler_options", None)
    replay_options: dict = {"log": DecisionLog(log.entries)}
    if getattr(rt.scheduler, "is_bulk", False):
        # bulk runs must replay with the same window boundaries or the
        # commit order (hence event tie-breaking) diverges
        replay_options["window_size"] = rt.scheduler.window_size
    replay_kwargs["scheduler_options"] = replay_options
    rt2 = Runtime(make_machine(), scheduler="replay", **replay_kwargs)
    run(rt2)
    rt2.shutdown()
    assert_traces_identical(recorded, rt2.trace)
    return recorded, rt2.trace, log
