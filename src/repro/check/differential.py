"""Differential testing: composed applications vs. direct references.

The composed path (composition tool -> generated wrappers -> runtime)
and the hand-written direct path implement the same numerics, so for
every Table-I application the final payload must agree to floating-point
tolerance *whatever* the scheduler decides.  This module runs one app
through the generated entry-wrappers under each scheduling policy (and
optionally under static variant narrowing) with invariant checking
enabled, and compares the result against the direct reference.

Kept out of ``repro.check.__init__`` on purpose: it imports the whole
composer/apps stack, which the lightweight invariant checker and the
``python -m repro.check`` CLI do not need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.mains import TOOL_MAINS, compose_app
from repro.composer.recipe import Recipe
from repro.direct import DIRECT_MODULES

#: keyword naming each app's problem size in both mains
SIZE_KWARGS = {
    "spmv": "nrows",
    "sgemm": "size",
    "bfs": "n_nodes",
    "cfd": "ncells",
    "hotspot": "size",
    "lud": "n",
    "nw": "n",
    "particlefilter": "n_particles",
    "pathfinder": "cols",
    "odesolver": "n",
}

#: small problem sizes keeping a full differential sweep fast
SMALL_SIZES = {
    "spmv": 256,
    "sgemm": 48,
    "bfs": 300,
    "cfd": 200,
    "hotspot": 24,
    "lud": 96,
    "nw": 40,
    "particlefilter": 500,
    "pathfinder": 500,
    "odesolver": 64,
}

#: per-app comparison tolerances (defaults elsewhere); LU factorization
#: amplifies rounding differences between variant orderings
TOLERANCES: dict[str, tuple[float, float]] = {
    "lud": (2e-2, 2e-2),
    "cfd": (1e-3, 1e-5),
}


@dataclass
class DifferentialResult:
    """Outcome of one composed-vs-direct comparison."""

    app: str
    scheduler: str
    size: int
    max_abs_diff: float
    ok: bool
    detail: str = ""
    narrowed: tuple[str, ...] = field(default_factory=tuple)


def _payload(value):
    """The comparable array of a main's return value.

    ``odesolver`` mains return ``(state, elapsed, calls)``; every other
    app returns the result array directly.
    """
    if isinstance(value, tuple):
        return np.asarray(value[0])
    return np.asarray(value)


def reference_result(app: str, size: int | None = None, seed: int = 0):
    """The direct (hand-written) implementation's result payload."""
    size = SMALL_SIZES[app] if size is None else size
    kwargs = {SIZE_KWARGS[app]: size, "seed": seed}
    if app == "odesolver":
        kwargs["steps"] = 6
    return _payload(DIRECT_MODULES[app].main(**kwargs))


def composed_result(
    app: str,
    scheduler: str = "dmda",
    size: int | None = None,
    seed: int = 0,
    recipe: Recipe | None = None,
    check: bool = True,
    composed=None,
    scheduler_options: dict | None = None,
):
    """Run one app through the composition tool and return its payload.

    The generated ``PEPPHER_INITIALIZE`` receives the scheduler override
    (plus ``scheduler_options``, when given) and ``check=True`` /
    ``noise_sigma=0.0`` so every differential run is deterministic and
    invariant-checked at shutdown.  Pass a pre-built ``composed``
    application to amortize composition across schedulers.
    """
    size = SMALL_SIZES[app] if size is None else size
    if composed is None:
        composed = compose_app(app, scheduler=scheduler, recipe=recipe)
    kwargs = {SIZE_KWARGS[app]: size, "seed": seed}
    if app == "odesolver":
        kwargs["steps"] = 6
    if scheduler_options:
        # only when non-empty: PEPPHER_INITIALIZE fills in the main
        # descriptor's optimizationGoal default for runs that pass no
        # explicit options, and that default must keep applying here
        kwargs["scheduler_options"] = dict(scheduler_options)
    value = TOOL_MAINS[app](
        app=composed,
        scheduler=scheduler,
        check=check,
        noise_sigma=0.0,
        **kwargs,
    )
    return _payload(value)


def compare_app(
    app: str,
    scheduler: str = "dmda",
    size: int | None = None,
    seed: int = 0,
    recipe: Recipe | None = None,
    composed=None,
    reference=None,
    scheduler_options: dict | None = None,
) -> DifferentialResult:
    """Composed-vs-direct comparison for one (app, scheduler) pair."""
    size = SMALL_SIZES[app] if size is None else size
    if reference is None:
        reference = reference_result(app, size=size, seed=seed)
    got = composed_result(
        app,
        scheduler=scheduler,
        size=size,
        seed=seed,
        recipe=recipe,
        composed=composed,
        scheduler_options=scheduler_options,
    )
    rtol, atol = TOLERANCES.get(app, (1e-5, 1e-6))
    narrowed: tuple[str, ...] = ()
    if recipe is not None:
        narrowed = tuple(sorted(getattr(recipe, "enable_only", ()) or ()))
    if got.shape != reference.shape:
        return DifferentialResult(
            app=app,
            scheduler=scheduler,
            size=size,
            max_abs_diff=float("inf"),
            ok=False,
            detail=f"shape {got.shape} != reference {reference.shape}",
            narrowed=narrowed,
        )
    diff = float(
        np.max(np.abs(got.astype(np.float64) - reference.astype(np.float64)))
    ) if got.size else 0.0
    ok = bool(np.allclose(got, reference, rtol=rtol, atol=atol))
    return DifferentialResult(
        app=app,
        scheduler=scheduler,
        size=size,
        max_abs_diff=diff,
        ok=ok,
        detail="" if ok else f"max |diff| {diff:.3e} over rtol={rtol} atol={atol}",
        narrowed=narrowed,
    )


def run_differential(
    apps=None, schedulers=("eager", "dmda"), seed: int = 0
) -> list[DifferentialResult]:
    """Sweep (app x scheduler) comparisons; returns every result.

    Each ``schedulers`` entry is a policy name or a
    ``(name, scheduler_options)`` pair — e.g.
    ``("lookahead", {"window_size": 8})``.
    """
    results: list[DifferentialResult] = []
    for app in apps or sorted(TOOL_MAINS):
        reference = reference_result(app, seed=seed)
        composed = compose_app(app)
        for scheduler in schedulers:
            if isinstance(scheduler, str):
                name, options = scheduler, None
            else:
                name, options = scheduler
            results.append(
                compare_app(
                    app,
                    scheduler=name,
                    seed=seed,
                    composed=composed,
                    reference=reference,
                    scheduler_options=options,
                )
            )
    return results
