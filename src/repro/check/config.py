"""Process-wide default for shutdown-time invariant checking.

A leaf module (no imports from the rest of the package) so the runtime
can resolve ``Runtime(check=None)`` lazily without pulling the checker
in on the hot path.  The default is off; it can be turned on for a whole
process (the pytest ``--check-invariants`` fixture does this) or via the
``REPRO_CHECK`` environment variable (any value but ``0``/``false``/
``no``/empty enables it).
"""

from __future__ import annotations

import os

_default: bool | None = None


def set_default_check(value: bool | None) -> None:
    """Set (or with ``None`` reset) the process-wide check default."""
    global _default
    _default = value


def default_check() -> bool:
    """Whether sessions without an explicit ``check=`` should check."""
    if _default is not None:
        return _default
    return os.environ.get("REPRO_CHECK", "").lower() not in (
        "",
        "0",
        "false",
        "no",
    )
