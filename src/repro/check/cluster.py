"""Cluster-level invariants: distributed-correctness checks after a run.

The single-machine :class:`~repro.check.invariants.TraceChecker`
validates each node's engine trace in isolation; this module checks the
properties that only exist *between* nodes — the ones chaos testing is
supposed to threaten:

- ``cluster.dead-node-execution`` — a crashed node executes nothing
  after its crash instant: every dispatch to it at or after the crash
  was blackholed (never reached the engine), no attempt that did run
  there was applied if it finished after the crash, and no engine task
  on the node *started* after the crash.
- ``cluster.exactly-once`` — each completed request has exactly one
  ``applied`` attempt; shed and failed requests have none.  Failover
  plus hedging must never double-apply an invocation.
- ``cluster.attempt-overlap`` — a request's non-hedge attempts do not
  overlap in time: a retry is dispatched only after its predecessor was
  resolved (delivered, failed, or declared lost).  Hedges are exempt —
  racing a live attempt is their entire point.
- ``cluster.outcome-vocabulary`` / unresolved attempts — every attempt
  ends the run resolved, with a known outcome.

Per-node engine traces are additionally run through the full
single-machine checker, so a cluster check subsumes PR 4's physical
invariants on every node.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.check.invariants import EPS, TraceChecker
from repro.errors import InvariantViolation
from repro.cluster.records import ATTEMPT_OUTCOMES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.router import Cluster


class ClusterChecker:
    """One checking pass over a finished cluster run."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.trace = cluster.trace
        self.violations: list[InvariantViolation] = []

    def run(self) -> list[InvariantViolation]:
        self._check_outcomes()
        self._check_dead_node_execution()
        self._check_exactly_once()
        self._check_attempt_overlap()
        self._check_node_engines()
        return self.violations

    def _fail(self, rule: str, detail: str, events=()) -> None:
        self.violations.append(InvariantViolation(rule, detail, tuple(events)))

    # -- vocabulary and resolution ------------------------------------------

    def _check_outcomes(self) -> None:
        for a in self.trace.attempts:
            label = f"attempt:{a.tenant}:{a.req_id}#{a.attempt}"
            if a.outcome not in ATTEMPT_OUTCOMES:
                self._fail(
                    "cluster.outcome-vocabulary",
                    f"unknown attempt outcome {a.outcome!r}",
                    (label,),
                )
            elif a.outcome == "pending":
                self._fail(
                    "cluster.attempt-unresolved",
                    "attempt still pending after the run finished",
                    (label,),
                )

    # -- crashed nodes execute nothing --------------------------------------

    def _check_dead_node_execution(self) -> None:
        for nid, node in self.cluster.nodes.items():
            crash = node.crashed_at
            if crash is None:
                continue
            for a in self.trace.attempts:
                if a.node != nid:
                    continue
                label = f"attempt:{a.tenant}:{a.req_id}#{a.attempt}"
                if a.dispatch_time >= crash - EPS and a.ran:
                    self._fail(
                        "cluster.dead-node-execution",
                        f"node {nid} crashed at t={crash:.9f} but executed "
                        f"a dispatch from t={a.dispatch_time:.9f} "
                        f"(task seq {a.task_seq})",
                        (label,),
                    )
                if (
                    a.ran
                    and a.end_time > crash + EPS
                    and a.outcome == "applied"
                ):
                    self._fail(
                        "cluster.dead-node-execution",
                        f"node {nid} crashed at t={crash:.9f} mid-execution "
                        f"of task seq {a.task_seq} (end t={a.end_time:.9f}) "
                        f"but its completion was applied",
                        (label,),
                    )
            # ground truth from the node's own engine: nothing started
            # after the crash instant
            for rec in node.engine.trace.tasks:
                if rec.start_time > crash + EPS:
                    self._fail(
                        "cluster.dead-node-execution",
                        f"node {nid} crashed at t={crash:.9f} but its engine "
                        f"started task#{rec.task_id} at t={rec.start_time:.9f}",
                        (f"node{nid}:task#{rec.task_id}",),
                    )

    # -- exactly-once completion --------------------------------------------

    def _check_exactly_once(self) -> None:
        applied: dict[tuple[str, int], int] = {}
        for a in self.trace.attempts:
            if a.outcome == "applied":
                key = (a.tenant, a.req_id)
                applied[key] = applied.get(key, 0) + 1
        for r in self.trace.requests:
            key = (r.tenant, r.req_id)
            label = f"request:{r.tenant}:{r.req_id}"
            n = applied.pop(key, 0)
            want = 1 if r.outcome == "completed" else 0
            if n != want:
                self._fail(
                    "cluster.exactly-once",
                    f"{r.outcome} request has {n} applied attempts, "
                    f"expected {want} — a failed-over or hedged invocation "
                    f"must be applied exactly once",
                    (label,),
                )
        for (tenant, req_id), n in applied.items():
            self._fail(
                "cluster.exactly-once",
                f"{n} applied attempts for a request with no final record",
                (f"request:{tenant}:{req_id}",),
            )

    # -- retries do not overlap ---------------------------------------------

    def _check_attempt_overlap(self) -> None:
        by_req: dict[tuple[str, int], list] = {}
        for a in self.trace.attempts:
            if not a.hedge:
                by_req.setdefault((a.tenant, a.req_id), []).append(a)
        for (tenant, req_id), attempts in by_req.items():
            attempts.sort(key=lambda a: a.attempt)
            for prev, nxt in zip(attempts, attempts[1:]):
                if math.isnan(prev.resolved_time):
                    continue  # already flagged as unresolved
                if nxt.dispatch_time < prev.resolved_time - EPS:
                    self._fail(
                        "cluster.attempt-overlap",
                        f"retry #{nxt.attempt} dispatched at "
                        f"t={nxt.dispatch_time:.9f} while attempt "
                        f"#{prev.attempt} was unresolved until "
                        f"t={prev.resolved_time:.9f}",
                        (
                            f"attempt:{tenant}:{req_id}#{prev.attempt}",
                            f"attempt:{tenant}:{req_id}#{nxt.attempt}",
                        ),
                    )

    # -- per-node physical invariants ---------------------------------------

    def _check_node_engines(self) -> None:
        for nid, node in self.cluster.nodes.items():
            checker = TraceChecker(node.engine.trace, node.engine.machine)
            for v in checker.run():
                self._fail(
                    v.rule,
                    f"node {nid}: {v.detail}",
                    tuple(f"node{nid}:{e}" for e in v.events),
                )


def check_cluster(cluster: "Cluster") -> list[InvariantViolation]:
    """Validate a finished cluster run; returns all violations found."""
    return ClusterChecker(cluster).run()


def assert_cluster_legal(cluster: "Cluster") -> None:
    """Raise the first violation (with a count of the rest) if the
    cluster run breaks any distributed or per-node invariant."""
    violations = check_cluster(cluster)
    if violations:
        first = violations[0]
        more = (
            f" (+{len(violations) - 1} more violations)"
            if len(violations) > 1
            else ""
        )
        raise InvariantViolation(
            first.rule, first.detail + more, first.events
        )
