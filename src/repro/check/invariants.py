"""Trace invariant checker: replay a finished execution trace against
the machine description and assert it is physically and causally legal.

The checker consumes only recorded artifacts — an
:class:`~repro.runtime.stats.ExecutionTrace` plus either a live
:class:`~repro.hw.description.Machine` or the
:class:`~repro.runtime.trace_export.MachineInfo` summary embedded in
saved trace files — so it can validate a run after the fact, in another
process, or from ``python -m repro.check trace.json``.

Checked invariants
------------------
- **timeline sanity**: every time stamp is finite and non-negative;
  ``submit <= ready <= start <= end`` per task, ``start <= end`` per
  transfer; recorded nodes/workers exist on the machine.
- **worker exclusivity**: no two tasks overlap on one processing unit
  (gang tasks occupy every listed worker).
- **link exclusivity**: transfers serialize per DMA channel — one
  channel per (device link, direction) for duplex links, one per link
  otherwise.
- **dependencies**: a task starts no earlier than every dependency's
  end, and dependencies were submitted first.
- **coherence**: a time-ordered sweep over the container state machine —
  every read (task operand, transfer source, host acquire) sees a copy
  made valid by an earlier transfer, write, or recovery event and not
  invalidated since; evictions drop an actually-present copy and never
  the last one.
- **conservation**: submitted = completed + aborted; retries/recoveries/
  losses are mutually consistent; every completed request maps onto a
  completed task with matching times.
- **fault path**: a retried task's attempts are non-overlapping in time
  (fault times increase with the attempt index and the final successful
  attempt starts after the last fault), and a blacklisted worker
  receives no placements decided after the blacklist event.
- **recording**: sequence stamps are unique, dense and per-stream
  monotone.

Violations are collected as structured
:class:`~repro.errors.InvariantViolation` values naming the rule and the
event ids involved; :func:`assert_trace_legal` raises the first one.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import InvariantViolation
from repro.hw.description import HOST_NODE, Machine
from repro.runtime.stats import (
    ACCESS_KINDS,
    AccessRecord,
    EvictionRecord,
    ExecutionTrace,
    FAULT_KINDS,
    FaultRecord,
    TaskRecord,
    TransferRecord,
)
from repro.runtime.trace_export import MachineInfo

#: slack for float comparisons between independently computed times
EPS = 1e-9

# coherence sweep phases: at equal times, copies become valid before
# they are read, and reads happen before invalidations take effect
_CREATE, _CONSUME, _INVALIDATE = 0, 1, 2


class TraceChecker:
    """One checking pass over a finished trace.

    Use :func:`check_trace` / :func:`assert_trace_legal` instead of
    instantiating this directly unless you need the intermediate state.
    """

    def __init__(
        self, trace: ExecutionTrace, machine: "Machine | MachineInfo"
    ) -> None:
        self.trace = trace
        self.info = MachineInfo.of(machine)
        self.units = {u.unit_id: u for u in self.info.units}
        self.violations: list[InvariantViolation] = []
        self._tasks_by_id = {rec.task_id: rec for rec in trace.tasks}

    # -- entry point --------------------------------------------------------

    def run(self) -> list[InvariantViolation]:
        self._check_seq_stamps()
        self._check_timelines()
        self._check_worker_exclusivity()
        self._check_link_exclusivity()
        self._check_dependencies()
        self._check_conservation()
        self._check_coherence()
        self._check_fault_path()
        return self.violations

    def _fail(self, rule: str, detail: str, events: Iterable = ()) -> None:
        self.violations.append(InvariantViolation(rule, detail, tuple(events)))

    # -- recording ----------------------------------------------------------

    def _check_seq_stamps(self) -> None:
        seen: dict[int, str] = {}
        streams = {
            "task": self.trace.tasks,
            "transfer": self.trace.transfers,
            "eviction": self.trace.evictions,
            "access": self.trace.accesses,
            "fault": self.trace.faults,
        }
        for stream, records in streams.items():
            prev = -1
            for i, rec in enumerate(records):
                label = f"{stream}@seq{rec.seq}"
                if rec.seq < 0 or rec.seq >= self.trace.next_seq:
                    self._fail(
                        "recording.seq-range",
                        f"{stream} record {i} has seq {rec.seq}, expected "
                        f"0 <= seq < {self.trace.next_seq}",
                        (label,),
                    )
                    continue
                if rec.seq in seen:
                    self._fail(
                        "recording.seq-duplicate",
                        f"seq {rec.seq} stamped on both {seen[rec.seq]} "
                        f"and {label}",
                        (seen[rec.seq], label),
                    )
                seen[rec.seq] = label
                if rec.seq <= prev:
                    self._fail(
                        "recording.seq-monotone",
                        f"{stream} stream goes back in recording order "
                        f"(seq {prev} then {rec.seq})",
                        (label,),
                    )
                prev = rec.seq

    # -- timeline sanity ----------------------------------------------------

    def _bad_time(self, value: float) -> bool:
        return not math.isfinite(value) or value < -EPS

    def _check_timelines(self) -> None:
        n_nodes = self.info.n_memory_nodes
        for rec in self.trace.tasks:
            ev = (f"task#{rec.task_id}",)
            stamps = (
                rec.submit_time,
                rec.ready_time,
                rec.start_time,
                rec.end_time,
            )
            if any(self._bad_time(t) for t in stamps):
                self._fail(
                    "timeline.task-times",
                    f"task {rec.name!r} has a negative or non-finite time "
                    f"stamp {stamps}",
                    ev,
                )
                continue
            if not (
                rec.submit_time
                <= rec.ready_time + EPS
                and rec.ready_time <= rec.start_time + EPS
                and rec.start_time <= rec.end_time + EPS
            ):
                self._fail(
                    "timeline.task-order",
                    f"task {rec.name!r} violates submit <= ready <= start "
                    f"<= end: {stamps}",
                    ev,
                )
            if not rec.worker_ids:
                self._fail(
                    "timeline.task-workers",
                    f"task {rec.name!r} completed with no workers",
                    ev,
                )
            for w in rec.worker_ids:
                if w not in self.units:
                    self._fail(
                        "timeline.task-workers",
                        f"task {rec.name!r} ran on unknown worker {w}",
                        ev,
                    )
            if rec.worker_ids and rec.worker_ids[0] in self.units:
                anchor_node = self.units[rec.worker_ids[0]].memory_node
                if rec.node != anchor_node:
                    self._fail(
                        "timeline.task-node",
                        f"task {rec.name!r} records node {rec.node} but its "
                        f"anchor worker {rec.worker_ids[0]} lives on node "
                        f"{anchor_node}",
                        ev,
                    )
        for rec in self.trace.transfers:
            ev = (f"transfer@seq{rec.seq}", f"handle#{rec.handle_id}")
            if self._bad_time(rec.start_time) or self._bad_time(rec.end_time):
                self._fail(
                    "timeline.transfer-times",
                    f"transfer of {rec.handle_name!r} has a negative or "
                    f"non-finite time stamp "
                    f"({rec.start_time}, {rec.end_time})",
                    ev,
                )
                continue
            if rec.start_time > rec.end_time + EPS:
                self._fail(
                    "timeline.transfer-order",
                    f"transfer of {rec.handle_name!r} ends before it starts "
                    f"({rec.start_time} > {rec.end_time})",
                    ev,
                )
            if rec.nbytes < 0:
                self._fail(
                    "timeline.transfer-bytes",
                    f"transfer of {rec.handle_name!r} moves {rec.nbytes} bytes",
                    ev,
                )
            if rec.src_node == rec.dst_node:
                self._fail(
                    "timeline.transfer-nodes",
                    f"transfer of {rec.handle_name!r} copies node "
                    f"{rec.src_node} onto itself",
                    ev,
                )
            for node in (rec.src_node, rec.dst_node):
                if not 0 <= node < n_nodes:
                    self._fail(
                        "timeline.transfer-nodes",
                        f"transfer of {rec.handle_name!r} touches unknown "
                        f"memory node {node}",
                        ev,
                    )
        for rec in self.trace.evictions:
            ev = (f"eviction@seq{rec.seq}", f"handle#{rec.handle_id}")
            if self._bad_time(rec.time):
                self._fail(
                    "timeline.eviction-time",
                    f"eviction of {rec.handle_name!r} at invalid time "
                    f"{rec.time}",
                    ev,
                )
            if rec.node == HOST_NODE or not 0 <= rec.node < n_nodes:
                self._fail(
                    "timeline.eviction-node",
                    f"eviction of {rec.handle_name!r} from invalid node "
                    f"{rec.node} (host memory is never evicted)",
                    ev,
                )
        for rec in self.trace.accesses:
            ev = (f"access@seq{rec.seq}", f"handle#{rec.handle_id}")
            if self._bad_time(rec.time):
                self._fail(
                    "timeline.access-time",
                    f"{rec.kind} of {rec.handle_name!r} at invalid time "
                    f"{rec.time}",
                    ev,
                )
            if rec.kind not in ACCESS_KINDS:
                self._fail(
                    "timeline.access-kind",
                    f"unknown access kind {rec.kind!r}",
                    ev,
                )
        for rec in self.trace.faults:
            ev = (f"fault@seq{rec.seq}",)
            if self._bad_time(rec.time):
                self._fail(
                    "timeline.fault-time",
                    f"{rec.kind} fault at invalid time {rec.time}",
                    ev,
                )
            if rec.kind not in FAULT_KINDS:
                self._fail(
                    "timeline.fault-kind",
                    f"unknown fault kind {rec.kind!r}",
                    ev,
                )

    # -- exclusivity --------------------------------------------------------

    def _check_worker_exclusivity(self) -> None:
        busy: dict[int, list[TaskRecord]] = {}
        for rec in self.trace.tasks:
            for w in set(rec.worker_ids):
                busy.setdefault(w, []).append(rec)
        for w, recs in sorted(busy.items()):
            recs.sort(key=lambda r: (r.start_time, r.end_time))
            for prev, cur in zip(recs, recs[1:]):
                if cur.start_time < prev.end_time - EPS:
                    self._fail(
                        "exclusivity.worker-overlap",
                        f"tasks {prev.name!r} [{prev.start_time:.9f}, "
                        f"{prev.end_time:.9f}] and {cur.name!r} "
                        f"[{cur.start_time:.9f}, {cur.end_time:.9f}] overlap "
                        f"on worker {w}",
                        (f"task#{prev.task_id}", f"task#{cur.task_id}"),
                    )

    def _link_channel(self, rec: TransferRecord) -> tuple[int, str] | None:
        """DMA channel a transfer occupies, or None for malformed routes."""
        if rec.src_node != HOST_NODE and rec.dst_node != HOST_NODE:
            return None  # engine stages d2d through the host
        link_node = rec.src_node if rec.dst_node == HOST_NODE else rec.dst_node
        direction = "d2h" if rec.dst_node == HOST_NODE else "h2d"
        duplex = self.info.duplex.get(link_node, False)
        return (link_node, direction if duplex else "both")

    def _check_link_exclusivity(self) -> None:
        channels: dict[tuple[int, str], list[TransferRecord]] = {}
        for rec in self.trace.transfers:
            channel = self._link_channel(rec)
            if channel is None:
                self._fail(
                    "exclusivity.link-route",
                    f"transfer of {rec.handle_name!r} goes device-to-device "
                    f"(node {rec.src_node} -> {rec.dst_node}) but the "
                    f"machine has no peer DMA; copies stage through host",
                    (f"transfer@seq{rec.seq}", f"handle#{rec.handle_id}"),
                )
                continue
            channels.setdefault(channel, []).append(rec)
        for (node, direction), recs in sorted(channels.items()):
            recs.sort(key=lambda r: (r.start_time, r.end_time))
            for prev, cur in zip(recs, recs[1:]):
                if cur.start_time < prev.end_time - EPS:
                    self._fail(
                        "exclusivity.link-overlap",
                        f"transfers of {prev.handle_name!r} "
                        f"[{prev.start_time:.9f}, {prev.end_time:.9f}] and "
                        f"{cur.handle_name!r} [{cur.start_time:.9f}, "
                        f"{cur.end_time:.9f}] overlap on link {node} "
                        f"({direction})",
                        (f"transfer@seq{prev.seq}", f"transfer@seq{cur.seq}"),
                    )

    # -- dependencies -------------------------------------------------------

    def _check_dependencies(self) -> None:
        for rec in self.trace.tasks:
            for dep_id in rec.deps:
                dep = self._tasks_by_id.get(dep_id)
                if dep is None:
                    # a dependency without a record must have been aborted
                    if self.trace.n_tasks_aborted == 0:
                        self._fail(
                            "dependency.unknown",
                            f"task {rec.name!r} depends on task {dep_id} "
                            f"which never completed (and nothing was aborted)",
                            (f"task#{rec.task_id}", f"task#{dep_id}"),
                        )
                    continue
                if rec.start_time < dep.end_time - EPS:
                    self._fail(
                        "dependency.start-before-dep",
                        f"task {rec.name!r} starts at {rec.start_time:.9f} "
                        f"before its dependency {dep.name!r} ends at "
                        f"{dep.end_time:.9f}",
                        (f"task#{rec.task_id}", f"task#{dep_id}"),
                    )
                if (
                    rec.submit_seq >= 0
                    and dep.submit_seq >= 0
                    and dep.submit_seq >= rec.submit_seq
                ):
                    self._fail(
                        "dependency.submit-order",
                        f"task {rec.name!r} (submit {rec.submit_seq}) "
                        f"depends on {dep.name!r} (submit {dep.submit_seq}) "
                        f"which was submitted after it",
                        (f"task#{rec.task_id}", f"task#{dep_id}"),
                    )

    # -- conservation -------------------------------------------------------

    def _check_conservation(self) -> None:
        tr = self.trace
        if tr.n_submitted != len(tr.tasks) + tr.n_tasks_aborted:
            self._fail(
                "conservation.tasks",
                f"{tr.n_submitted} tasks submitted but {len(tr.tasks)} "
                f"completed + {tr.n_tasks_aborted} aborted",
            )
        if tr.n_tasks_lost > tr.n_tasks_aborted:
            self._fail(
                "conservation.lost-tasks",
                f"{tr.n_tasks_lost} tasks lost to faults but only "
                f"{tr.n_tasks_aborted} aborted",
            )
        if tr.n_tasks_recovered > tr.n_task_retries:
            self._fail(
                "conservation.retries",
                f"{tr.n_tasks_recovered} tasks recovered with only "
                f"{tr.n_task_retries} retries",
            )
        seen_submits: dict[int, TaskRecord] = {}
        for rec in tr.tasks:
            if rec.submit_seq < 0:
                continue
            other = seen_submits.get(rec.submit_seq)
            if other is not None:
                self._fail(
                    "conservation.double-completion",
                    f"submission {rec.submit_seq} completed twice "
                    f"({other.name!r} and {rec.name!r})",
                    (f"task#{other.task_id}", f"task#{rec.task_id}"),
                )
            seen_submits[rec.submit_seq] = rec
        n_completed = sum(1 for r in tr.requests if r.completed)
        if n_completed + tr.n_shed + tr.n_failed_requests != tr.n_requests:
            self._fail(
                "conservation.requests",
                f"{tr.n_requests} requests != {n_completed} completed + "
                f"{tr.n_shed} shed + {tr.n_failed_requests} failed",
            )
        for rec in tr.requests:
            ev = (f"request#{rec.req_id}",)
            if rec.shed:
                if rec.task_id is not None:
                    self._fail(
                        "conservation.shed-request",
                        f"shed request {rec.req_id} of tenant "
                        f"{rec.tenant!r} carries task {rec.task_id}",
                        ev + (f"task#{rec.task_id}",),
                    )
                continue
            if rec.failed:
                continue
            if rec.task_id is None:
                self._fail(
                    "conservation.request-task",
                    f"completed request {rec.req_id} of tenant "
                    f"{rec.tenant!r} has no task",
                    ev,
                )
                continue
            task = self._tasks_by_id.get(rec.task_id)
            if task is None:
                self._fail(
                    "conservation.request-task",
                    f"request {rec.req_id} of tenant {rec.tenant!r} maps to "
                    f"task {rec.task_id} which never completed",
                    ev + (f"task#{rec.task_id}",),
                )
                continue
            if (
                abs(rec.start_time - task.start_time) > EPS
                or abs(rec.end_time - task.end_time) > EPS
            ):
                self._fail(
                    "conservation.request-times",
                    f"request {rec.req_id} of tenant {rec.tenant!r} records "
                    f"[{rec.start_time:.9f}, {rec.end_time:.9f}] but its "
                    f"task {task.name!r} ran [{task.start_time:.9f}, "
                    f"{task.end_time:.9f}]",
                    ev + (f"task#{rec.task_id}",),
                )

    # -- fault path ---------------------------------------------------------

    #: fault kinds marking one failed *execution attempt* of a task
    #: ("transfer" is an in-place retransmission, not a lost attempt)
    _ATTEMPT_FAULTS = ("kernel", "device_lost", "transfer_abort")

    def _check_fault_path(self) -> None:
        """Retry and blacklist discipline along the fault-recovery path.

        Attempts of one task must be sequential: each retry is placed
        after the previous attempt's fault (plus backoff), so fault
        times are non-decreasing in the attempt index and the final
        successful attempt starts no earlier than the last fault.  A
        blacklisted worker must receive no placement decided after the
        blacklist moment; placement order is host-side, so the check
        uses the triggering task's submission index (every later-
        submitted task is placed after the blacklist) together with the
        virtual ready time.
        """
        by_task: dict[int, list[FaultRecord]] = {}
        for rec in self.trace.faults:
            if rec.kind in self._ATTEMPT_FAULTS and rec.task_id is not None:
                by_task.setdefault(rec.task_id, []).append(rec)
        for task_id, recs in sorted(by_task.items()):
            recs.sort(key=lambda r: (r.attempt, r.time))
            for a, b in zip(recs, recs[1:]):
                if b.attempt == a.attempt:
                    self._fail(
                        "fault.attempt-duplicate",
                        f"task {a.task_name!r} records two attempt-"
                        f"{a.attempt} faults ({a.kind}, {b.kind})",
                        (f"fault@seq{a.seq}", f"fault@seq{b.seq}"),
                    )
                    continue
                if b.time < a.time - EPS:
                    self._fail(
                        "fault.attempt-overlap",
                        f"task {a.task_name!r}: attempt {b.attempt} faulted "
                        f"at {b.time:.9f}, before attempt {a.attempt}'s "
                        f"fault at {a.time:.9f} — retried attempts must "
                        f"not overlap in time",
                        (f"fault@seq{a.seq}", f"fault@seq{b.seq}"),
                    )
            final = self._tasks_by_id.get(task_id)
            last = recs[-1]
            if final is not None and final.start_time < last.time - EPS:
                self._fail(
                    "fault.attempt-overlap",
                    f"task {final.name!r}: final attempt starts at "
                    f"{final.start_time:.9f}, before its last fault at "
                    f"{last.time:.9f} — the successful attempt overlaps "
                    f"a failed one",
                    (f"task#{task_id}", f"fault@seq{last.seq}"),
                )
        for rec in self.trace.faults:
            if rec.kind != "blacklisted" or not rec.worker_ids:
                continue
            w = rec.worker_ids[0]
            trigger = (
                self._tasks_by_id.get(rec.task_id)
                if rec.task_id is not None
                else None
            )
            if trigger is not None and w in trigger.worker_ids:
                self._fail(
                    "fault.blacklist-placement",
                    f"task {trigger.name!r} triggered the blacklisting of "
                    f"worker {w} at t={rec.time:.9f} yet its final (post-"
                    f"blacklist) placement still uses that worker",
                    (f"task#{trigger.task_id}", f"fault@seq{rec.seq}"),
                )
            if trigger is None:
                # without the triggering task's submission index the
                # host-side placement order cannot be reconstructed
                # (eager placement runs ahead of virtual time)
                continue
            for t in self.trace.tasks:
                if w not in t.worker_ids or t.ready_time <= rec.time + EPS:
                    continue
                if t.submit_seq <= trigger.submit_seq:
                    continue  # placed before the blacklist was decided
                self._fail(
                    "fault.blacklist-placement",
                    f"worker {w} was blacklisted at t={rec.time:.9f}, but "
                    f"task {t.name!r} (ready {t.ready_time:.9f}) was placed "
                    f"on it afterwards",
                    (f"task#{t.task_id}", f"fault@seq{rec.seq}"),
                )

    # -- coherence ----------------------------------------------------------

    def _check_coherence(self) -> None:
        """Time-ordered sweep over per-(handle, node) copy validity.

        A copy of a handle becomes valid at a node through a completed
        transfer to it, a task writing there, a host write, a partition
        inheriting the parent's copies, or host-shadow recovery after
        device loss; it stops being valid through an eviction, a write
        elsewhere, unregistration, or device loss.  Every read must fall
        on a currently-valid copy whose data is ready by the read time.
        """
        events: list[tuple[float, int, int, str, object]] = []
        for rec in self.trace.tasks:
            for h in set(rec.reads):
                events.append(
                    (rec.start_time, _CONSUME, rec.seq, "task-read", (h, rec))
                )
            for h in set(rec.writes):
                events.append(
                    (rec.end_time, _CREATE, rec.seq, "create", (h, rec.node))
                )
                events.append(
                    (
                        rec.end_time,
                        _INVALIDATE,
                        rec.seq,
                        "keep-only",
                        (h, rec.node),
                    )
                )
        for rec in self.trace.transfers:
            events.append(
                (rec.start_time, _CONSUME, rec.seq, "transfer-src", rec)
            )
            events.append(
                (
                    rec.end_time,
                    _CREATE,
                    rec.seq,
                    "create",
                    (rec.handle_id, rec.dst_node),
                )
            )
        for erec in self.trace.evictions:
            events.append((erec.time, _INVALIDATE, erec.seq, "evict", erec))
        for arec in self.trace.accesses:
            if arec.kind == "acquire":
                if "r" in arec.mode:
                    events.append(
                        (arec.time, _CONSUME, arec.seq, "host-read", arec)
                    )
                if "w" in arec.mode:
                    events.append(
                        (
                            arec.time,
                            _CREATE,
                            arec.seq,
                            "create",
                            (arec.handle_id, HOST_NODE),
                        )
                    )
                    events.append(
                        (
                            arec.time,
                            _INVALIDATE,
                            arec.seq,
                            "keep-only",
                            (arec.handle_id, HOST_NODE),
                        )
                    )
            elif arec.kind == "unregister":
                events.append(
                    (
                        arec.time,
                        _INVALIDATE,
                        arec.seq,
                        "keep-only",
                        (arec.handle_id, HOST_NODE),
                    )
                )
            elif arec.kind == "partition":
                events.append(
                    (arec.time, _CONSUME, arec.seq, "partition", arec)
                )
            elif arec.kind == "unpartition":
                events.append(
                    (
                        arec.time,
                        _CREATE,
                        arec.seq,
                        "create",
                        (arec.handle_id, HOST_NODE),
                    )
                )
                events.append(
                    (arec.time, _INVALIDATE, arec.seq, "unpartition", arec)
                )
        for frec in self.trace.faults:
            if frec.kind == "replica_lost" and frec.handle_id is not None:
                events.append(
                    (
                        frec.time,
                        _CREATE,
                        frec.seq,
                        "create",
                        (frec.handle_id, HOST_NODE),
                    )
                )
            elif frec.kind == "device_lost" and frec.node is not None:
                events.append(
                    (frec.time, _INVALIDATE, frec.seq, "device-lost", frec)
                )
        #: recording seqs at which each (handle, node) copy was created,
        #: for live-order fallbacks where virtual time runs backwards
        #: relative to recording order (eagerly scheduled evictions)
        created_seq: dict[tuple[int, int], list[int]] = {}
        for _time, _phase, seq, kind, data in events:
            if kind == "create":
                created_seq.setdefault(tuple(data), []).append(seq)  # type: ignore[arg-type]
        events.sort(key=lambda e: (e[0], e[1], e[2]))

        #: per handle: memory node -> time its copy's data is ready
        state: dict[int, dict[int, float]] = {}
        #: per handle: node -> ready time of the *latest* copy ever made
        #: valid there, kept across invalidations.  The engine schedules
        #: eagerly, so a task scheduled early may (legally) read a copy
        #: that a later-scheduled task evicts at an earlier virtual time;
        #: such a read is accepted when a completed transfer/write had
        #: the data ready by the read time, even if since invalidated.
        ever: dict[int, dict[int, float]] = {}

        def valid(handle_id: int) -> dict[int, float]:
            # data starts host-resident when registered
            ever.setdefault(handle_id, {HOST_NODE: 0.0})
            return state.setdefault(handle_id, {HOST_NODE: 0.0})

        def was_ready(handle_id: int, node: int, by: float) -> bool:
            avail = ever.get(handle_id, {}).get(node)
            return avail is not None and avail <= by + EPS

        for time, _phase, _seq, kind, data in events:
            if kind == "create":
                handle_id, node = data  # type: ignore[misc]
                valid(handle_id)[node] = time
                ever[handle_id][node] = time
            elif kind == "keep-only":
                handle_id, node = data  # type: ignore[misc]
                copies = valid(handle_id)
                for n in list(copies):
                    if n != node:
                        del copies[n]
            elif kind == "task-read":
                handle_id, rec = data  # type: ignore[misc]
                copies = valid(handle_id)
                ev = (f"task#{rec.task_id}", f"handle#{handle_id}")
                if rec.node not in copies:
                    if not was_ready(handle_id, rec.node, time):
                        self._fail(
                            "coherence.read-invalid",
                            f"task {rec.name!r} reads handle {handle_id} at "
                            f"node {rec.node} where no valid copy exists "
                            f"(valid at {sorted(copies) or 'nowhere'})",
                            ev,
                        )
                elif copies[rec.node] > time + EPS:
                    self._fail(
                        "coherence.read-early",
                        f"task {rec.name!r} starts at {time:.9f} but its "
                        f"operand {handle_id} only becomes ready at node "
                        f"{rec.node} at {copies[rec.node]:.9f} — no "
                        f"completed transfer precedes the read",
                        ev,
                    )
            elif kind == "transfer-src":
                rec = data  # type: ignore[assignment]
                copies = valid(rec.handle_id)
                ev = (f"transfer@seq{rec.seq}", f"handle#{rec.handle_id}")
                if rec.src_node not in copies:
                    if not was_ready(rec.handle_id, rec.src_node, time):
                        self._fail(
                            "coherence.transfer-source",
                            f"transfer of {rec.handle_name!r} reads node "
                            f"{rec.src_node} where no valid copy exists "
                            f"(valid at {sorted(copies) or 'nowhere'})",
                            ev,
                        )
                elif copies[rec.src_node] > time + EPS:
                    self._fail(
                        "coherence.transfer-early",
                        f"transfer of {rec.handle_name!r} starts at "
                        f"{time:.9f} before its source at node "
                        f"{rec.src_node} is ready at "
                        f"{copies[rec.src_node]:.9f}",
                        ev,
                    )
            elif kind == "host-read":
                arec = data  # type: ignore[assignment]
                copies = valid(arec.handle_id)
                ev = (f"access@seq{arec.seq}", f"handle#{arec.handle_id}")
                if HOST_NODE not in copies:
                    self._fail(
                        "coherence.host-read",
                        f"host reads handle {arec.handle_name!r} with no "
                        f"valid host copy (valid at "
                        f"{sorted(copies) or 'nowhere'})",
                        ev,
                    )
                elif copies[HOST_NODE] > time + EPS:
                    self._fail(
                        "coherence.host-read-early",
                        f"host reads handle {arec.handle_name!r} at "
                        f"{time:.9f} before its host copy is ready at "
                        f"{copies[HOST_NODE]:.9f}",
                        ev,
                    )
            elif kind == "evict":
                erec = data  # type: ignore[assignment]
                copies = valid(erec.handle_id)
                ev = (f"eviction@seq{erec.seq}", f"handle#{erec.handle_id}")
                if erec.node not in copies:
                    key = (erec.handle_id, erec.node)
                    if erec.node == HOST_NODE or not any(
                        s < erec.seq for s in created_seq.get(key, ())
                    ):
                        self._fail(
                            "coherence.evict-absent",
                            f"eviction drops handle {erec.handle_name!r} "
                            f"from node {erec.node} where it holds no copy",
                            ev,
                        )
                    continue
                del copies[erec.node]
                if not copies:
                    self._fail(
                        "coherence.evict-last-copy",
                        f"eviction drops the last copy of handle "
                        f"{erec.handle_name!r} (node {erec.node}, "
                        f"{'flushed' if erec.flushed else 'unflushed'})",
                        ev,
                    )
                    copies[HOST_NODE] = time  # keep sweeping
            elif kind == "partition":
                arec = data  # type: ignore[assignment]
                parent = dict(valid(arec.handle_id))
                for child in arec.related:
                    state[child] = dict(parent)
                    ever[child] = dict(ever[arec.handle_id])
            elif kind == "unpartition":
                arec = data  # type: ignore[assignment]
                copies = valid(arec.handle_id)
                for n in list(copies):
                    if n != HOST_NODE:
                        del copies[n]
                for child in arec.related:
                    # children are dead views after the gather
                    state[child] = {}
            elif kind == "device-lost":
                frec = data  # type: ignore[assignment]
                for copies in state.values():
                    copies.pop(frec.node, None)
                    if not copies:
                        # sole replica: the engine re-sources from the
                        # host shadow (recorded as replica_lost faults)
                        copies[HOST_NODE] = time


def check_trace(
    trace: ExecutionTrace, machine: "Machine | MachineInfo"
) -> list[InvariantViolation]:
    """All invariant violations of a finished trace (empty when legal)."""
    return TraceChecker(trace, machine).run()


def assert_trace_legal(
    trace: ExecutionTrace, machine: "Machine | MachineInfo"
) -> None:
    """Raise the first :class:`InvariantViolation` found, if any."""
    violations = check_trace(trace, machine)
    if violations:
        raise violations[0]
