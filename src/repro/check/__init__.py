"""repro.check — trace invariant checking and deterministic replay.

Three layers of run validation:

- :mod:`repro.check.invariants` replays a finished execution trace
  against the machine description and asserts physical/causal legality
  (worker and DMA exclusivity, coherence, dependencies, conservation);
- :mod:`repro.check.replay` records every scheduling decision and
  re-executes the log, asserting the replayed trace is bit-identical;
- :mod:`repro.check.differential` (imported explicitly — it pulls in the
  whole composer stack) compares composed applications against their
  hand-written direct references under every scheduling policy;
- :mod:`repro.check.cluster` (imported explicitly — it pulls in the
  cluster/serving stack) validates distributed invariants of a
  :class:`~repro.cluster.router.Cluster` run (exactly-once completion,
  no execution on crashed nodes, non-overlapping retries) and runs the
  single-machine checker over every node's engine trace.

Enable shutdown-time checking per session (``Runtime(check=True)`` /
``Session(check=True)``), process-wide
(:func:`repro.check.config.set_default_check` or ``REPRO_CHECK=1``), or
offline over a saved trace: ``python -m repro.check trace.json``.
"""

from repro.check.config import default_check, set_default_check
from repro.errors import InvariantViolation, ReplayDivergence
from repro.check.invariants import TraceChecker, assert_trace_legal, check_trace
from repro.check.replay import (
    DecisionLog,
    DecisionRecord,
    DecisionRecorder,
    RecordingScheduler,
    ReplayScheduler,
    assert_traces_identical,
    record_and_replay,
)

__all__ = [
    "DecisionLog",
    "DecisionRecord",
    "DecisionRecorder",
    "InvariantViolation",
    "ReplayDivergence",
    "RecordingScheduler",
    "ReplayScheduler",
    "TraceChecker",
    "assert_trace_legal",
    "assert_traces_identical",
    "check_trace",
    "default_check",
    "record_and_replay",
    "set_default_check",
]
