"""Adaptive calibration driver for the performance-model store.

The brute-force approach (:func:`repro.composer.training.train_dispatch_table`)
runs every variant the same number of times at every point of a full
cross-product grid.  Calibration for *runtime* composition needs less:
the scheduler only requires a trustworthy
:class:`~repro.runtime.perfmodel.PerfModel`, i.e. a regression fit per
variant plus exact history where it matters.  This driver therefore:

- walks a **log-spaced size ladder** (all context parameters scaled
  together, smallest rung first) instead of a full grid;
- **early-stops per variant** once its power-law fit *generalizes*: the
  check is out-of-sample — the fit built from previous rungs must
  predict the new rung's measurement within a relative tolerance before
  the variant may stop climbing.  (An in-sample check would converge in
  the overhead-dominated small-size region and extrapolate garbage.)
  A converged variant skips intermediate rungs but still **anchors the
  top rung** with one measurement, so every fit spans the full context
  range and never extrapolates far beyond its data;
- gives **dominated variants a reduced budget**: a variant consistently
  slower than the rung's best by a large factor keeps climbing the
  ladder with one repetition instead of several.  It is *not* dropped:
  every selectable variant must end calibrated (fit available), or a
  warm-started scheduler would still have to explore it.

Measurements run each variant on a fresh single-purpose runtime with an
``eager`` policy and a *shared* model, so observations carry
production-identical footprints (the restricted codelet keeps the
component's name) and accumulate exactly as they would in live runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.components.context import ContextInstance, ContextParamDecl
from repro.components.implementation import ImplementationDescriptor
from repro.components.interface import InterfaceDescriptor
from repro.composer.glue import lower_component
from repro.composer.training import OperandFactory
from repro.errors import CompositionError, SchedulingError
from repro.hw.description import Machine
from repro.runtime.perfmodel import PerfModel
from repro.runtime.runtime import Runtime
from repro.tuning.store import PerfModelStore


def size_ladder(
    decls: Sequence[ContextParamDecl], rungs: int
) -> list[ContextInstance]:
    """Log-spaced ladder scaling every context parameter together.

    Unlike :func:`~repro.components.context.training_scenarios` (a full
    cross product, ``rungs**n_params`` points) the ladder has exactly
    ``rungs`` points: rung *i* takes each parameter's *i*-th geometric
    sample.  That is what a regression fit needs — samples spanning the
    size range — at a fraction of the cost.
    """
    decls = list(decls)
    if not decls:
        return [ContextInstance({})]
    grids = [d.sample_points(rungs) for d in decls]
    out = []
    for i in range(rungs):
        values = {
            d.name: (int(g[i]) if d.kind == "int" else float(g[i]))
            for d, g in zip(decls, grids)
        }
        inst = ContextInstance(values)
        if not out or out[-1] != inst:  # tiny ranges may collapse rungs
            out.append(inst)
    return out


@dataclass
class VariantCalibration:
    """Per-variant outcome of one calibration campaign."""

    variant: str
    runs: int = 0
    #: wall-clock samples contributed to the model's ``measured``
    #: provenance by a real execution backend (0 on the inline path)
    measured_runs: int = 0
    #: ladder index after which the variant's fit converged (None if it
    #: ran the full ladder without meeting the tolerance)
    converged_at: int | None = None
    #: variant was detected as clearly dominated and demoted to the
    #: reduced exploration budget
    dominated: bool = False
    #: a usable regression fit exists (the calibration goal)
    fitted: bool = False


@dataclass
class CalibrationReport:
    """Everything one adaptive calibration campaign did and measured."""

    interface_name: str
    model: PerfModel
    ladder: list[ContextInstance] = field(default_factory=list)
    variants: dict[str, VariantCalibration] = field(default_factory=dict)
    #: (scenario, variant, reason) combinations that could not run
    skipped: list[tuple[ContextInstance, str, str]] = field(default_factory=list)
    total_runs: int = 0
    #: name of the execution backend kernels ran on ("" = inline)
    exec_backend: str = ""

    def provenance(self) -> dict:
        """JSON-compatible provenance for the store entry."""
        return {
            "driver": "adaptive-ladder",
            "interface": self.interface_name,
            "ladder": [dict(s) for s in self.ladder],
            "total_runs": self.total_runs,
            "exec_backend": self.exec_backend,
            "variants": {
                name: {
                    "runs": vc.runs,
                    "measured_runs": vc.measured_runs,
                    "converged_at": vc.converged_at,
                    "dominated": vc.dominated,
                    "fitted": vc.fitted,
                }
                for name, vc in sorted(self.variants.items())
            },
            "skipped": [
                [dict(s), variant, reason] for s, variant, reason in self.skipped
            ],
        }

    def describe(self) -> str:
        lines = [
            f"adaptive calibration of {self.interface_name!r}: "
            f"{self.total_runs} runs over {len(self.ladder)} rungs"
        ]
        for name, vc in sorted(self.variants.items()):
            status = []
            if vc.converged_at is not None:
                status.append(f"converged at rung {vc.converged_at}")
            if vc.dominated:
                status.append("dominated (reduced budget)")
            status.append("fitted" if vc.fitted else "NO FIT")
            lines.append(f"  {name:<28s} {vc.runs:3d} runs; {', '.join(status)}")
        if self.skipped:
            lines.append(f"  skipped: {len(self.skipped)} (infeasible/guarded)")
        return "\n".join(lines)


def calibrate_component(
    interface: InterfaceDescriptor,
    implementations: Sequence[ImplementationDescriptor],
    machine_factory: Callable[[], Machine],
    make_operands: OperandFactory,
    store: PerfModelStore | None = None,
    ladder: Sequence[ContextInstance] | None = None,
    rungs: int = 6,
    repetitions: int = 2,
    rel_tol: float = 0.25,
    dominance_factor: float = 8.0,
    seed: int = 0,
    run_kernels: bool = False,
    model: PerfModel | None = None,
    exec_backend: "str | object | None" = None,
) -> CalibrationReport:
    """Adaptively calibrate one component's performance model.

    Parameters
    ----------
    store:
        When given, the calibrated model is merged into the store entry
        for ``machine_factory()``'s machine (with provenance) — and the
        campaign warm-starts from whatever the store already holds.
    ladder:
        Explicit scenarios to climb (overrides ``rungs``).
    rungs:
        Ladder length when derived from the interface's context params.
    repetitions:
        Measurements per (rung, variant) while the variant is neither
        converged nor dominated.
    rel_tol:
        Early-stop threshold: relative error of the previous rungs' fit
        against the new rung's (out-of-sample) measurement.
    dominance_factor:
        A variant slower than the rung's best by more than this factor
        is demoted to one repetition per remaining rung.
    model:
        Accumulate into an existing model instead of a fresh one
        (ignored when ``store`` already has an entry to warm-start from).
    exec_backend:
        Run calibration kernels on a real execution backend (name or
        instance, see :mod:`repro.exec`) so the campaign also collects
        *wall-clock* samples under the model's ``"measured"``
        provenance, alongside the analytical ones.  A real backend
        implies ``run_kernels=True`` (there is nothing to measure
        otherwise).  Backends named here are closed before returning.
    """
    if repetitions < 1:
        raise CompositionError("calibration needs at least one repetition")
    if rel_tol <= 0:
        raise CompositionError("rel_tol must be positive")
    own_backend = False
    if isinstance(exec_backend, str):
        from repro.exec.base import make_backend

        exec_backend = make_backend(exec_backend)
        own_backend = True
    if exec_backend is not None and not exec_backend.inline:
        run_kernels = True  # wall-clock measurement needs real kernels
    codelet_all = lower_component(interface, implementations)
    machine = machine_factory()
    if model is None:
        model = (
            store.warm_model(machine, codelets=[codelet_all.name])
            if store is not None
            else PerfModel()
        )
    scenarios = (
        list(ladder)
        if ladder is not None
        else size_ladder(interface.context_params, rungs)
    )
    report = CalibrationReport(
        interface_name=interface.name,
        model=model,
        ladder=scenarios,
        exec_backend=exec_backend.name if exec_backend is not None else "",
    )
    states = {
        v.name: VariantCalibration(variant=v.name) for v in codelet_all.variants
    }
    report.variants = states
    # warm-started models may already hold measured samples from earlier
    # campaigns; count only what *this* campaign contributes
    prior_measured = {
        v.name: model.measured_regression.n_samples(v.name)
        for v in codelet_all.variants
    }

    run_index = 0
    for rung_i, scenario in enumerate(scenarios):
        top_rung = rung_i == len(scenarios) - 1
        ctx = scenario.as_dict()
        rung_means: dict[str, float] = {}
        for variant in codelet_all.variants:
            vc = states[variant.name]
            if vc.converged_at is not None and not top_rung:
                continue  # fit trusted; skip straight to the top anchor
            if not variant.selectable(ctx):
                report.skipped.append((scenario, variant.name, "guard"))
                continue
            restricted = codelet_all.restricted([variant.name])
            reps = (
                1 if (vc.dominated or vc.converged_at is not None)
                else repetitions
            )
            prior = model.regression.samples(variant.name)
            times: list[float] = []
            try:
                for _ in range(reps):
                    rt = Runtime(
                        machine_factory(),
                        scheduler="eager",
                        seed=seed + run_index,
                        run_kernels=run_kernels,
                        perfmodel=model,
                        exec_backend=exec_backend,
                    )
                    run_index += 1
                    operands, scalar_args = make_operands(ctx, rt)
                    start = rt.now
                    rt.submit(
                        restricted,
                        operands,
                        ctx=ctx,
                        scalar_args=scalar_args,
                        sync=True,
                        name=f"calib:{variant.name}",
                    )
                    times.append(rt.now - start)
                    rt.shutdown()
                    vc.runs += 1
                    report.total_runs += 1
            except SchedulingError:
                report.skipped.append((scenario, variant.name, "infeasible"))
                continue
            rung_means[variant.name] = sum(times) / len(times)
            # early stop, out-of-sample: the fit from *previous* rungs
            # must predict this rung's fresh measurements — the fit has
            # demonstrably generalized upward, not merely interpolated
            fresh = model.regression.samples(variant.name)[len(prior):]
            if vc.converged_at is None and fresh:
                measured = sum(t for _, t in fresh) / len(fresh)
                predicted = model.regression.predict_from(
                    prior, fresh[-1][0]
                )
                if (
                    predicted is not None
                    and measured > 0
                    and abs(predicted - measured) / measured <= rel_tol
                ):
                    vc.converged_at = rung_i
        # dominance: clearly-slower variants get the reduced budget for
        # the remaining rungs (never dropped — they still need a fit)
        if rung_means:
            best = min(rung_means.values())
            for name, mean in rung_means.items():
                if best > 0 and mean / best > dominance_factor:
                    states[name].dominated = True

    probe = 1.0e6  # any positive size: fits answer for all sizes
    for name, vc in states.items():
        vc.fitted = model.regression.predict(name, probe) is not None
        vc.measured_runs = (
            model.measured_regression.n_samples(name)
            - prior_measured.get(name, 0)
        )
    if own_backend:
        exec_backend.close()
    if store is not None:
        store.save(
            machine,
            model,
            provenance={codelet_all.name: report.provenance()},
        )
    return report
