"""Persistent per-machine performance-model store.

StarPU keeps one calibration file per (performance model, hostname)
under ``~/.starpu/sampling/codelets``; a run on a machine whose models
are already calibrated skips the exploration phase entirely.  This
module is that repository for the simulated stack:

- one JSON file per machine *name* under the store root, holding the
  calibrated model data grouped per codelet plus provenance;
- a **fingerprint** of the full machine description (devices, links,
  unit layout) stored inside the file.  Loading a file whose fingerprint
  does not match the current machine — the preset changed, a device was
  recalibrated — raises :class:`~repro.errors.StaleModelError` instead
  of silently reusing measurements taken on different hardware;
- a **format version**: files written by an incompatible serialisation
  are likewise rejected as stale;
- **atomic writes** (temp file + ``os.replace``) and **merge-on-save**:
  saving re-reads the file and folds the incoming model into it, so
  concurrent experiments calibrating different codelets don't clobber
  each other's entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import StaleModelError
from repro.hw.description import Machine
from repro.runtime.perfmodel import PerfModel

#: bump when the serialised model layout changes incompatibly
FORMAT_VERSION = 1


def machine_fingerprint(machine: Machine) -> str:
    """Stable hash of the machine description (not its name).

    Any change to the unit layout, a device's calibrated figures
    (throughput, bandwidth, overheads, efficiencies, power), a device
    model's fidelity tier or knobs (SM limits, L1/L2 hit rates,
    instruction latencies), or a link's parameters yields a different
    fingerprint, which is what invalidates stored models: timings
    measured on a different machine description are not comparable.

    Devices without an attached model (the coarse default) fingerprint
    exactly as they always did, so store files written before the
    device-model layer existed remain valid for coarse machines.
    """
    desc = {
        "units": [
            {
                "unit_id": u.unit_id,
                "memory_node": u.memory_node,
                "device": {
                    "name": u.device.name,
                    "kind": u.device.kind.value,
                    "peak_gflops": u.device.peak_gflops,
                    "mem_bandwidth_gbs": u.device.mem_bandwidth_gbs,
                    "launch_overhead_s": u.device.launch_overhead_s,
                    "regular_efficiency": u.device.regular_efficiency,
                    "irregular_efficiency": u.device.irregular_efficiency,
                    "branchy_efficiency": u.device.branchy_efficiency,
                    "has_cache": u.device.has_cache,
                    "cores": u.device.cores,
                    "busy_watts": u.device.busy_watts,
                    "memory_bytes": u.device.memory_bytes,
                    # only present for devices with an explicit model, so
                    # pre-existing coarse fingerprints stay unchanged
                    **(
                        {
                            "model": {
                                "fidelity": u.device.model.fidelity,
                                "knobs": u.device.model.knobs(),
                            }
                        }
                        if u.device.model is not None
                        else {}
                    ),
                },
            }
            for u in machine.units
        ],
        "links": {
            str(node): {
                "bandwidth_gbs": link.bandwidth_gbs,
                "latency_s": link.latency_s,
                "duplex": link.duplex,
            }
            for node, link in sorted(machine.links.items())
        },
    }
    blob = json.dumps(desc, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class PerfModelStore:
    """Per-machine repository of calibrated performance models.

    Parameters
    ----------
    root:
        Directory holding one ``<machine name>.json`` per machine
        (created on first save).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, machine: Machine) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in machine.name)
        return self.root / f"{safe}.json"

    def has(self, machine: Machine) -> bool:
        return self.path_for(machine).exists()

    # -- loading -----------------------------------------------------------

    def _read_payload(self, machine: Machine) -> dict | None:
        path = self.path_for(machine)
        if not path.exists():
            return None
        payload = json.loads(path.read_text())
        if payload.get("format_version") != FORMAT_VERSION:
            raise StaleModelError(
                f"store entry {path} has format version "
                f"{payload.get('format_version')!r}, expected {FORMAT_VERSION}; "
                "recalibrate instead of reusing it"
            )
        fp = machine_fingerprint(machine)
        if payload.get("fingerprint") != fp:
            raise StaleModelError(
                f"store entry {path} was calibrated for a different machine "
                f"description (stored fingerprint {payload.get('fingerprint')!r}, "
                f"current {fp!r}); recalibrate instead of reusing it"
            )
        return payload

    def load(
        self, machine: Machine, codelets: Iterable[str] | None = None
    ) -> PerfModel | None:
        """Load the calibrated model for ``machine``.

        Returns ``None`` when the store has no entry (cold machine);
        raises :class:`~repro.errors.StaleModelError` when the entry
        exists but its fingerprint or format version does not match.
        With ``codelets``, only those codelets' entries are loaded.
        """
        payload = self._read_payload(machine)
        if payload is None:
            return None
        wanted = None if codelets is None else set(codelets)
        model = PerfModel()
        for name, entry in payload.get("codelets", {}).items():
            if wanted is not None and name not in wanted:
                continue
            model.merge_from(PerfModel.from_dict(entry["model"]))
        return model

    def warm_model(
        self, machine: Machine, codelets: Iterable[str] | None = None
    ) -> PerfModel:
        """Like :meth:`load` but a cold machine yields a fresh empty
        model, so callers can unconditionally hand the result to a
        :class:`~repro.runtime.runtime.Runtime`."""
        return self.load(machine, codelets) or PerfModel()

    def provenance(self, machine: Machine) -> dict[str, dict]:
        """Per-codelet provenance recorded at save time."""
        payload = self._read_payload(machine)
        if payload is None:
            return {}
        return {
            name: dict(entry.get("provenance", {}))
            for name, entry in payload.get("codelets", {}).items()
        }

    # -- saving ------------------------------------------------------------

    def save(
        self,
        machine: Machine,
        model: PerfModel,
        provenance: Mapping[str, Mapping] | None = None,
    ) -> Path:
        """Merge ``model`` into the machine's store entry, atomically.

        The incoming model is split per codelet (variants learned from
        footprints).  An existing *fresh* entry is re-read and merged
        key-by-key — concurrent experiments calibrating different
        codelets both survive; for shared keys the larger sample set
        wins.  An existing *stale* entry (old fingerprint or format) is
        replaced outright: saving fresh measurements is exactly how
        recalibration repairs staleness.

        ``provenance`` maps codelet names to JSON-compatible metadata
        (recorded per codelet, replacing prior provenance).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(machine)
        try:
            existing = self._read_payload(machine)
        except StaleModelError:
            existing = None  # stale entries are replaced, never merged
        payload = existing or {
            "format_version": FORMAT_VERSION,
            "machine": machine.name,
            "fingerprint": machine_fingerprint(machine),
            "codelets": {},
        }
        entries: dict[str, dict] = payload["codelets"]
        groups = set(model.codelets())
        if model.unmapped_variants():
            groups.add("")  # observations whose footprint named no codelet
        for codelet in sorted(groups):
            sub = model.subset_for_codelets({codelet})
            prior = entries.get(codelet)
            if prior is not None:
                merged = PerfModel.from_dict(prior["model"])
                merged.merge_from(sub)
                sub = merged
            entry = {"model": sub.to_dict()}
            prov = dict((provenance or {}).get(codelet, {}))
            if not prov and prior is not None:
                prov = dict(prior.get("provenance", {}))
            entry["provenance"] = prov
            if prior is not None and "dispatch_table" in prior:
                entry["dispatch_table"] = prior["dispatch_table"]
            entries[codelet] = entry
        self._write_atomic(path, payload)
        return path

    # -- dispatch tables (static composition) ------------------------------

    def save_dispatch_table(self, machine: Machine, table) -> Path:
        """Persist a trained :class:`~repro.composer.static_comp.DispatchTable`
        under its interface's codelet entry (atomically, merge-on-save
        like :meth:`save`; the stale-replacement rule is the same)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(machine)
        try:
            existing = self._read_payload(machine)
        except StaleModelError:
            existing = None
        payload = existing or {
            "format_version": FORMAT_VERSION,
            "machine": machine.name,
            "fingerprint": machine_fingerprint(machine),
            "codelets": {},
        }
        entry = payload["codelets"].setdefault(
            table.interface_name, {"model": PerfModel().to_dict(), "provenance": {}}
        )
        entry["dispatch_table"] = {
            "interface_name": table.interface_name,
            "entries": [
                {
                    "scenario": dict(e.scenario),
                    "variant": e.variant,
                    "predicted_time": e.predicted_time,
                    "all_predictions": [list(p) for p in e.all_predictions],
                }
                for e in table.entries
            ],
        }
        self._write_atomic(path, payload)
        return path

    def load_dispatch_table(self, machine: Machine, interface_name: str):
        """The stored dispatch table for one component, or ``None``.

        Stale entries raise :class:`~repro.errors.StaleModelError`, same
        as :meth:`load`.
        """
        from repro.components.context import ContextInstance
        from repro.composer.static_comp import DispatchEntry, DispatchTable

        payload = self._read_payload(machine)
        if payload is None:
            return None
        entry = payload.get("codelets", {}).get(interface_name)
        if entry is None or "dispatch_table" not in entry:
            return None
        raw = entry["dispatch_table"]
        table = DispatchTable(interface_name=raw["interface_name"])
        for e in raw["entries"]:
            table.entries.append(
                DispatchEntry(
                    scenario=ContextInstance(e["scenario"]),
                    variant=e["variant"],
                    predicted_time=e["predicted_time"],
                    all_predictions=tuple(
                        (name, t) for name, t in e["all_predictions"]
                    ),
                )
            )
        return table

    @staticmethod
    def _write_atomic(path: Path, payload: dict) -> None:
        text = json.dumps(payload, indent=1, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance -------------------------------------------------------

    def invalidate(self, machine: Machine) -> bool:
        """Drop the machine's entry (fresh or stale); True if one existed."""
        path = self.path_for(machine)
        if path.exists():
            path.unlink()
            return True
        return False

    def machines(self) -> list[str]:
        """Machine names with a store entry (whatever their freshness)."""
        if not self.root.exists():
            return []
        out = []
        for p in sorted(self.root.glob("*.json")):
            try:
                out.append(json.loads(p.read_text()).get("machine", p.stem))
            except (OSError, ValueError):
                continue
        return out
