"""Persistent performance tuning: the model store and calibration driver.

StarPU persists calibrated per-codelet performance models per machine
(under ``~/.starpu``) so later runs skip the exploration phase; the
"Optimized Composition" follow-up builds static dispatch tables from the
same offline training data.  This package reproduces that layer:

- :mod:`repro.tuning.store` — a per-machine repository of calibrated
  :class:`~repro.runtime.perfmodel.PerfModel` data keyed by (machine,
  codelet, variant, format version), with atomic writes, staleness
  invalidation and merge-on-save;
- :mod:`repro.tuning.calibrate` — an adaptive calibration driver that
  replaces brute-force size sweeps with a log-spaced size ladder,
  per-variant early stopping and budgeted exploration of dominated
  variants.
"""

from repro.tuning.calibrate import CalibrationReport, calibrate_component
from repro.tuning.store import PerfModelStore, machine_fingerprint

__all__ = [
    "CalibrationReport",
    "PerfModelStore",
    "calibrate_component",
    "machine_fingerprint",
]
