"""Process-pool execution backend: kernels in worker processes.

Each kernel is shipped to a ``ProcessPoolExecutor`` worker by
reference (pickle sends ``module:qualname``; the worker re-imports),
runs there bracketed by ``perf_counter_ns``, and returns the arrays it
*wrote* — the parent copies them back into the registered payloads at
join time, so value semantics match the shared-memory backends exactly.
Two consequences worth knowing:

- every operand is serialized both ways, so this backend pays a
  per-call copy cost proportional to operand bytes — it wins only when
  kernels are CPU-bound in *Python* (don't release the GIL) and heavy
  enough to amortize the shipping;
- kernels must be **importable module-level functions**.  That is
  validated when the engine first sees a codelet
  (:meth:`prepare_codelet`), raising a structured
  :class:`~repro.errors.VariantNotPicklableError` naming the codelet
  and variant instead of a mid-run ``PicklingError``.

A worker that dies (segfault, ``os._exit``) surfaces as
``BrokenProcessPool`` from the future; the engine wraps it into
:class:`~repro.errors.KernelExecutionError` naming the task.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import threading
import time
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.errors import ExecBackendError
from repro.exec.base import ExecFuture, ExecutionBackend
from repro.exec.timing import Measurement
from repro.exec.validate import validate_codelet_picklable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.codelet import Codelet
    from repro.runtime.task import Task


def _worker_entry(fn, ctx, arrays, scalar_args, write_idx):
    """Runs in the worker process: execute, time, return written arrays."""
    start_ns = time.perf_counter_ns()
    fn(ctx, *arrays, *scalar_args)
    end_ns = time.perf_counter_ns()
    written = {i: arrays[i] for i in write_idx}
    return start_ns, end_ns, os.getpid(), written


class _ProcessFuture(ExecFuture):
    """Future that applies operand write-backs on ``result()``."""

    def __init__(self, inner, parent_arrays, meta: tuple[str, str, int]) -> None:
        super().__init__(inner)
        self._parent_arrays = parent_arrays
        self._meta = meta
        self._measurement: Measurement | None = None
        self._apply_lock = threading.Lock()

    def result(self, timeout: float | None = None) -> Measurement:
        start_ns, end_ns, pid, written = self._inner.result(timeout=timeout)
        with self._apply_lock:
            if self._measurement is None:
                for i, arr in written.items():
                    np.copyto(self._parent_arrays[i], arr)
                codelet, variant, task_id = self._meta
                self._measurement = Measurement(
                    codelet=codelet,
                    variant=variant,
                    task_id=task_id,
                    wall_s=(end_ns - start_ns) * 1e-9,
                    start_ns=start_ns,
                    end_ns=end_ns,
                    backend="process",
                    worker=f"pid:{pid}",
                )
        return self._measurement


class ProcessPoolBackend(ExecutionBackend):
    """Kernels on a ``ProcessPoolExecutor`` (isolated address spaces).

    Parameters
    ----------
    max_workers:
        Pool width (default: executor's CPU-derived default).
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); None uses the platform default.
    """

    name = "process"
    inline = False

    def __init__(
        self, max_workers: int | None = None, start_method: str | None = None
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ExecBackendError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        mp_context = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else None
        )
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers, mp_context=mp_context
        )
        self._closed = False
        self._lock = threading.Lock()
        #: codelets already validated (by identity), so the per-submit
        #: prepare call costs one set lookup
        self._validated: set[int] = set()

    def _check_open(self) -> None:
        if self._closed:
            raise ExecBackendError("process backend has been closed")

    def prepare_codelet(self, codelet: "Codelet") -> None:
        """Validate every variant's kernel is importable/picklable.

        Called by the engine when a codelet is first submitted against
        this backend; raises
        :class:`~repro.errors.VariantNotPicklableError` naming the
        codelet and variant.
        """
        if id(codelet) in self._validated:
            return
        validate_codelet_picklable(codelet)
        self._validated.add(id(codelet))

    def dispatch_task(self, task: "Task") -> ExecFuture:
        variant = task.chosen_variant
        assert variant is not None
        arrays = tuple(op.handle.array for op in task.operands)
        writes = tuple(
            i for i, op in enumerate(task.operands) if op.mode.writes
        )
        return self.submit_kernel(
            variant.fn,
            task.ctx,
            arrays,
            task.scalar_args,
            writes=writes,
            codelet=task.codelet.name,
            variant=variant.name,
            task_id=task.task_id,
        )

    def submit_kernel(
        self,
        fn: Callable,
        ctx: Mapping[str, object],
        arrays: Sequence,
        scalar_args: tuple = (),
        writes: Sequence[int] = (),
        *,
        codelet: str = "",
        variant: str = "",
        task_id: int = -1,
    ) -> ExecFuture:
        self._check_open()
        arrays = tuple(arrays)
        inner = self._pool.submit(
            _worker_entry, fn, dict(ctx), arrays, tuple(scalar_args), tuple(writes)
        )
        return _ProcessFuture(inner, arrays, (codelet, variant, task_id))

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
