"""repro.exec — real-concurrency execution backends for codelet kernels.

The engine's discrete-event core models *when* things happen; this
package decides *where the kernel computation actually runs*:

========== ===================== =========================================
backend    concurrency           use when
========== ===================== =========================================
simulated  none (inline)         default; byte-identical to every
                                 earlier release; pure simulation studies
thread     real (GIL-releasing   NumPy/BLAS-heavy kernels; shared memory,
           kernels overlap)      one clock domain, zero copy cost
process    real (separate        Python-bound kernels that hold the GIL;
           interpreters)         operands are shipped and copied back
========== ===================== =========================================

Real backends wall-clock every kernel (``time.perf_counter_ns`` inside
the executing worker) and the engine feeds those measurements into the
performance model under the ``"measured"`` provenance — alongside, never
replacing, the analytical observations — which is what the
analytical-vs-measured differential (``repro.experiments.backends``)
calibrates against.

Entry points::

    from repro.exec import ThreadPoolBackend
    with Session("c2050", exec_backend="thread") as s:   # or an instance
        ...

See ``docs/BACKENDS.md`` for the full matrix and the calibration
workflow.
"""

from repro.exec.base import (
    ExecFuture,
    ExecutionBackend,
    Measurement,
    make_backend,
    timed_call,
)
from repro.exec.process import ProcessPoolBackend
from repro.exec.simulated import SimulatedBackend
from repro.exec.thread import ThreadPoolBackend
from repro.exec.validate import (
    picklability_problem,
    validate_codelet_picklable,
    validate_variant_picklable,
)

__all__ = [
    "ExecFuture",
    "ExecutionBackend",
    "Measurement",
    "ProcessPoolBackend",
    "SimulatedBackend",
    "ThreadPoolBackend",
    "make_backend",
    "picklability_problem",
    "timed_call",
    "validate_codelet_picklable",
    "validate_variant_picklable",
]
