"""The ``ExecutionBackend`` protocol: where codelet kernels actually run.

The discrete-event engine models *time* analytically; the kernels
operate on real NumPy payloads.  An execution backend decides **where
and how the kernel computation runs**:

- :class:`~repro.exec.simulated.SimulatedBackend` (``inline=True``, the
  default) runs kernels synchronously on the submitting thread — the
  engine path used since the first PR, byte-identical;
- :class:`~repro.exec.thread.ThreadPoolBackend` dispatches kernels to a
  ``ThreadPoolExecutor`` so GIL-releasing NumPy kernels genuinely
  overlap, each wall-clock timed in its worker;
- :class:`~repro.exec.process.ProcessPoolBackend` ships kernels to
  worker processes (picklability validated up front), copies written
  operands back, and times inside the worker.

The engine talks to backends through two calls: ``prepare_codelet``
(registration-time validation, e.g. picklability for process pools) and
``dispatch_task`` (returns an :class:`ExecFuture` the engine joins at
the data-hazard/barrier points).  Layers below the engine — calibration,
tests, ad-hoc measurement — use ``submit_kernel`` / ``measure``
directly.
"""

from __future__ import annotations

import concurrent.futures
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.errors import ExecBackendError
from repro.exec.timing import Measurement, timed_call

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.codelet import Codelet
    from repro.runtime.task import Task


class ExecFuture:
    """Handle on one in-flight kernel execution.

    ``result()`` blocks until the kernel finished and returns its
    :class:`~repro.exec.timing.Measurement`; backends that execute out
    of process apply operand write-backs before returning.  ``cancel()``
    withdraws a kernel that has not started (queued behind a busy pool);
    a cancelled future's ``result()`` raises
    :class:`concurrent.futures.CancelledError`.
    """

    def __init__(self, inner: "concurrent.futures.Future[Measurement]") -> None:
        self._inner = inner

    def result(self, timeout: float | None = None) -> Measurement:
        return self._inner.result(timeout=timeout)

    def cancel(self) -> bool:
        """Try to withdraw a not-yet-started kernel; True on success."""
        return self._inner.cancel()

    def cancelled(self) -> bool:
        return self._inner.cancelled()

    def done(self) -> bool:
        return self._inner.done()

    def running(self) -> bool:
        return self._inner.running()

    def exception(self, timeout: float | None = None) -> BaseException | None:
        return self._inner.exception(timeout=timeout)


def _run_inline(thunk: "Callable[[], Measurement]") -> ExecFuture:
    """Run a kernel thunk now; return an already-resolved future.

    Kernel exceptions are captured into the future (not raised here) so
    inline backends surface errors exactly where pool backends do — at
    ``result()``.
    """
    fut: "concurrent.futures.Future[Measurement]" = concurrent.futures.Future()
    try:
        measurement = thunk()
    except BaseException as exc:
        fut.set_exception(exc)
    else:
        fut.set_result(measurement)
    return ExecFuture(fut)


class ExecutionBackend:
    """Base class of all execution backends.

    Attributes
    ----------
    name:
        Stable backend identifier ("simulated", "thread", "process"),
        recorded in every :class:`~repro.exec.timing.Measurement` and in
        calibration provenance.
    inline:
        True when kernels run synchronously on the submitting thread;
        the engine then keeps its original (pre-backend) code path and
        records no measurements — the byte-identical default.
    """

    name: str = "abstract"
    inline: bool = True

    # -- engine-facing surface ------------------------------------------------

    def prepare_codelet(self, codelet: "Codelet") -> None:
        """Registration-time validation hook; raises a structured error
        (never a mid-run one) when a codelet cannot run on this backend."""

    def dispatch_task(self, task: "Task") -> ExecFuture:
        """Start the chosen variant's kernel for ``task``; non-blocking
        for pool backends.  The engine joins the returned future at the
        data-hazard and barrier points."""
        raise NotImplementedError

    # -- direct surface (calibration, tests) ----------------------------------

    def submit_kernel(
        self,
        fn: Callable,
        ctx: Mapping[str, object],
        arrays: Sequence,
        scalar_args: tuple = (),
        writes: Sequence[int] = (),
        *,
        codelet: str = "",
        variant: str = "",
        task_id: int = -1,
    ) -> ExecFuture:
        """Run ``fn(ctx, *arrays, *scalar_args)`` on this backend.

        ``writes`` lists the indices of ``arrays`` the kernel mutates —
        needed by out-of-process backends to copy results back; inline
        and thread backends share memory and ignore it.
        """
        raise NotImplementedError

    def measure(
        self,
        fn: Callable,
        ctx: Mapping[str, object],
        arrays: Sequence,
        scalar_args: tuple = (),
        writes: Sequence[int] = (),
        warmup: int = 1,
        reps: int = 3,
        *,
        codelet: str = "",
        variant: str = "",
    ) -> list[Measurement]:
        """Warmup-aware wall-clock measurement of one kernel.

        Runs ``warmup`` discarded invocations (allocator warm-up, BLAS
        thread spin-up, cache priming), then ``reps`` measured ones —
        sequentially, so measurements never contend with each other.
        """
        if warmup < 0 or reps < 1:
            raise ExecBackendError(
                f"measure needs warmup >= 0 and reps >= 1, got "
                f"warmup={warmup}, reps={reps}"
            )
        kw = dict(writes=writes, codelet=codelet, variant=variant)
        for _ in range(warmup):
            self.submit_kernel(fn, ctx, arrays, scalar_args, **kw).result()
        return [
            self.submit_kernel(fn, ctx, arrays, scalar_args, **kw).result()
            for _ in range(reps)
        ]

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release pool resources; idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def make_backend(spec: "str | ExecutionBackend", **options) -> ExecutionBackend:
    """Resolve a backend by name (``"simulated"``, ``"thread"``,
    ``"process"``) with ``options`` as constructor keywords; instances
    pass through (options then disallowed)."""
    if isinstance(spec, ExecutionBackend):
        if options:
            raise ExecBackendError(
                "backend options only apply when the backend is given by name"
            )
        return spec
    from repro.exec.process import ProcessPoolBackend
    from repro.exec.simulated import SimulatedBackend
    from repro.exec.thread import ThreadPoolBackend

    factories = {
        "simulated": SimulatedBackend,
        "thread": ThreadPoolBackend,
        "process": ProcessPoolBackend,
    }
    try:
        factory = factories[spec]
    except KeyError:
        raise ExecBackendError(
            f"unknown execution backend {spec!r}; known: {sorted(factories)}"
        ) from None
    return factory(**options)


__all__ = [
    "ExecFuture",
    "ExecutionBackend",
    "Measurement",
    "make_backend",
    "timed_call",
]
